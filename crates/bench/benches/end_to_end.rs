//! End-to-end generation per query log (the Figure 6 pipeline), at a
//! bounded search budget so criterion's repetitions stay tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2::{GenerationConfig, MctsConfig, Pi2};
use pi2_workloads::{catalog, log, LogKind};

fn bench_end_to_end(c: &mut Criterion) {
    let config = GenerationConfig {
        mcts: MctsConfig {
            workers: 1,
            max_iterations: 40,
            early_stop: 15,
            ..MctsConfig::default()
        },
        mapping: Default::default(),
    };
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for kind in [LogKind::Explore, LogKind::Abstract, LogKind::Connect] {
        let l = log(kind);
        let queries: Vec<String> = l.queries.clone();
        group.bench_with_input(BenchmarkId::from_parameter(l.name), &queries, |b, qs| {
            let pi2 = Pi2::new(catalog());
            let refs: Vec<&str> = qs.iter().map(|s| s.as_str()).collect();
            b.iter(|| std::hint::black_box(pi2.generate_with(&refs, &config).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
