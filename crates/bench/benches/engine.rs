//! Microbenchmarks for the query engine.
//!
//! `engine/execute_log/*` runs each paper workload log end to end with the
//! default (vectorized) executor — including the correlated-HAVING Sales
//! queries the paper highlights (§7.2).
//!
//! `engine/exec_*` isolates the three execution shapes the columnar
//! refactor targets — filter-heavy (Covid predicates), aggregate-heavy
//! (the cross-filtering Filter log), and join-heavy (SDSS equijoins) —
//! and measures the vectorized executor against the row-at-a-time scalar
//! interpreter on identical queries, so the speedup is tracked per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2_engine::{execute, execute_scalar, ExecContext};
use pi2_sql::ast::Query;
use pi2_sql::parse_query;
use pi2_workloads::{all_logs, catalog, log, LogKind};

fn bench_engine(c: &mut Criterion) {
    let cat = catalog();
    let ctx = ExecContext::new(&cat);
    let mut group = c.benchmark_group("engine");
    for l in all_logs() {
        let queries: Vec<_> = l.queries.iter().map(|q| parse_query(q).unwrap()).collect();
        group.bench_with_input(
            BenchmarkId::new("execute_log", l.name),
            &queries,
            |b, qs| {
                b.iter(|| {
                    for q in qs {
                        std::hint::black_box(execute(q, &ctx).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

/// The three execution shapes, as (name, queries) pairs.
fn shapes() -> Vec<(&'static str, Vec<Query>)> {
    let parse_all = |qs: &[String]| qs.iter().map(|q| parse_query(q).unwrap()).collect();
    vec![
        // Filter-heavy: string/date predicates over the Covid time series.
        ("exec_filter", parse_all(&log(LogKind::Covid).queries)),
        // Aggregate-heavy: the cross-filtering Filter log (BETWEEN filters
        // feeding GROUP BY count(*)).
        ("exec_agg", parse_all(&log(LogKind::Filter).queries)),
        // Join-heavy: SDSS equijoins with range predicates + DISTINCT.
        ("exec_join", parse_all(&log(LogKind::Sdss).queries)),
    ]
}

fn bench_exec_shapes(c: &mut Criterion) {
    let cat = catalog();
    let ctx = ExecContext::new(&cat);
    for (name, queries) in shapes() {
        let mut group = c.benchmark_group(&format!("engine/{name}"));
        group.bench_with_input(
            BenchmarkId::new("vectorized", queries.len()),
            &queries,
            |b, qs| {
                b.iter(|| {
                    for q in qs {
                        std::hint::black_box(execute(q, &ctx).unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scalar", queries.len()),
            &queries,
            |b, qs| {
                b.iter(|| {
                    for q in qs {
                        std::hint::black_box(execute_scalar(q, &ctx).unwrap());
                    }
                })
            },
        );
        group.finish();
    }
}

criterion_group!(benches, bench_engine, bench_exec_shapes);
criterion_main!(benches);
