//! Microbenchmark: executor throughput on the workload datasets, including
//! the correlated-HAVING Sales queries the paper highlights (§7.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2_engine::{execute, ExecContext};
use pi2_sql::parse_query;
use pi2_workloads::{all_logs, catalog};

fn bench_engine(c: &mut Criterion) {
    let cat = catalog();
    let ctx = ExecContext::new(&cat);
    let mut group = c.benchmark_group("engine");
    for log in all_logs() {
        let queries: Vec<_> = log
            .queries
            .iter()
            .map(|q| parse_query(q).unwrap())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("execute_log", log.name),
            &queries,
            |b, qs| {
                b.iter(|| {
                    for q in qs {
                        std::hint::black_box(execute(q, &ctx).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
