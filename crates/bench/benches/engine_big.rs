//! Big-tier benchmarks: morsel-driven parallel execution over the
//! 10⁷-row synthetic tier (`pi2_workloads::big`), 1 thread vs 8.
//!
//! Three shapes, one query each: `engine/exec_big_filter` (selective
//! scan and count), `engine/exec_big_agg` (dict-key grouping with null-aware
//! aggregates), `engine/exec_big_join` (sparse-int partitioned hash join).
//! Each runs at `t1` (parallelism forced to 1 — the single-threaded
//! vectorized path) and `t8` (8 workers). Parallelism is set per-query via
//! `ExecContext` overrides, so the numbers are independent of `PI2_*` env
//! vars; the row threshold is pinned low so scaled-down runs (see below)
//! still take the parallel path at `t8`.
//!
//! This lives in its own bench binary (not `engine.rs`) because the
//! vendored criterion shim applies its CLI filter inside `bench_function`
//! — table construction in an unrelated bench binary would still pay the
//! 10⁷-row build. `PI2_BIG_BENCH_ROWS` scales the tier down (CI uses
//! this to bound job time); the committed flat baseline is measured at
//! the full [`BIG_ROWS`].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2_data::Catalog;
use pi2_engine::{execute, ExecContext};
use pi2_sql::ast::Query;
use pi2_sql::parse_query;
use pi2_workloads::big::{big_catalog, BIG_ROWS};

fn tier_rows() -> usize {
    std::env::var("PI2_BIG_BENCH_ROWS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(BIG_ROWS)
}

/// The three big-tier shapes, as (name, query) pairs.
fn shapes() -> Vec<(&'static str, Query)> {
    let q = |sql: &str| parse_query(sql).unwrap();
    vec![
        (
            "exec_big_filter",
            q("SELECT count(*) FROM covid_big WHERE cases > 30000 AND deaths > 700"),
        ),
        (
            "exec_big_agg",
            q("SELECT state, count(*), sum(cases), avg(deaths) FROM covid_big GROUP BY state"),
        ),
        (
            "exec_big_join",
            q(
                "SELECT c.segment, count(*), sum(o.amount) FROM orders AS o, customers AS c \
               WHERE o.customer_id = c.id GROUP BY c.segment",
            ),
        ),
    ]
}

/// An [`ExecContext`] pinned to `width` workers regardless of environment.
fn ctx_at(cat: &Catalog, width: usize) -> ExecContext<'_> {
    ExecContext::new(cat)
        .with_parallelism(width)
        .with_parallel_row_threshold(1024)
}

fn bench_big(c: &mut Criterion) {
    let cat = big_catalog(tier_rows());
    for (name, query) in shapes() {
        let mut group = c.benchmark_group(&format!("engine/{name}"));
        for width in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("t{width}")),
                &query,
                |b, q| {
                    let ctx = ctx_at(&cat, width);
                    b.iter(|| std::hint::black_box(execute(q, &ctx).unwrap()))
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_big);
criterion_main!(benches);
