//! Kernel-layer microbenchmarks: the `pi2_data::kernels` SIMD primitives
//! over 10⁷-element slices, isolated from the engine so regressions
//! attribute to the kernel itself rather than to planning or morsel
//! dispatch.
//!
//! Four shapes, mirroring the big-tier hot loops: `data/kernels_filter`
//! (typed comparison → packed bools, i64 and f64 lanes),
//! `data/kernels_select` (bool column + null mask → selection vector),
//! `data/kernels_agg` (null-aware sum/min/max over an index), and
//! `data/kernels_dict_eq` (dict-code equality and small-set IN over `u32`
//! codes). All run at whatever level the host dispatches (AVX2 on the
//! baseline machine); `PI2_SIMD=0` reruns them on the portable fallback
//! for an apples-to-apples dispatch comparison.
//!
//! Own bench binary for the same reason as `engine_big.rs`: the vendored
//! criterion shim filters inside `bench_function`, so the 10⁷-element
//! array builds must not ride along with unrelated bench runs.
//! `PI2_BIG_BENCH_ROWS` scales the element count (verified up to 10⁸);
//! the committed baseline is measured at the default 10⁷.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2_data::column::NullMask;
use pi2_data::kernels::{self, CmpOp};
use pi2_workloads::big::BIG_ROWS;

fn tier_rows() -> usize {
    std::env::var("PI2_BIG_BENCH_ROWS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(BIG_ROWS)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A ~1%-null mask matching the big tier's `deaths` column distribution.
fn sparse_nulls(n: usize, seed: u64) -> NullMask {
    let mut state = seed;
    let mut mask = NullMask::all_valid(0);
    for _ in 0..n {
        mask.push(splitmix(&mut state).is_multiple_of(100));
    }
    mask
}

fn bench_kernels(c: &mut Criterion) {
    let n = tier_rows();
    let mut state = 0x5EED_u64;
    // Value distributions mirror `covid_big`: cases-like i64s, a float
    // view of the same, and dict codes over 24 states.
    let ints: Vec<i64> = (0..n)
        .map(|_| (splitmix(&mut state) % 60_000) as i64)
        .collect();
    let floats: Vec<f64> = ints.iter().map(|&v| v as f64).collect();
    let codes: Vec<u32> = (0..n).map(|_| (splitmix(&mut state) % 24) as u32).collect();
    let nulls = sparse_nulls(n, 0xABCD);
    let all_valid = NullMask::all_valid(n);
    let idx: Vec<u32> = (0..n as u32).collect();

    let mut group = c.benchmark_group("data/kernels_filter");
    group.bench_with_input(BenchmarkId::from_parameter("i64_gt"), &ints, |b, v| {
        b.iter(|| std::hint::black_box(kernels::cmp_i64(v, 30_000.0, CmpOp::Gt)))
    });
    group.bench_with_input(BenchmarkId::from_parameter("f64_gt"), &floats, |b, v| {
        b.iter(|| std::hint::black_box(kernels::cmp_f64(v, 30_000.0, CmpOp::Gt)))
    });
    group.finish();

    // Selection build over a ~50%-selective bool column, with and without
    // nulls to pin both the word fast path and the masked path.
    let bools = kernels::cmp_i64(&ints, 30_000.0, CmpOp::Gt);
    let mut group = c.benchmark_group("data/kernels_select");
    group.bench_with_input(BenchmarkId::from_parameter("no_nulls"), &bools, |b, v| {
        b.iter(|| std::hint::black_box(kernels::bool_selection(v, &all_valid, 0)))
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("sparse_nulls"),
        &bools,
        |b, v| b.iter(|| std::hint::black_box(kernels::bool_selection(v, &nulls, 0))),
    );
    group.finish();

    let mut group = c.benchmark_group("data/kernels_agg");
    group.bench_with_input(BenchmarkId::from_parameter("sum_i64"), &ints, |b, v| {
        b.iter(|| std::hint::black_box(kernels::sum_i64(v, &nulls, &idx)))
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("min_max_f64"),
        &floats,
        |b, v| b.iter(|| std::hint::black_box(kernels::min_max_f64(v, &all_valid, &idx, true))),
    );
    group.finish();

    let mut group = c.benchmark_group("data/kernels_dict_eq");
    group.bench_with_input(BenchmarkId::from_parameter("eq"), &codes, |b, v| {
        b.iter(|| std::hint::black_box(kernels::cmp_u32(v, 7, CmpOp::Eq)))
    });
    group.bench_with_input(BenchmarkId::from_parameter("in_3"), &codes, |b, v| {
        b.iter(|| std::hint::black_box(kernels::in_set_u32(v, &[3, 7, 19])))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
