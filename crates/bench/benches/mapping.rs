//! Microbenchmark: Algorithm 1 (V, M mapping generation), including the
//! ablation the design calls out — with and without the `G`-based
//! lower-bound pruning of line 27.

use criterion::{criterion_group, criterion_main, Criterion};
use pi2_difftree::transform::canonicalize;
use pi2_difftree::Workload;
use pi2_interface::MappingContext;
use pi2_search::{generate_top_k, initial_state, MappingOptions};
use pi2_sql::parse_query;
use pi2_workloads::{catalog, log, LogKind};

fn bench_mapping(c: &mut Criterion) {
    let l = log(LogKind::Filter);
    let w = Workload::new(
        l.queries.iter().map(|q| parse_query(q).unwrap()).collect(),
        catalog(),
    );
    // A realistic post-search state: clustered + canonicalized.
    let state = canonicalize(&initial_state(&w), &w, 48);
    let ctx = MappingContext::build(&state, &w).expect("mappable state");

    let with = MappingOptions::default();
    let without = MappingOptions {
        pruning: false,
        ..MappingOptions::default()
    };

    c.bench_function("mapping/algorithm1_pruned", |b| {
        b.iter(|| std::hint::black_box(generate_top_k(&ctx, &with)))
    });
    c.bench_function("mapping/algorithm1_unpruned", |b| {
        b.iter(|| std::hint::black_box(generate_top_k(&ctx, &without)))
    });
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
