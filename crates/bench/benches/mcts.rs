//! Microbenchmark: MCTS search (§6.2) at a fixed iteration budget, plus the
//! design ablations: the variance (third) UCT term of Eq. 1, and reward
//! estimation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pi2_difftree::Workload;
use pi2_interface::{CostParams, MappingContext};
use pi2_search::{estimate_reward, initial_state, mcts_search, MctsConfig};
use pi2_sql::parse_query;
use pi2_workloads::{catalog, log, LogKind};
use rand::SeedableRng;

fn workload(kind: LogKind) -> Workload {
    let l = log(kind);
    Workload::new(
        l.queries.iter().map(|q| parse_query(q).unwrap()).collect(),
        catalog(),
    )
}

fn bench_mcts(c: &mut Criterion) {
    let w = workload(LogKind::Explore);
    let fixed = MctsConfig {
        workers: 1,
        max_iterations: 30,
        early_stop: 30,
        ..MctsConfig::default()
    };

    c.bench_function("mcts/explore_30iters", |b| {
        b.iter(|| std::hint::black_box(mcts_search(&w, &fixed)))
    });
    let wa = workload(LogKind::Abstract);
    c.bench_function("mcts/abstract_30iters", |b| {
        b.iter(|| std::hint::black_box(mcts_search(&wa, &fixed)))
    });
    // Ablation: without the variance term (d = 0 and c unchanged).
    let no_variance = MctsConfig {
        d: 0.0,
        ..fixed.clone()
    };
    c.bench_function("mcts/explore_30iters_no_variance_term", |b| {
        b.iter(|| std::hint::black_box(mcts_search(&w, &no_variance)))
    });

    // Reward estimation (K = 5 mappings) on the initial state.
    let state = initial_state(&w);
    let ctx = MappingContext::build(&state, &w).unwrap();
    let params = CostParams::default();
    c.bench_function("mcts/reward_estimate_k5", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        b.iter(|| std::hint::black_box(estimate_reward(&ctx, &mut rng, &params, 5)))
    });
}

criterion_group!(benches, bench_mcts);
criterion_main!(benches);
