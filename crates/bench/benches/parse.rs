//! Microbenchmark: SQL parsing and Difftree (GST) construction per query
//! log — the front half of the Figure 6 pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2_difftree::lower_query;
use pi2_sql::parse_query;
use pi2_workloads::all_logs;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for log in all_logs() {
        group.bench_with_input(BenchmarkId::new("sql", log.name), &log, |b, log| {
            b.iter(|| {
                for q in &log.queries {
                    std::hint::black_box(parse_query(q).unwrap());
                }
            })
        });
        let parsed: Vec<_> = log
            .queries
            .iter()
            .map(|q| parse_query(q).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("lower", log.name), &parsed, |b, qs| {
            b.iter(|| {
                for q in qs {
                    std::hint::black_box(lower_query(q));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
