//! HTTP-server throughput: events/sec through the full transport stack.
//!
//! `service/server_throughput/covid` measures one lap of the recorded
//! covid event mix replayed concurrently by 8 keep-alive connections
//! (one wire session each) against an in-process `pi2::server` over
//! loopback TCP — acceptor, reactors, HTTP parsing, per-session
//! mailboxes, worker dispatch, and response writing all on the measured
//! path. Compare with `service/session_throughput/covid_warm_8_sessions`
//! (same event mix, in-process dispatch) to read off the transport
//! overhead.
//!
//! `service/ws_push_fanout/covid` measures the streaming path: one
//! WebSocket writer replays the same mix while 4 subscribed peer
//! sessions each receive every patch as a server-initiated frame — the
//! per-peer event replay, the subscription hub, and the push lane
//! through the reactors are all on the measured path. One lap is
//! `cycle × (1 writer response + 4 pushes)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2::server::client::WsMessage;
use pi2::server::{Http1Client, ServerConfig, WsClient};
use pi2::{Pi2Service, Request};
use pi2_bench::load::{event_cycle, generation_for, open_session, open_ws_session};
use pi2_workloads::LogKind;
use std::sync::Arc;

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    let generation = generation_for(LogKind::Covid);
    let cycle = event_cycle(&generation);
    let service = Arc::new(Pi2Service::new());
    service
        .register_generation("covid", generation)
        .expect("register covid");
    let server = pi2::serve(
        Arc::clone(&service),
        ServerConfig {
            reactors: 2,
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    const CONNS: usize = 8;
    let mut clients: Vec<(Http1Client, u64)> = (0..CONNS)
        .map(|_| {
            let mut client = Http1Client::connect(addr).expect("connect");
            let session = open_session(&mut client, "covid").expect("open");
            (client, session)
        })
        .collect();
    // Warm the shared result memo so laps measure the serving path, not
    // first-touch query execution (mirrors `<log>_warm` in the service
    // bench).
    for (client, session) in clients.iter_mut() {
        for event in &cycle {
            let body = pi2::request_to_json(&Request::Event {
                session: *session,
                event: event.clone(),
            });
            let resp = client.post("/v1", &body).expect("warm event");
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
    }

    group.bench_with_input(
        BenchmarkId::new("server_throughput", "covid"),
        &cycle,
        |b, cycle| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for (client, session) in clients.iter_mut() {
                        let session = *session;
                        scope.spawn(move || {
                            for event in cycle {
                                let body = pi2::request_to_json(&Request::Event {
                                    session,
                                    event: event.clone(),
                                });
                                let resp = client.post("/v1", &body).expect("event");
                                assert_eq!(resp.status, 200, "{}", resp.body);
                            }
                        });
                    }
                });
            })
        },
    );
    // --- WebSocket push fan-out: 1 writer, 4 subscribed peers ---------
    const SUBS: usize = 4;
    let mut writer = WsClient::connect(addr).expect("ws connect");
    let writer_session = open_ws_session(&mut writer, "covid").expect("ws open");
    let mut subs: Vec<WsClient> = (0..SUBS)
        .map(|_| {
            let mut peer = WsClient::connect(addr).expect("ws connect");
            let session = open_ws_session(&mut peer, "covid").expect("ws open");
            let resp = peer
                .round_trip(&pi2::request_to_json(&Request::Subscribe { session }))
                .expect("subscribe");
            assert!(resp.contains("\"type\":\"subscribed\""), "{resp}");
            peer
        })
        .collect();
    // Warm lap (the peers' sessions run the mix for the first time here).
    for event in &cycle {
        let body = pi2::request_to_json(&Request::Event {
            session: writer_session,
            event: event.clone(),
        });
        writer.round_trip(&body).expect("warm ws event");
        for peer in subs.iter_mut() {
            assert!(matches!(
                peer.read_message().expect("warm push"),
                WsMessage::Text(_)
            ));
        }
    }

    group.bench_with_input(
        BenchmarkId::new("ws_push_fanout", "covid"),
        &cycle,
        |b, cycle| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let laps = cycle.len();
                    for peer in subs.iter_mut() {
                        scope.spawn(move || {
                            for _ in 0..laps {
                                match peer.read_message().expect("push") {
                                    WsMessage::Text(_) => {}
                                    other => panic!("unexpected {other:?}"),
                                }
                            }
                        });
                    }
                    for event in cycle {
                        let body = pi2::request_to_json(&Request::Event {
                            session: writer_session,
                            event: event.clone(),
                        });
                        let resp = writer.round_trip(&body).expect("event");
                        assert!(resp.contains("\"type\":\"patch\""), "{resp}");
                    }
                });
            })
        },
    );
    group.finish();
    drop(clients);
    drop(subs);
    drop(writer);
    server.shutdown();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
