//! Session-service throughput: events/sec through `Session::dispatch`.
//!
//! `service/session_throughput/*` measures one lap of an alternating event
//! cycle (every dispatch flips an interaction to a different state, so
//! every dispatch produces a non-empty delta patch) on the covid and sales
//! workloads:
//!
//! - `<log>_cold` clears the shared result memo every iteration — each
//!   patch fill pays a real query execution (the pre-service cost of any
//!   dispatch).
//! - `<log>_warm` leaves the memo warm — repeat states are served from the
//!   per-(catalogue, resolved-SQL fingerprint) memo. The ≥5× gap between
//!   these two is the acceptance bar for the delta-dispatch redesign.
//! - `<log>_warm_8_sessions` round-robins the same cycle across eight
//!   sessions sharing one generation: the marginal cost of a *session* is
//!   just its binding maps, so the lap must never be slower than one
//!   session's. (Interleaving means each session sees every 8th event;
//!   a dispatch that lands on a state the session is already in commits
//!   nothing, so this lap also exercises the no-op fast path.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2::{Event, Generation, GenerationConfig, MctsConfig, Pi2, Session, Value};
use pi2_interface::global_eval_cache;
use pi2_workloads::{catalog, log, LogKind};

fn config() -> GenerationConfig {
    GenerationConfig {
        mcts: MctsConfig {
            workers: 2,
            max_iterations: 120,
            early_stop: 25,
            sync_interval: 10,
            seed: 42,
            ..MctsConfig::default()
        },
        mapping: Default::default(),
    }
}

fn generation_for(kind: LogKind) -> Generation {
    let l = log(kind);
    let refs: Vec<&str> = l.queries.iter().map(|s| s.as_str()).collect();
    Pi2::new(catalog())
        .generate_with(&refs, &config())
        .unwrap_or_else(|e| panic!("generation failed for {}: {e}", l.name))
}

/// Whether a pair of events truly alternates session state: both must
/// dispatch, and on a second lap each must still produce a non-empty
/// patch. (Continuous payloads snap to the nearest *expressible* option —
/// two payloads can land on the same option and stop alternating, which
/// would silently bench an empty loop.)
fn alternates(probe: &mut Session, pair: &[Event; 2]) -> bool {
    if probe.dispatch(&pair[0]).is_err() || probe.dispatch(&pair[1]).is_err() {
        return false;
    }
    let again_a = probe.dispatch(&pair[0]);
    let again_b = probe.dispatch(&pair[1]);
    matches!((again_a, again_b), (Ok(pa), Ok(pb)) if !pa.is_empty() && !pb.is_empty())
}

/// An alternating event cycle: for each drivable interaction, pairs of
/// events toggling it between two distinct states, validated by probing a
/// scratch session. Replaying the cycle forever keeps changing queries, so
/// every dispatch emits a patch.
fn event_cycle(g: &Generation) -> Vec<Event> {
    let mut probe = g.session().expect("probe session");
    let mut cycle = Vec::new();
    for (ix, inst) in g.interface.interactions.iter().enumerate() {
        use pi2::InteractionChoice;
        let pairs: Vec<[Event; 2]> = match &inst.choice {
            InteractionChoice::Widget { kind, domain, .. } => match kind {
                pi2::WidgetKind::Toggle => vec![[
                    Event::Toggle {
                        interaction: ix,
                        on: false,
                    },
                    Event::Toggle {
                        interaction: ix,
                        on: true,
                    },
                ]],
                _ if domain.size() >= 2 => vec![[
                    Event::Select {
                        interaction: ix,
                        option: 0,
                    },
                    Event::Select {
                        interaction: ix,
                        option: 1,
                    },
                ]],
                _ => vec![],
            },
            InteractionChoice::Vis { .. } => {
                let ints = |a: i64, b: i64| Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(a), Value::Int(b)],
                };
                let dates = |a: &str, b: &str| Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Str(a.into()), Value::Str(b.into())],
                };
                vec![
                    [ints(20, 40), ints(30, 60)],
                    [ints(0, 10), ints(70, 100)],
                    [
                        dates("2019-01-01", "2019-01-31"),
                        dates("2019-02-01", "2019-02-28"),
                    ],
                    [
                        dates("2019-01-25", "2019-02-15"),
                        dates("2019-02-01", "2019-02-20"),
                    ],
                    [
                        Event::SetValues {
                            interaction: ix,
                            values: vec![
                                Value::Int(20),
                                Value::Int(40),
                                Value::Int(1),
                                Value::Int(3),
                            ],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![
                                Value::Int(30),
                                Value::Int(60),
                                Value::Int(2),
                                Value::Int(4),
                            ],
                        },
                    ],
                ]
            }
        };
        // Keep every truly-alternating pair (not just the first): the
        // expensive views — e.g. the Sales correlated-HAVING tree — must
        // take part for the cold numbers to mean anything.
        for pair in pairs {
            if alternates(&mut probe, &pair) {
                cycle.extend(pair);
            }
        }
    }
    assert!(!cycle.is_empty(), "no drivable interaction pair found");
    cycle
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    for kind in [LogKind::Covid, LogKind::Sales] {
        let name = log(kind).name;
        let g = generation_for(kind);
        let cycle = event_cycle(&g);

        // Cold: every iteration re-executes each changed view's query.
        group.bench_with_input(
            BenchmarkId::new("session_throughput", format!("{name}_cold")),
            &cycle,
            |b, cycle| {
                let mut session = g.session().unwrap();
                b.iter(|| {
                    global_eval_cache().clear_results();
                    for event in cycle {
                        std::hint::black_box(session.dispatch(event).unwrap());
                    }
                })
            },
        );

        // Warm: after the first lap every state's result is memo-shared.
        group.bench_with_input(
            BenchmarkId::new("session_throughput", format!("{name}_warm")),
            &cycle,
            |b, cycle| {
                let mut session = g.session().unwrap();
                for event in cycle {
                    session.dispatch(event).unwrap(); // warm the memo
                }
                b.iter(|| {
                    for event in cycle {
                        std::hint::black_box(session.dispatch(event).unwrap());
                    }
                })
            },
        );

        // Warm, eight concurrent sessions sharing one generation.
        group.bench_with_input(
            BenchmarkId::new("session_throughput", format!("{name}_warm_8_sessions")),
            &cycle,
            |b, cycle| {
                let mut sessions: Vec<Session> = (0..8).map(|_| g.session().unwrap()).collect();
                for event in cycle {
                    sessions[0].dispatch(event).unwrap(); // warm the memo
                }
                b.iter(|| {
                    for (i, event) in cycle.iter().enumerate() {
                        let s = &mut sessions[i % 8];
                        std::hint::black_box(s.dispatch(event).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
