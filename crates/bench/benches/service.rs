//! Session-service throughput: events/sec through `Session::dispatch`.
//!
//! `service/session_throughput/*` measures one lap of an alternating event
//! cycle (every dispatch flips an interaction to a different state, so
//! every dispatch produces a non-empty delta patch) on the covid and sales
//! workloads:
//!
//! - `<log>_cold` clears the shared result memo every iteration — each
//!   patch fill pays a real query execution (the pre-service cost of any
//!   dispatch).
//! - `<log>_warm` leaves the memo warm — repeat states are served from the
//!   per-(catalogue, resolved-SQL fingerprint) memo. The ≥5× gap between
//!   these two is the acceptance bar for the delta-dispatch redesign.
//! - `<log>_warm_8_sessions` round-robins the same cycle across eight
//!   sessions sharing one generation: the marginal cost of a *session* is
//!   just its binding maps, so the lap must never be slower than one
//!   session's. (Interleaving means each session sees every 8th event;
//!   a dispatch that lands on a state the session is already in commits
//!   nothing, so this lap also exercises the no-op fast path.)

//!
//! `service/append_dispatch/covid` measures one live append through the
//! service (epoch bump, fingerprint fold, stats merge, eviction sweep)
//! plus one warm open session absorbing the delta via `data_patch` — the
//! IVM fast path: supported view shapes execute only the appended chunk
//! and merge into the memoised result instead of re-running the query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2::{Pi2Service, Session};
use pi2_bench::load::{event_cycle, generation_for};
use pi2_interface::global_eval_cache;
use pi2_workloads::{log, LogKind};
use std::sync::Arc;

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    for kind in [LogKind::Covid, LogKind::Sales] {
        let name = log(kind).name;
        let g = generation_for(kind);
        let cycle = event_cycle(&g);

        // Cold: every iteration re-executes each changed view's query.
        group.bench_with_input(
            BenchmarkId::new("session_throughput", format!("{name}_cold")),
            &cycle,
            |b, cycle| {
                let mut session = g.session().unwrap();
                b.iter(|| {
                    global_eval_cache().clear_results();
                    for event in cycle {
                        std::hint::black_box(session.dispatch(event).unwrap());
                    }
                })
            },
        );

        // Warm: after the first lap every state's result is memo-shared.
        group.bench_with_input(
            BenchmarkId::new("session_throughput", format!("{name}_warm")),
            &cycle,
            |b, cycle| {
                let mut session = g.session().unwrap();
                for event in cycle {
                    session.dispatch(event).unwrap(); // warm the memo
                }
                b.iter(|| {
                    for event in cycle {
                        std::hint::black_box(session.dispatch(event).unwrap());
                    }
                })
            },
        );

        // Warm, eight concurrent sessions sharing one generation.
        group.bench_with_input(
            BenchmarkId::new("session_throughput", format!("{name}_warm_8_sessions")),
            &cycle,
            |b, cycle| {
                let mut sessions: Vec<Session> = (0..8).map(|_| g.session().unwrap()).collect();
                for event in cycle {
                    sessions[0].dispatch(event).unwrap(); // warm the memo
                }
                b.iter(|| {
                    for (i, event) in cycle.iter().enumerate() {
                        let s = &mut sessions[i % 8];
                        std::hint::black_box(s.dispatch(event).unwrap());
                    }
                })
            },
        );
    }

    // Live append dispatch: 1-row append + one session's warm IVM fetch.
    {
        let generation = generation_for(LogKind::Covid);
        let session = generation.session().unwrap();
        let delta = generation
            .live
            .snapshot()
            .table("covid")
            .expect("covid table")
            .table
            .slice_rows(0, 1);
        let service = Arc::new(Pi2Service::new());
        service
            .register_generation("covid", generation)
            .expect("register covid");
        // First fetch pays full execution; every lap after rides the memo.
        session.execute().unwrap();
        group.bench_with_input(
            BenchmarkId::new("append_dispatch", "covid"),
            &delta,
            |b, delta| {
                b.iter(|| {
                    service
                        .append("covid", "covid", delta.clone())
                        .expect("append commits");
                    std::hint::black_box(session.data_patch("covid").unwrap());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
