//! Microbenchmark: transformation-rule machinery (§6.1) — candidate
//! enumeration, validated application, canonicalization, and per-query
//! binding.

use criterion::{criterion_group, criterion_main, Criterion};
use pi2_difftree::transform::canonicalize;
use pi2_difftree::{applicable_actions, apply_action, candidate_actions, Forest, Rule, Workload};
use pi2_sql::parse_query;
use pi2_workloads::{catalog, log, LogKind};

fn workload(kind: LogKind) -> Workload {
    let l = log(kind);
    Workload::new(
        l.queries.iter().map(|q| parse_query(q).unwrap()).collect(),
        catalog(),
    )
}

fn bench_transform(c: &mut Criterion) {
    let w = workload(LogKind::Filter);
    let f = Forest::from_workload(&w);

    c.bench_function("transform/candidate_actions_filter", |b| {
        b.iter(|| std::hint::black_box(candidate_actions(&f, &w)))
    });
    c.bench_function("transform/applicable_actions_filter", |b| {
        b.iter(|| std::hint::black_box(applicable_actions(&f, &w)))
    });
    c.bench_function("transform/bind_all_filter", |b| {
        b.iter(|| std::hint::black_box(f.bind_all(&w)))
    });

    // Merge + canonicalize the Explore pair (the Figure 12 pipeline).
    let we = workload(LogKind::Explore);
    let fe = Forest::from_workload(&we);
    let merge = applicable_actions(&fe, &we)
        .into_iter()
        .find(|a| a.rule == Rule::Merge)
        .expect("merge applicable");
    c.bench_function("transform/merge_and_canonicalize_explore", |b| {
        b.iter(|| {
            let merged = apply_action(&fe, &we, merge).unwrap();
            std::hint::black_box(canonicalize(&merged, &we, 24))
        })
    });
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
