//! Regenerate the appendix's Figures 18–19: non-optimal interfaces with
//! quality above ≈0.85 are structurally near the optimum.
//!
//! The paper's examples come from alternative Difftree states: a Filter
//! interface at quality 0.87 with one extra toggle, and a Sales interface
//! at 0.893 with one extra static chart. We evaluate the same kind of
//! alternatives explicitly — the searched optimum, the clustered-but-
//! unrefined state, and the fully static one-chart-per-query state — and
//! report each interface's quality and structure.
//!
//! Run with: `cargo run --release -p pi2-bench --bin appendix_quality`

use pi2_bench::quality;
use pi2_difftree::transform::canonicalize;
use pi2_difftree::{Forest, Workload};
use pi2_interface::MappingContext;
use pi2_search::{best_interface, initial_state, mcts_search, MappingOptions, MctsConfig};
use pi2_workloads::{catalog, log, LogKind};

fn report(name: &str, state: &Forest, w: &Workload, best: &mut f64, rows: &mut Vec<String>) {
    let Some(ctx) = MappingContext::build(state, w) else {
        rows.push(format!("{name:<26} (not mappable)"));
        return;
    };
    let opts = MappingOptions::default();
    let Some((iface, cost)) = best_interface(&ctx, &opts) else {
        rows.push(format!("{name:<26} (no interface)"));
        return;
    };
    *best = best.min(cost);
    rows.push(format!(
        "{name:<26} cost {cost:>8.0}   {} views / {} widgets / {} vis interactions",
        iface.views.len(),
        iface.widget_count(),
        iface.vis_interaction_count()
    ));
}

fn main() {
    println!("Appendix Figures 18-19: interface quality across alternative Difftree states");
    for (kind, fig) in [(LogKind::Filter, "18"), (LogKind::Sales, "19")] {
        let l = log(kind);
        let queries = l
            .queries
            .iter()
            .map(|s| pi2_sql::parse_query(s).unwrap())
            .collect();
        let w = Workload::new(queries, catalog());

        let (optimal, _) = mcts_search(&w, &MctsConfig::default());
        let static_state = Forest::from_workload(&w);
        let clustered = initial_state(&w);
        let clustered_canon = canonicalize(&clustered, &w, 48);

        let mut best = f64::INFINITY;
        let mut rows = Vec::new();
        report("searched optimum", &optimal, &w, &mut best, &mut rows);
        report(
            "clustered + canonicalized",
            &clustered_canon,
            &w,
            &mut best,
            &mut rows,
        );
        report(
            "clustered (unrefined)",
            &clustered,
            &w,
            &mut best,
            &mut rows,
        );
        report(
            "static (chart per query)",
            &static_state,
            &w,
            &mut best,
            &mut rows,
        );

        println!("\n=== Figure {fig} ({}) ===", l.name);
        for row in rows {
            // Re-derive quality from the printed cost.
            if let Some(cost_str) = row.split("cost").nth(1) {
                let cost: f64 = cost_str
                    .split_whitespace()
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(f64::INFINITY);
                println!("{row}   quality {:.3}", quality(cost, best));
            } else {
                println!("{row}");
            }
        }
    }
    println!(
        "\npaper: quality 0.87 (Filter, one extra toggle) and 0.893 (Sales, one extra \
         static chart) remain structurally near the optimal interfaces; states far from \
         the optimum (one static chart per query) score much lower."
    );
}
