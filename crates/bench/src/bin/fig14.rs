//! Regenerate Figure 14: the four interfaces expressing Yi et al.'s
//! interaction taxonomy (Explore, Connect, Abstract, Filter — Listings 1–4).
//!
//! Run with: `cargo run --release -p pi2-bench --bin fig14 [-- explore|connect|abstract|filter]`

use pi2::render::render_ascii;
use pi2_bench::generate_default;
use pi2_workloads::{log, LogKind};

fn show(kind: LogKind, figure: &str, claim: &str) {
    let l = log(kind);
    println!("\n=== Figure 14{figure}: {} ===", l.name);
    println!("paper: {claim}");
    let g = generate_default(kind, 42);
    println!("{}", g.describe());
    println!("{}", render_ascii(&g.interface));
}

fn main() {
    let filter = std::env::args().nth(1);
    let figures: [(LogKind, &str, &str); 4] = [
        (
            LogKind::Explore,
            "a",
            "scatterplot; panning and zooming control the hp/mpg range predicates",
        ),
        (
            LogKind::Connect,
            "b",
            "linked scatterplots; selecting points in one chart highlights rows in the other",
        ),
        (
            LogKind::Abstract,
            "c",
            "overview and detail; brushing the date axis updates the filtered line chart",
        ),
        (
            LogKind::Filter,
            "d",
            "cross-filtering: brushing one chart updates the other charts' predicates; \
             clearing a brush disables the predicate",
        ),
    ];
    for (kind, fig, claim) in figures {
        if let Some(f) = &filter {
            let name = log(kind).name;
            if name != f {
                continue;
            }
        }
        show(kind, fig, claim);
    }
}
