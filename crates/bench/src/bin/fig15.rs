//! Regenerate Figure 15: the three §7.2 case studies (SDSS, Google's
//! Covid-19 visualization, the sales dashboard — Listings 5–7).
//!
//! Run with: `cargo run --release -p pi2-bench --bin fig15 [-- sdss|covid|sales]`

use pi2::render::render_ascii;
use pi2_bench::generate_default;
use pi2_workloads::{log, LogKind};

fn main() {
    let filter = std::env::args().nth(1);
    let figures: [(LogKind, &str, &str); 3] = [
        (
            LogKind::Sdss,
            "a",
            "table for the 9-attribute join + scatterplot of star locations; \
             pan/zoom on the scatterplot updates the table",
        ),
        (
            LogKind::Covid,
            "b",
            "metric/state/date-interval controls over the case/death time series; \
             the interval control matters only when the date filter is on",
        ),
        (
            LogKind::Sales,
            "c",
            "sales-by-date chart with branch/product controls; the date range drives \
             both the outer WHERE and the correlated HAVING subquery",
        ),
    ];
    for (kind, fig, claim) in figures {
        if let Some(f) = &filter {
            if log(kind).name != f {
                continue;
            }
        }
        println!("\n=== Figure 15{fig}: {} ===", log(kind).name);
        println!("paper: {claim}");
        let g = generate_default(kind, 42);
        println!("{}", g.describe());
        println!("{}", render_ascii(&g.interface));
    }
}
