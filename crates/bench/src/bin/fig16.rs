//! Regenerate Figure 16: the runtime–quality trade-off across search
//! parameter conditions.
//!
//! The paper sweeps early stop `es` and sync interval `s` from 5 to 100 in
//! steps of 5 and parallelism `p` from 1 to 4, over 7 logs × 10 runs. The
//! full grid is enormous; the default here is a representative sub-grid
//! (pass `--full` for a denser sweep). The *shape* to reproduce: simple
//! logs find the optimum in well under a second regardless of parameters;
//! Filter and Covid trade runtime for quality.
//!
//! Run with: `cargo run --release -p pi2-bench --bin fig16 [-- --full]`

use pi2_bench::{qualities, run_condition};
use pi2_workloads::LogKind;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (es_values, s_values, p_values, repeats): (Vec<usize>, Vec<usize>, Vec<usize>, u64) =
        if full {
            (
                vec![5, 20, 35, 50, 75, 100],
                vec![5, 10, 50, 100],
                vec![1, 2, 3, 4],
                3,
            )
        } else {
            (vec![5, 30, 100], vec![5, 10, 50], vec![1, 3], 2)
        };
    let logs = [LogKind::Explore, LogKind::Filter, LogKind::Covid];

    let mut measurements = Vec::new();
    for kind in logs {
        for &es in &es_values {
            for &s in &s_values {
                for &p in &p_values {
                    for seed in 0..repeats {
                        measurements.push(run_condition(kind, es, s, p, 42 + seed));
                    }
                }
            }
        }
    }

    println!(
        "Figure 16: runtime-quality trade-off ({} conditions)",
        measurements.len()
    );
    println!(
        "{:<10} {:>4} {:>4} {:>3} {:>12} {:>12} {:>12} {:>8}",
        "log", "es", "s", "p", "mcts [ms]", "map [ms]", "total [ms]", "quality"
    );
    for (m, q) in qualities(&measurements) {
        println!(
            "{:<10} {:>4} {:>4} {:>3} {:>12.1} {:>12.1} {:>12.1} {:>8.3}",
            m.log,
            m.early_stop,
            m.sync_interval,
            m.workers,
            m.mcts_time.as_secs_f64() * 1e3,
            m.mapping_time.as_secs_f64() * 1e3,
            m.total_time().as_secs_f64() * 1e3,
            q
        );
    }

    // Summary: min/max runtime and quality spread per log.
    println!("\nper-log summary:");
    let scored = qualities(&measurements);
    for kind in logs {
        let name = pi2_workloads::log(kind).name;
        let subset: Vec<&(pi2_bench::Measurement, f64)> =
            scored.iter().filter(|(m, _)| m.log == name).collect();
        let min_t = subset
            .iter()
            .map(|(m, _)| m.total_time().as_secs_f64())
            .fold(f64::MAX, f64::min);
        let max_t = subset
            .iter()
            .map(|(m, _)| m.total_time().as_secs_f64())
            .fold(0.0, f64::max);
        let min_q = subset.iter().map(|(_, q)| *q).fold(f64::MAX, f64::min);
        println!(
            "  {name:<10} runtime {:.2}s – {:.2}s, quality {:.3} – 1.000",
            min_t, max_t, min_q
        );
    }
}
