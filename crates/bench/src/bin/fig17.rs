//! Regenerate Figure 17: parameter sensitivity — MCTS time, mapping time,
//! and interface quality while varying one parameter (early stop,
//! parallelism, sync interval) with the others at the paper defaults
//! (es = 30, p = 3, s = 10).
//!
//! The paper reports Explore, Filter, and Covid ("the remaining logs have
//! results nearly identical to Explore"). Expected shapes: larger es/s only
//! delay termination without quality gains; parallelism slows MCTS slightly
//! but improves quality for the complex logs.
//!
//! Run with: `cargo run --release -p pi2-bench --bin fig17`

use pi2_bench::{qualities, run_condition, Measurement};
use pi2_workloads::LogKind;

fn sweep(kind: LogKind, vary: &str, values: &[usize], out: &mut Vec<(String, Measurement)>) {
    for &v in values {
        let (es, s, p) = match vary {
            "es" => (v, 10, 3),
            "s" => (30, v, 3),
            _ => (30, 10, v),
        };
        for seed in 0..2u64 {
            let m = run_condition(kind, es, s, p, 42 + seed);
            out.push((format!("{vary}={v}"), m));
        }
    }
}

fn main() {
    let logs = [LogKind::Explore, LogKind::Filter, LogKind::Covid];
    let mut rows: Vec<(String, Measurement)> = Vec::new();
    for kind in logs {
        sweep(kind, "es", &[5, 15, 30, 60, 100], &mut rows);
        sweep(kind, "p", &[1, 2, 3, 4], &mut rows);
        sweep(kind, "s", &[5, 10, 30, 100], &mut rows);
    }
    let measurements: Vec<Measurement> = rows.iter().map(|(_, m)| m.clone()).collect();
    let scored = qualities(&measurements);

    println!("Figure 17: parameter sensitivity (others at defaults es=30, p=3, s=10)");
    println!(
        "{:<10} {:<8} {:>12} {:>12} {:>8}",
        "log", "vary", "mcts [ms]", "map [ms]", "quality"
    );
    for ((label, _), (m, q)) in rows.iter().zip(scored.iter()) {
        println!(
            "{:<10} {:<8} {:>12.1} {:>12.1} {:>8.3}",
            m.log,
            label,
            m.mcts_time.as_secs_f64() * 1e3,
            m.mapping_time.as_secs_f64() * 1e3,
            q
        );
    }
}
