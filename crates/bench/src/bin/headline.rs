//! The paper's headline performance claim (§1, §9): PI2 generates
//! interfaces in 2–19 s with a median of 6 s across the evaluation logs.
//!
//! Run with: `cargo run --release -p pi2-bench --bin headline`

use pi2_bench::{generate_default, median};
use pi2_workloads::{all_logs, LogKind};

fn main() {
    println!("End-to-end generation time per log (paper: 2–19 s, median 6 s)");
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>12} {:>7} {:>8} {:>8}",
        "log", "queries", "mcts [s]", "map [s]", "total [s]", "views", "widgets", "vis-int"
    );
    let mut totals = Vec::new();
    for (kind, log) in LogKind::ALL.into_iter().zip(all_logs()) {
        let g = generate_default(kind, 42);
        let total = g.total_time().as_secs_f64();
        totals.push(total);
        println!(
            "{:>10} {:>9} {:>12.2} {:>12.2} {:>12.2} {:>7} {:>8} {:>8}",
            log.name,
            log.queries.len(),
            g.mcts_stats.duration.as_secs_f64(),
            g.mapping_time.as_secs_f64(),
            total,
            g.interface.views.len(),
            g.interface.widget_count(),
            g.interface.vis_interaction_count(),
        );
    }
    let min = totals.iter().cloned().fold(f64::MAX, f64::min);
    let max = totals.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nmeasured: {min:.2} – {max:.2} s, median {:.2} s",
        median(totals)
    );
}
