//! Inspect the generated interface for one paper log: structure, layout,
//! and multi-target interaction links.
//!
//! Run with: `cargo run --release -p pi2-bench --bin inspect -- <log>`
//! where `<log>` ∈ {explore, abstract, connect, filter, covid, sales, sdss}.

use pi2::{GenerationConfig, Pi2};
use pi2_workloads::{catalog, log, LogKind};

fn main() {
    let pi2 = Pi2::new(catalog());
    let l = log(match std::env::args().nth(1).as_deref() {
        Some("abstract") => LogKind::Abstract,
        Some("connect") => LogKind::Connect,
        Some("filter") => LogKind::Filter,
        Some("covid") => LogKind::Covid,
        Some("sales") => LogKind::Sales,
        Some("sdss") => LogKind::Sdss,
        _ => LogKind::Explore,
    });
    let queries: Vec<&str> = l.queries.iter().map(|s| s.as_str()).collect();
    let g = pi2
        .generate_with(&queries, &GenerationConfig::default())
        .expect("generation succeeds");
    println!("{}", g.describe());
    for i in &g.interface.interactions {
        if !i.extra_targets.is_empty() {
            println!(
                "  (interaction on node {} also binds {:?})",
                i.target_node,
                i.extra_targets
                    .iter()
                    .map(|t| (t.tree, t.node))
                    .collect::<Vec<_>>()
            );
        }
    }
    println!("{}", pi2::render::render_ascii(&g.interface));
}
