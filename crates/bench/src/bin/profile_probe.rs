//! Hot-path cost breakdown for the search stack: per-call timings of the
//! operations one MCTS iteration is made of (state cloning, hashing,
//! binding, candidate enumeration, rule application, canonicalization,
//! mapping-context construction, reward estimation). Run twice to see
//! cold- vs warm-cache behaviour of the shared evaluation caches.

use pi2_difftree::transform::canonicalize;
use pi2_difftree::{applicable_actions, apply_action, candidate_actions, Forest, Workload};
use pi2_interface::{CostParams, MappingContext};
use pi2_search::{estimate_reward, initial_state};
use pi2_sql::parse_query;
use pi2_workloads::{catalog, log, LogKind};
use rand::SeedableRng;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Instant;

fn time<T>(label: &str, n: usize, mut f: impl FnMut() -> T) {
    let t = Instant::now();
    for _ in 0..n {
        std::hint::black_box(f());
    }
    println!("{label:<36} {:>12.3?} per call", t.elapsed() / n as u32);
}

fn main() {
    for kind in [LogKind::Explore, LogKind::Abstract] {
        let l = log(kind);
        let w = Workload::new(
            l.queries.iter().map(|q| parse_query(q).unwrap()).collect(),
            catalog(),
        );
        println!("== {} ({} queries)", l.name, w.len());
        let state = initial_state(&w);
        println!(
            "   state: {} trees, {} nodes",
            state.trees.len(),
            state.size()
        );
        time("initial_state", 20, || initial_state(&w));
        time("Forest::clone", 1000, || state.clone());
        time("Forest hash", 1000, || {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            state.hash(&mut h);
            h.finish()
        });
        time("bind_all", 200, || state.bind_all(&w));
        time("candidate_actions", 50, || candidate_actions(&state, &w));
        time("applicable_actions", 10, || applicable_actions(&state, &w));
        let acts = applicable_actions(&state, &w);
        if let Some(a) = acts.first() {
            time("apply_action", 100, || apply_action(&state, &w, *a));
            let next = apply_action(&state, &w, *a).unwrap();
            time("canonicalize(24)", 10, || canonicalize(&next, &w, 24));
        }
        time("MappingContext::build", 50, || {
            MappingContext::build(&state, &w)
        });
        let ctx = MappingContext::build(&state, &w).unwrap();
        let params = CostParams::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        time("estimate_reward k5", 50, || {
            estimate_reward(&ctx, &mut rng, &params, 5)
        });
        let mut memo: HashMap<Forest, f64> = HashMap::new();
        memo.insert(state.clone(), 1.0);
        time("memo lookup (hit)", 1000, || *memo.get(&state).unwrap());
    }
}
