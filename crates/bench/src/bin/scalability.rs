//! Regenerate the §7.3 scalability experiment: runtime as the number of
//! input queries grows from 9 to 900 by duplicating the Filter log.
//!
//! The paper reports roughly linear growth (a few seconds → ≈2000 s at 900
//! queries on their VMs), dominated by (1) more search states, (2) more
//! expensive navigation-cost estimation, and (3) safety checking. The
//! safety-check ablation the paper calls out is included (`--no-safety`
//! column).
//!
//! Run with: `cargo run --release -p pi2-bench --bin scalability [-- --max 225]`

use pi2::{GenerationConfig, MctsConfig, Pi2};
use pi2_workloads::{catalog, logs::duplicated, LogKind};
use std::time::Instant;

fn run(n: usize, check_safety: bool) -> f64 {
    let log = duplicated(LogKind::Filter, n);
    let refs: Vec<&str> = log.queries.iter().map(|s| s.as_str()).collect();
    let config = GenerationConfig {
        mcts: MctsConfig {
            check_safety,
            // Bounded search budget so the experiment isolates per-query
            // costs (binding, safety, navigation estimation).
            max_iterations: 60,
            early_stop: 15,
            ..MctsConfig::default()
        },
        mapping: Default::default(),
    };
    let t0 = Instant::now();
    let g = Pi2::new(catalog())
        .generate_with(&refs, &config)
        .expect("generation");
    let elapsed = t0.elapsed().as_secs_f64();
    drop(g);
    elapsed
}

fn main() {
    let max: usize = std::env::args()
        .skip_while(|a| a != "--max")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(900);
    let sizes = [9usize, 45, 90, 225, 450, 900];
    println!("§7.3 scalability: duplicated Filter log (9 → 900 queries)");
    println!(
        "{:>8} {:>16} {:>20} {:>10}",
        "queries", "runtime [s]", "no-safety [s]", "s/query"
    );
    let mut base: Option<f64> = None;
    for n in sizes {
        if n > max {
            break;
        }
        let t = run(n, true);
        let t_nosafe = run(n, false);
        println!(
            "{:>8} {:>16.2} {:>20.2} {:>10.4}",
            n,
            t,
            t_nosafe,
            t / n as f64
        );
        if let Some(b) = base {
            let ratio = t / b;
            let n_ratio = n as f64 / 9.0;
            println!(
                "         (×{:.1} queries → ×{:.1} runtime; linear would be ×{:.1})",
                n_ratio, ratio, n_ratio
            );
        } else {
            base = Some(t);
        }
    }
}
