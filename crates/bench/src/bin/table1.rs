//! Regenerate the paper's Table 1 (visualization schemas, FD constraints,
//! and supported interactions) from the live registry.
//!
//! Run with: `cargo run -p pi2-bench --bin table1`

use pi2::VisKind;

fn main() {
    println!("Table 1: Visualization schemas, FD constraints, and supported interactions");
    println!("{:-<100}", "");
    println!("{:<8} {:<44} {:<22} Interactions", "Vis", "Schema", "FDs");
    println!("{:-<100}", "");
    for kind in VisKind::ALL {
        let schema = if kind == VisKind::Table {
            "any schema".to_string()
        } else {
            let parts: Vec<String> = kind
                .schema()
                .iter()
                .map(|s| {
                    let ty = match (s.quantitative, s.categorical) {
                        (true, true) => "Q|C",
                        (true, false) => "Q",
                        (false, true) => "C",
                        (false, false) => "-",
                    };
                    format!("{}:{}{}", s.var, ty, if s.optional { "?" } else { "" })
                })
                .collect();
            format!("<{}>", parts.join(", "))
        };
        let fds = if kind.fd_determinants().is_empty() {
            "—".to_string()
        } else {
            let det: Vec<String> = kind
                .fd_determinants()
                .iter()
                .map(|v| v.to_string())
                .collect();
            format!("({}) → y", det.join(", "))
        };
        let interactions: Vec<String> = kind
            .supported_interactions()
            .iter()
            .map(|i| i.to_string())
            .collect();
        println!(
            "{:<8} {:<44} {:<22} {}",
            kind.to_string(),
            schema,
            fds,
            interactions.join(", ")
        );
    }
}
