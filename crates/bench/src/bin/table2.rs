//! Regenerate the paper's Table 2 (widget schemas and constraints), plus
//! the manipulation-cost polynomials the §5 model attaches to each widget.
//!
//! Run with: `cargo run -p pi2-bench --bin table2`

use pi2::WidgetKind;
use pi2_interface::widget_poly;

fn main() {
    println!("Table 2: Widget schemas and constraints");
    println!("{:-<88}", "");
    println!(
        "{:<24} {:<18} {:<12} Cm polynomial (a0, a1, a2) [ms]",
        "Widget", "Schema", "Constraint"
    );
    println!("{:-<88}", "");
    let rows: [(&str, &str, &str, WidgetKind); 9] = [
        ("Button", "<v:_>", "—", WidgetKind::Button),
        ("Radio", "<v:_>", "—", WidgetKind::Radio),
        ("Dropdown", "<v:_>", "—", WidgetKind::Dropdown),
        ("Textbox", "<v:_>", "—", WidgetKind::Textbox),
        ("Toggle", "<v:_?>", "—", WidgetKind::Toggle),
        ("Checkbox", "<v:_*>", "—", WidgetKind::Checkbox),
        ("Slider", "<v:num>", "—", WidgetKind::Slider),
        (
            "RangeSlider",
            "<s:num,e:num>",
            "s ≤ e",
            WidgetKind::RangeSlider,
        ),
        ("Adder", "<v:_*>", "—", WidgetKind::Adder),
    ];
    for (name, schema, constraint, kind) in rows {
        let (a0, a1, a2) = widget_poly(kind);
        println!(
            "{:<24} {:<18} {:<12} ({a0}, {a1}, {a2})",
            name, schema, constraint
        );
    }
    println!("\n_ matches any schema or type expression (paper §4.2.1).");
}
