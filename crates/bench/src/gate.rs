//! The CI perf-regression gate.
//!
//! The vendored criterion shim appends `baseline,bench,mean_ns` lines to
//! `target/criterion-baselines.csv` under `--save-baseline <name>`. The
//! gate compares such a freshly-measured baseline against the committed
//! `BENCH_baseline.json` (a flat `{"bench": mean_ns}` object regenerated
//! whenever a PR moves the numbers, plus an optional `"runners"` section
//! of per-runner-label overrides — see [`parse_baseline_json_for`]) and
//! fails when any **gated** bench — `mcts/*`, `engine/exec_*`,
//! `data/kernels_*`, `service/session_throughput/*`,
//! `service/server_throughput/*`, `service/ws_push_fanout/*`,
//! `service/append_dispatch/*` — regresses
//! by more than the threshold
//! (default 25%). Ungated benches are reported but never fail the job
//! (per-log end-to-end numbers are tracked through the emitted snapshot
//! instead). Runner-sensitive tiers (`engine/exec_big_*`, `data/kernels_*`)
//! only warn when no per-runner baseline entry backs them — their numbers
//! don't transfer across machines (see [`check`]).
//!
//! Used by `tools/bench_gate.rs` (the `bench_gate` binary the `bench-smoke`
//! CI job runs), which also emits the fresh means as a `BENCH_PR<n>.json`
//! artifact so the perf trajectory stays machine-readable per PR.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Bench-name prefixes whose regressions fail the gate.
pub const GATED_PREFIXES: [&str; 8] = [
    "mcts/",
    "engine/exec_",
    "engine/exec_big_",
    "data/kernels_",
    "service/session_throughput/",
    "service/server_throughput/",
    "service/ws_push_fanout/",
    "service/append_dispatch/",
];

/// Bench-name prefixes whose absolute numbers depend on the runner's core
/// count and SIMD level (the big parallel tier and the kernel microbenches).
/// Comparing these against another machine's flat baseline is meaningless
/// — a single-core container's `t8` being flat is oversubscription, not a
/// regression — so without a per-runner baseline entry they warn instead
/// of failing the gate (see [`check`]).
pub const RUNNER_SENSITIVE_PREFIXES: [&str; 2] = ["engine/exec_big_", "data/kernels_"];

/// Default regression threshold: fail when `fresh > committed * 1.25`.
pub const DEFAULT_THRESHOLD: f64 = 1.25;

/// One gate finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// A gated bench regressed beyond the threshold.
    Regression {
        /// Bench name.
        bench: String,
        /// Committed mean (ns).
        committed: f64,
        /// Fresh mean (ns).
        fresh: f64,
    },
    /// A gated bench present in the committed baseline is missing from the
    /// fresh run (a silently-dropped bench must not pass the gate).
    Missing {
        /// Bench name.
        bench: String,
    },
    /// A runner-sensitive bench moved beyond the threshold against a mean
    /// measured on a *different* machine (no per-runner baseline entry):
    /// reported, never fatal. Promote the runner's own numbers (`bench_gate
    /// promote`) to turn these into real [`Finding::Regression`]s.
    Warning {
        /// Bench name.
        bench: String,
        /// Committed mean (ns) — from the flat, other-machine baseline.
        committed: f64,
        /// Fresh mean (ns).
        fresh: f64,
    },
}

impl Finding {
    /// Whether this finding fails the gate (warnings never do).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, Finding::Warning { .. })
    }
}

/// Parse the criterion shim's CSV (`baseline,bench,mean_ns` per line),
/// keeping only rows for `baseline_name`. Later lines win: re-running a
/// bench appends, and the freshest measurement is the one to gate.
pub fn parse_csv(csv: &str, baseline_name: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in csv.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // The bench name may not contain commas (group/fn/param only), so
        // a 3-way split is exact.
        let mut parts = line.splitn(3, ',');
        let (Some(name), Some(bench), Some(mean)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if name != baseline_name {
            continue;
        }
        if let Ok(mean) = mean.trim().parse::<f64>() {
            out.insert(bench.to_string(), mean);
        }
    }
    out
}

/// Parse a committed `BENCH_baseline.json` without runner selection —
/// shorthand for [`parse_baseline_json_for`] with no runner label.
pub fn parse_baseline_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    parse_baseline_json_for(text, None)
}

/// Parse a committed `BENCH_baseline.json`, selecting per-runner
/// overrides.
///
/// The file is a flat `{"bench": mean_ns}` object, optionally holding one
/// special `"runners"` key: `{"<label>": {"bench": mean_ns, …}, …}`. When
/// `runner` names a label with an entry, that label's means override the
/// flat ones *bench by bench* — a bench with no per-runner mean falls back
/// to the unlabeled (dev-machine) baseline, so committing per-runner
/// numbers is incremental: promote them from a CI run's `BENCH_PR.json`
/// artifact one bench at a time, and everything not yet promoted keeps
/// gating against the dev numbers under the wide threshold.
pub fn parse_baseline_json_for(
    text: &str,
    runner: Option<&str>,
) -> Result<BTreeMap<String, f64>, String> {
    let parsed = pi2::Json::parse(text).map_err(|e| e.to_string())?;
    let pi2::Json::Obj(entries) = &parsed else {
        return Err("baseline JSON must be an object".into());
    };
    let mut out = BTreeMap::new();
    let mut overrides = BTreeMap::new();
    for (bench, v) in entries {
        if bench == "runners" {
            let pi2::Json::Obj(runners) = v else {
                return Err("'runners' must be an object of per-runner baselines".into());
            };
            let Some(label) = runner else { continue };
            let Some((_, per_runner)) = runners.iter().find(|(name, _)| name == label) else {
                continue;
            };
            let pi2::Json::Obj(means) = per_runner else {
                return Err(format!("runner {label:?} baseline must be an object"));
            };
            for (bench, mean) in means {
                let mean = mean.as_f64().ok_or_else(|| {
                    format!("runner {label:?} bench {bench:?} has a non-numeric mean")
                })?;
                overrides.insert(bench.clone(), mean);
            }
            continue;
        }
        let mean = v
            .as_f64()
            .ok_or_else(|| format!("bench {bench:?} has a non-numeric mean"))?;
        out.insert(bench.clone(), mean);
    }
    out.extend(overrides);
    Ok(out)
}

/// Serialise means as the flat JSON object both baseline files use.
pub fn means_to_json(means: &BTreeMap<String, f64>) -> String {
    baseline_to_json(means, &BTreeMap::new())
}

/// Per-runner baseline overrides: runner label → bench → mean (ns).
pub type RunnerBaselines = BTreeMap<String, BTreeMap<String, f64>>;

/// Extract a baseline file's `"runners"` section (empty when absent).
/// `write-baseline` uses this to carry hand-promoted per-runner entries
/// through a regeneration instead of silently deleting them.
pub fn parse_runners(text: &str) -> Result<RunnerBaselines, String> {
    let parsed = pi2::Json::parse(text).map_err(|e| e.to_string())?;
    let pi2::Json::Obj(entries) = &parsed else {
        return Err("baseline JSON must be an object".into());
    };
    let mut out = RunnerBaselines::new();
    let Some((_, runners)) = entries.iter().find(|(name, _)| name == "runners") else {
        return Ok(out);
    };
    let pi2::Json::Obj(runners) = runners else {
        return Err("'runners' must be an object of per-runner baselines".into());
    };
    for (label, per_runner) in runners {
        let pi2::Json::Obj(means) = per_runner else {
            return Err(format!("runner {label:?} baseline must be an object"));
        };
        let mut parsed_means = BTreeMap::new();
        for (bench, mean) in means {
            let mean = mean.as_f64().ok_or_else(|| {
                format!("runner {label:?} bench {bench:?} has a non-numeric mean")
            })?;
            parsed_means.insert(bench.clone(), mean);
        }
        out.insert(label.clone(), parsed_means);
    }
    Ok(out)
}

/// Serialise a full baseline file: flat means plus (when non-empty) the
/// `"runners"` override section.
pub fn baseline_to_json(means: &BTreeMap<String, f64>, runners: &RunnerBaselines) -> String {
    let mut out = String::from("{\n");
    for (i, (bench, mean)) in means.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "  \"{}\": {}", bench, *mean as u64);
    }
    if !runners.is_empty() {
        if !means.is_empty() {
            out.push_str(",\n");
        }
        out.push_str("  \"runners\": {\n");
        for (i, (label, per_runner)) in runners.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = writeln!(out, "    \"{}\": {{", label);
            for (j, (bench, mean)) in per_runner.iter().enumerate() {
                if j > 0 {
                    out.push_str(",\n");
                }
                let _ = write!(out, "      \"{}\": {}", bench, *mean as u64);
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }");
    }
    out.push_str("\n}\n");
    out
}

/// Whether a bench participates in the gate.
pub fn is_gated(bench: &str) -> bool {
    GATED_PREFIXES.iter().any(|p| bench.starts_with(p))
}

/// Whether a bench's numbers are only comparable on the machine that
/// measured the baseline (see [`RUNNER_SENSITIVE_PREFIXES`]).
pub fn runner_sensitive(bench: &str) -> bool {
    RUNNER_SENSITIVE_PREFIXES
        .iter()
        .any(|p| bench.starts_with(p))
}

/// The benches whose committed mean under `runner` comes from a per-runner
/// override (empty with no label, or a label with no entry). [`check`]
/// uses this provenance to decide whether a runner-sensitive bench gates
/// hard or merely warns.
pub fn runner_backed(
    baseline_text: &str,
    runner: Option<&str>,
) -> Result<BTreeSet<String>, String> {
    let Some(label) = runner else {
        return Ok(BTreeSet::new());
    };
    let runners = parse_runners(baseline_text)?;
    Ok(runners
        .get(label)
        .map(|means| means.keys().cloned().collect())
        .unwrap_or_default())
}

/// Promote a CI run's fresh means (a `BENCH_PR<n>.json` artifact) into the
/// committed baseline's `"runners"` section under `label`, returning the
/// rewritten baseline file.
///
/// Only **gated** benches are promoted — ungated benches never fail the
/// gate, so per-runner overrides for them would be dead weight. Promoted
/// means replace the label's previous entry for the same bench; benches
/// the artifact does not measure keep their existing per-runner mean, and
/// the flat (dev-machine) section is untouched. This is the maintained
/// path for turning "CI gates runner numbers against dev numbers under a
/// wide threshold" into apples-to-apples per-runner gating.
pub fn promote(
    baseline_text: &str,
    pr_means: &BTreeMap<String, f64>,
    label: &str,
) -> Result<String, String> {
    let flat = parse_baseline_json(baseline_text)?;
    let mut runners = parse_runners(baseline_text)?;
    let promoted: BTreeMap<String, f64> = pr_means
        .iter()
        .filter(|(bench, _)| is_gated(bench))
        .map(|(bench, &mean)| (bench.clone(), mean))
        .collect();
    if promoted.is_empty() {
        return Err("artifact holds no gated benches to promote".into());
    }
    runners
        .entry(label.to_string())
        .or_default()
        .extend(promoted);
    Ok(baseline_to_json(&flat, &runners))
}

/// Compare fresh means against the committed baseline. Only gated benches
/// produce findings; a gated bench missing from the fresh run is a finding
/// too. Benches new in the fresh run pass (they have no baseline yet).
///
/// `runner_backed` is the provenance set from [`runner_backed`]: a
/// [`runner_sensitive`] bench whose committed mean did **not** come from a
/// per-runner entry produces a non-fatal [`Finding::Warning`] instead of a
/// regression — its baseline was measured on a different machine, and e.g.
/// a flat `t1`→`t8` curve on a single-core container is oversubscription,
/// not a regression. Benches whose numbers are machine-portable (and any
/// bench with a promoted per-runner mean) still fail hard.
pub fn check(
    committed: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    threshold: f64,
    runner_backed: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (bench, &base) in committed {
        if !is_gated(bench) {
            continue;
        }
        match fresh.get(bench) {
            None => findings.push(Finding::Missing {
                bench: bench.clone(),
            }),
            Some(&now) if base > 0.0 && now > base * threshold => {
                if runner_sensitive(bench) && !runner_backed.contains(bench) {
                    findings.push(Finding::Warning {
                        bench: bench.clone(),
                        committed: base,
                        fresh: now,
                    })
                } else {
                    findings.push(Finding::Regression {
                        bench: bench.clone(),
                        committed: base,
                        fresh: now,
                    })
                }
            }
            Some(_) => {}
        }
    }
    findings
}

/// Human-readable report of a gate run (one line per gated bench).
pub fn report(
    committed: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    threshold: f64,
    runner_backed: &BTreeSet<String>,
) -> String {
    let mut out = String::new();
    for (bench, &now) in fresh {
        let gated = if is_gated(bench) { "gated" } else { "info " };
        match committed.get(bench) {
            Some(&base) if base > 0.0 => {
                let ratio = now / base;
                let verdict = if !is_gated(bench) {
                    "-"
                } else if ratio <= threshold {
                    "ok"
                } else if runner_sensitive(bench) && !runner_backed.contains(bench) {
                    "warn (no per-runner baseline)"
                } else {
                    "FAIL"
                };
                let _ = writeln!(
                    out,
                    "{gated} {bench:<44} {base:>12.0} -> {now:>12.0} ns  ({ratio:>5.2}x)  {verdict}"
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "{gated} {bench:<44} {:>12} -> {now:>12.0} ns  (new)",
                    "-"
                );
            }
        }
    }
    for f in check(committed, fresh, threshold, runner_backed) {
        if let Finding::Missing { bench } = f {
            let _ = writeln!(out, "gated {bench:<44} MISSING from fresh run  FAIL");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn means(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn csv_parses_and_later_lines_win() {
        let csv = "ci,mcts/explore_30iters,1000\n\
                   other,mcts/explore_30iters,9\n\
                   ci,engine/exec_filter/vectorized/8,500\n\
                   ci,mcts/explore_30iters,1100\n";
        let m = parse_csv(csv, "ci");
        assert_eq!(m.len(), 2);
        assert_eq!(m["mcts/explore_30iters"], 1100.0);
        assert_eq!(m["engine/exec_filter/vectorized/8"], 500.0);
    }

    #[test]
    fn json_round_trips() {
        let m = means(&[("mcts/a", 123.0), ("engine/exec_b", 77.0)]);
        let j = means_to_json(&m);
        assert_eq!(parse_baseline_json(&j).unwrap(), m);
    }

    const RUNNER_KEYED: &str = r#"{
        "mcts/a": 1000,
        "engine/exec_b": 200,
        "runners": {
            "ubuntu-latest": { "mcts/a": 3000 },
            "macos-14": { "mcts/a": 1500, "engine/exec_b": 400 }
        }
    }"#;

    #[test]
    fn runner_label_overrides_bench_by_bench() {
        let m = parse_baseline_json_for(RUNNER_KEYED, Some("ubuntu-latest")).unwrap();
        assert_eq!(m["mcts/a"], 3000.0, "per-runner mean wins");
        assert_eq!(
            m["engine/exec_b"], 200.0,
            "unlisted bench falls back to the flat baseline"
        );
        let m = parse_baseline_json_for(RUNNER_KEYED, Some("macos-14")).unwrap();
        assert_eq!((m["mcts/a"], m["engine/exec_b"]), (1500.0, 400.0));
    }

    #[test]
    fn unknown_or_absent_runner_falls_back_entirely() {
        let flat = means(&[("mcts/a", 1000.0), ("engine/exec_b", 200.0)]);
        assert_eq!(
            parse_baseline_json_for(RUNNER_KEYED, Some("windows-2022")).unwrap(),
            flat,
            "label with no entry keeps the committed dev-machine numbers"
        );
        assert_eq!(
            parse_baseline_json_for(RUNNER_KEYED, None).unwrap(),
            flat,
            "no label ignores the runners section"
        );
        // A baseline with no runners section accepts any label.
        let j = means_to_json(&flat);
        assert_eq!(
            parse_baseline_json_for(&j, Some("ubuntu-latest")).unwrap(),
            flat
        );
    }

    #[test]
    fn baseline_serializer_round_trips_runners() {
        let flat = means(&[("mcts/a", 1000.0), ("engine/exec_b", 200.0)]);
        let runners: RunnerBaselines =
            [("ubuntu-latest".to_string(), means(&[("mcts/a", 3000.0)]))]
                .into_iter()
                .collect();
        let j = baseline_to_json(&flat, &runners);
        // The flat section parses as before; the runners section survives
        // a parse → re-serialise cycle (what write-baseline relies on to
        // not delete hand-promoted entries).
        assert_eq!(parse_baseline_json(&j).unwrap(), flat);
        assert_eq!(parse_runners(&j).unwrap(), runners);
        assert_eq!(baseline_to_json(&flat, &parse_runners(&j).unwrap()), j);
        let m = parse_baseline_json_for(&j, Some("ubuntu-latest")).unwrap();
        assert_eq!(m["mcts/a"], 3000.0);
        // Runner-less files yield an empty section, and means_to_json is
        // the runner-less special case.
        assert_eq!(
            parse_runners(&means_to_json(&flat)).unwrap(),
            RunnerBaselines::new()
        );
        assert_eq!(
            baseline_to_json(&flat, &RunnerBaselines::new()),
            means_to_json(&flat)
        );
    }

    #[test]
    fn malformed_runner_sections_error() {
        assert!(parse_baseline_json_for(r#"{"runners": 5}"#, None).is_err());
        assert!(
            parse_baseline_json_for(r#"{"runners": {"x": 5}}"#, Some("x")).is_err(),
            "a runner entry must be an object"
        );
        assert!(
            parse_baseline_json_for(r#"{"runners": {"x": {"b": "fast"}}}"#, Some("x")).is_err(),
            "runner means must be numeric"
        );
    }

    #[test]
    fn gating_prefixes() {
        assert!(is_gated("mcts/explore_30iters"));
        assert!(is_gated("engine/exec_filter/vectorized/8"));
        assert!(is_gated("engine/exec_big_filter/t8"));
        assert!(is_gated("engine/exec_big_join/t1"));
        assert!(is_gated("service/session_throughput/covid/warm"));
        assert!(is_gated("service/server_throughput/covid"));
        assert!(is_gated("service/ws_push_fanout/covid"));
        assert!(is_gated("service/append_dispatch/covid"));
        // Per-log end-to-end benches are informational, not gated — and
        // `engine/exec_` must not swallow `engine/execute_log/*`.
        assert!(!is_gated("engine/execute_log/sdss"));
        assert!(!is_gated("transform/bind_all_filter"));
    }

    #[test]
    fn promote_adds_gated_benches_under_runner_label() {
        let baseline = baseline_to_json(
            &means(&[("mcts/a", 1000.0), ("engine/exec_big_filter/t8", 500.0)]),
            &[("macos-14".to_string(), means(&[("mcts/a", 1500.0)]))]
                .into_iter()
                .collect(),
        );
        let artifact = means(&[
            ("mcts/a", 3000.0),
            ("engine/exec_big_filter/t8", 900.0),
            ("engine/execute_log/sdss", 7.0), // ungated: not promoted
        ]);
        let rewritten = promote(&baseline, &artifact, "ubuntu-latest").unwrap();
        // Flat section untouched; new label holds only the gated benches.
        assert_eq!(
            parse_baseline_json(&rewritten).unwrap(),
            parse_baseline_json(&baseline).unwrap()
        );
        let runners = parse_runners(&rewritten).unwrap();
        assert_eq!(
            runners["ubuntu-latest"],
            means(&[("mcts/a", 3000.0), ("engine/exec_big_filter/t8", 900.0)])
        );
        // Pre-existing labels survive; re-promoting overwrites per bench.
        assert_eq!(runners["macos-14"], means(&[("mcts/a", 1500.0)]));
        let again = promote(&rewritten, &means(&[("mcts/a", 2800.0)]), "ubuntu-latest").unwrap();
        let runners = parse_runners(&again).unwrap();
        assert_eq!(runners["ubuntu-latest"]["mcts/a"], 2800.0);
        assert_eq!(runners["ubuntu-latest"]["engine/exec_big_filter/t8"], 900.0);
        // A gate under the promoted label now uses the CI numbers.
        let m = parse_baseline_json_for(&again, Some("ubuntu-latest")).unwrap();
        assert_eq!(m["mcts/a"], 2800.0);
        // An artifact with nothing gated is an error, not a no-op.
        assert!(promote(&baseline, &means(&[("transform/x", 1.0)]), "l").is_err());
    }

    #[test]
    fn regressions_beyond_threshold_fail() {
        let committed = means(&[("mcts/a", 1000.0), ("engine/exec_b/v/1", 100.0)]);
        // 20% slower passes at a 25% threshold; 30% slower fails.
        let fresh = means(&[("mcts/a", 1200.0), ("engine/exec_b/v/1", 130.0)]);
        let f = check(&committed, &fresh, DEFAULT_THRESHOLD, &BTreeSet::new());
        assert_eq!(
            f,
            vec![Finding::Regression {
                bench: "engine/exec_b/v/1".into(),
                committed: 100.0,
                fresh: 130.0,
            }]
        );
    }

    #[test]
    fn improvements_and_ungated_changes_pass() {
        let committed = means(&[
            ("mcts/a", 1000.0),
            ("engine/execute_log/sales", 100.0), // ungated
        ]);
        let fresh = means(&[
            ("mcts/a", 400.0),                    // improvement
            ("engine/execute_log/sales", 9000.0), // ungated regression
        ]);
        assert!(check(&committed, &fresh, DEFAULT_THRESHOLD, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn missing_gated_bench_fails() {
        let committed = means(&[("mcts/a", 1000.0)]);
        let fresh = means(&[]);
        assert_eq!(
            check(&committed, &fresh, DEFAULT_THRESHOLD, &BTreeSet::new()),
            vec![Finding::Missing {
                bench: "mcts/a".into()
            }]
        );
    }

    #[test]
    fn runner_sensitive_prefixes() {
        assert!(runner_sensitive("engine/exec_big_filter/t8"));
        assert!(runner_sensitive("data/kernels_filter/avx2"));
        assert!(is_gated("data/kernels_agg/t1"), "kernels benches are gated");
        assert!(!runner_sensitive("mcts/explore_30iters"));
        assert!(!runner_sensitive("engine/exec_filter/vectorized/8"));
    }

    #[test]
    fn runner_sensitive_regression_without_runner_entry_warns() {
        let committed = means(&[
            ("engine/exec_big_filter/t8", 100.0),
            ("data/kernels_agg/sum_i64", 50.0),
            ("mcts/a", 1000.0),
        ]);
        // Everything 10x slower: the dev-container numbers against a dev
        // machine's flat baseline.
        let fresh = means(&[
            ("engine/exec_big_filter/t8", 1000.0),
            ("data/kernels_agg/sum_i64", 500.0),
            ("mcts/a", 10_000.0),
        ]);
        let f = check(&committed, &fresh, DEFAULT_THRESHOLD, &BTreeSet::new());
        // The machine-portable mcts bench still fails hard; the two
        // runner-sensitive tiers warn.
        let fatal: Vec<_> = f.iter().filter(|f| f.is_fatal()).collect();
        assert_eq!(
            fatal,
            vec![&Finding::Regression {
                bench: "mcts/a".into(),
                committed: 1000.0,
                fresh: 10_000.0,
            }]
        );
        assert_eq!(f.iter().filter(|f| !f.is_fatal()).count(), 2);
        assert!(f.contains(&Finding::Warning {
            bench: "engine/exec_big_filter/t8".into(),
            committed: 100.0,
            fresh: 1000.0,
        }));
        // The report marks the warn verdict distinctly from FAIL.
        let r = report(&committed, &fresh, DEFAULT_THRESHOLD, &BTreeSet::new());
        assert!(r.contains("warn (no per-runner baseline)"), "{r}");
    }

    #[test]
    fn runner_backed_entry_turns_warning_into_regression() {
        let committed = means(&[("engine/exec_big_filter/t8", 100.0)]);
        let fresh = means(&[("engine/exec_big_filter/t8", 1000.0)]);
        let backed: BTreeSet<String> = ["engine/exec_big_filter/t8".to_string()].into();
        let f = check(&committed, &fresh, DEFAULT_THRESHOLD, &backed);
        assert_eq!(
            f,
            vec![Finding::Regression {
                bench: "engine/exec_big_filter/t8".into(),
                committed: 100.0,
                fresh: 1000.0,
            }]
        );
        // A runner-sensitive bench missing from the fresh run still fails:
        // the warn path is about untrustworthy numbers, not dropped benches.
        let f = check(&committed, &means(&[]), DEFAULT_THRESHOLD, &BTreeSet::new());
        assert!(f.iter().all(Finding::is_fatal));
    }

    #[test]
    fn runner_backed_reads_provenance_from_baseline_text() {
        let baseline = baseline_to_json(
            &means(&[("engine/exec_big_filter/t8", 100.0)]),
            &[(
                "ubuntu-latest".to_string(),
                means(&[("engine/exec_big_filter/t8", 900.0)]),
            )]
            .into_iter()
            .collect(),
        );
        let backed = runner_backed(&baseline, Some("ubuntu-latest")).unwrap();
        assert!(backed.contains("engine/exec_big_filter/t8"));
        assert!(runner_backed(&baseline, None).unwrap().is_empty());
        assert!(runner_backed(&baseline, Some("macos-14"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn inflated_fresh_entry_is_reported_in_text() {
        let committed = means(&[("mcts/a", 1000.0)]);
        let fresh = means(&[("mcts/a", 10_000.0)]);
        let r = report(&committed, &fresh, DEFAULT_THRESHOLD, &BTreeSet::new());
        assert!(r.contains("FAIL"), "{r}");
    }
}
