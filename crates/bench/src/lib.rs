//! Shared harness utilities for regenerating the paper's tables and
//! figures (§7). Each binary in `src/bin/` prints one artifact;
//! EXPERIMENTS.md records paper-vs-measured values.

pub mod gate;
pub mod load;

use pi2::{Generation, GenerationConfig, MctsConfig, Pi2};
use pi2_workloads::{catalog, log, LogKind};
use std::time::Duration;

/// One measured condition for the §7.3 experiments.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub log: &'static str,
    pub early_stop: usize,
    pub sync_interval: usize,
    pub workers: usize,
    pub mcts_time: Duration,
    pub mapping_time: Duration,
    pub cost: f64,
}

impl Measurement {
    pub fn total_time(&self) -> Duration {
        self.mcts_time + self.mapping_time
    }
}

/// The generation configuration for a §7.3 condition; defaults follow the
/// paper (es = 30, p = 3, s = 10).
pub fn condition_config(
    early_stop: usize,
    sync_interval: usize,
    workers: usize,
    seed: u64,
) -> GenerationConfig {
    GenerationConfig {
        mcts: MctsConfig {
            early_stop,
            sync_interval,
            workers,
            seed,
            ..MctsConfig::default()
        },
        mapping: Default::default(),
    }
}

/// Run one condition against one log.
pub fn run_condition(
    kind: LogKind,
    early_stop: usize,
    sync_interval: usize,
    workers: usize,
    seed: u64,
) -> Measurement {
    let l = log(kind);
    let refs: Vec<&str> = l.queries.iter().map(|s| s.as_str()).collect();
    let pi2 = Pi2::new(catalog());
    let g = pi2
        .generate_with(
            &refs,
            &condition_config(early_stop, sync_interval, workers, seed),
        )
        .unwrap_or_else(|e| panic!("[{}] {e}", l.name));
    Measurement {
        log: l.name,
        early_stop,
        sync_interval,
        workers,
        mcts_time: g.mcts_stats.duration,
        mapping_time: g.mapping_time,
        cost: g.cost,
    }
}

/// Generate with the paper-default configuration.
pub fn generate_default(kind: LogKind, seed: u64) -> Generation {
    let l = log(kind);
    let refs: Vec<&str> = l.queries.iter().map(|s| s.as_str()).collect();
    Pi2::new(catalog())
        .generate_with(&refs, &condition_config(30, 10, 3, seed))
        .unwrap_or_else(|e| panic!("[{}] {e}", l.name))
}

/// §7.3 interface quality: `c*/c`, where `c*` is the minimum cost observed
/// across all conditions for the same log. 1.0 = optimal.
pub fn quality(cost: f64, best: f64) -> f64 {
    if cost <= 0.0 {
        1.0
    } else {
        (best / cost).clamp(0.0, 1.0)
    }
}

/// Group measurements per log and compute each one's quality against the
/// per-log optimum.
pub fn qualities(measurements: &[Measurement]) -> Vec<(Measurement, f64)> {
    let mut out = Vec::with_capacity(measurements.len());
    for m in measurements {
        let best = measurements
            .iter()
            .filter(|o| o.log == m.log)
            .map(|o| o.cost)
            .fold(f64::INFINITY, f64::min);
        out.push((m.clone(), quality(m.cost, best)));
    }
    out
}

/// Median of a sample.
pub fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        return f64::NAN;
    }
    let mid = xs.len() / 2;
    if xs.len().is_multiple_of(2) {
        (xs[mid - 1] + xs[mid]) / 2.0
    } else {
        xs[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_is_bounded() {
        assert_eq!(quality(10.0, 10.0), 1.0);
        assert!(quality(20.0, 10.0) < 1.0);
        assert_eq!(quality(0.0, 0.0), 1.0);
    }

    #[test]
    fn median_of_samples() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn qualities_normalise_per_log() {
        let m = |log: &'static str, cost: f64| Measurement {
            log,
            early_stop: 30,
            sync_interval: 10,
            workers: 3,
            mcts_time: Duration::ZERO,
            mapping_time: Duration::ZERO,
            cost,
        };
        let ms = vec![m("a", 10.0), m("a", 20.0), m("b", 5.0)];
        let q = qualities(&ms);
        assert_eq!(q[0].1, 1.0);
        assert_eq!(q[1].1, 0.5);
        assert_eq!(q[2].1, 1.0);
    }
}
