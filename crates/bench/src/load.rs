//! The load-generation harness behind the `loadgen` binary
//! (`tools/loadgen.rs`) and the `service/server_throughput` bench.
//!
//! Three pieces, each unit-testable without a network: building a
//! *recorded event mix* for a workload (an alternating cycle in which
//! every event changes some view's resolved query — replaying it forever
//! keeps producing non-empty patches), replaying that mix over N
//! concurrent keep-alive connections against a running server
//! ([`run_load`]), and summarizing per-request latencies into a
//! [`LoadReport`] (throughput + p50/p95/p99).

use pi2::server::Http1Client;
use pi2::{
    Event, Generation, GenerationConfig, InteractionChoice, Json, MctsConfig, Pi2, Request,
    Session, Value, WidgetKind,
};
use pi2_workloads::big::big_catalog;
use pi2_workloads::{catalog, log, LogKind};
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// The deterministic, CI-sized generation configuration the load and
/// service benches share.
pub fn bench_config() -> GenerationConfig {
    GenerationConfig {
        mcts: MctsConfig {
            workers: 2,
            max_iterations: 120,
            early_stop: 25,
            sync_interval: 10,
            seed: 42,
            ..MctsConfig::default()
        },
        mapping: Default::default(),
    }
}

/// Generate one of the paper workloads under [`bench_config`].
pub fn generation_for(kind: LogKind) -> Generation {
    let l = log(kind);
    let refs: Vec<&str> = l.queries.iter().map(|s| s.as_str()).collect();
    Pi2::new(catalog())
        .generate_with(&refs, &bench_config())
        .unwrap_or_else(|e| panic!("generation failed for {}: {e}", l.name))
}

/// The big-tier query log: one bench shape with a spread of thresholds,
/// so the mapper mines a drivable interaction over the literal. Kept to a
/// single table — generation cost scales with the row count the caller
/// picks.
pub fn big_queries() -> Vec<String> {
    [700, 900, 1100]
        .iter()
        .map(|t| {
            format!("SELECT state, sum(cases) FROM covid_big WHERE deaths > {t} GROUP BY state")
        })
        .collect()
}

/// Generate an interface over the scaled big tier (`big_catalog(rows)`)
/// under [`bench_config`]: the `loadgen --rows` path, measuring end-to-end
/// serving latency when every event answers against `rows`-row tables
/// instead of the paper-scale ones.
pub fn big_generation(rows: usize) -> Generation {
    let queries = big_queries();
    let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
    Pi2::new(big_catalog(rows))
        .generate_with(&refs, &bench_config())
        .unwrap_or_else(|e| panic!("big-tier generation failed at {rows} rows: {e}"))
}

/// Whether a pair of events truly alternates session state: both must
/// dispatch, and on a second lap each must still produce a non-empty
/// patch. (Continuous payloads snap to the nearest *expressible* option —
/// two payloads can land on the same option and stop alternating, which
/// would silently bench an empty loop.)
fn alternates(probe: &mut Session, pair: &[Event; 2]) -> bool {
    if probe.dispatch(&pair[0]).is_err() || probe.dispatch(&pair[1]).is_err() {
        return false;
    }
    let again_a = probe.dispatch(&pair[0]);
    let again_b = probe.dispatch(&pair[1]);
    matches!((again_a, again_b), (Ok(pa), Ok(pb)) if !pa.is_empty() && !pb.is_empty())
}

/// An alternating event cycle: for each drivable interaction, pairs of
/// events toggling it between two distinct states, validated by probing a
/// scratch session. Replaying the cycle forever keeps changing queries, so
/// every dispatch emits a patch.
pub fn event_cycle(g: &Generation) -> Vec<Event> {
    let mut probe = g.session().expect("probe session");
    let mut cycle = Vec::new();
    for (ix, inst) in g.interface.interactions.iter().enumerate() {
        let pairs: Vec<[Event; 2]> = match &inst.choice {
            InteractionChoice::Widget { kind, domain, .. } => match kind {
                WidgetKind::Toggle => vec![[
                    Event::Toggle {
                        interaction: ix,
                        on: false,
                    },
                    Event::Toggle {
                        interaction: ix,
                        on: true,
                    },
                ]],
                _ if domain.size() >= 2 => vec![[
                    Event::Select {
                        interaction: ix,
                        option: 0,
                    },
                    Event::Select {
                        interaction: ix,
                        option: 1,
                    },
                ]],
                // Continuous widgets (sliders over a range) take value
                // payloads; the probe below keeps only pairs that truly
                // alternate.
                _ => vec![
                    [
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(10)],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(20)],
                        },
                    ],
                    [
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(0)],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(40)],
                        },
                    ],
                ],
            },
            InteractionChoice::Vis { .. } => {
                let ints = |a: i64, b: i64| Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(a), Value::Int(b)],
                };
                let dates = |a: &str, b: &str| Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Str(a.into()), Value::Str(b.into())],
                };
                vec![
                    [ints(20, 40), ints(30, 60)],
                    [ints(0, 10), ints(70, 100)],
                    [
                        dates("2019-01-01", "2019-01-31"),
                        dates("2019-02-01", "2019-02-28"),
                    ],
                    [
                        dates("2019-01-25", "2019-02-15"),
                        dates("2019-02-01", "2019-02-20"),
                    ],
                    [
                        Event::SetValues {
                            interaction: ix,
                            values: vec![
                                Value::Int(20),
                                Value::Int(40),
                                Value::Int(1),
                                Value::Int(3),
                            ],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![
                                Value::Int(30),
                                Value::Int(60),
                                Value::Int(2),
                                Value::Int(4),
                            ],
                        },
                    ],
                ]
            }
        };
        // Keep every truly-alternating pair (not just the first): the
        // expensive views — e.g. the Sales correlated-HAVING tree — must
        // take part for the numbers to mean anything.
        for pair in pairs {
            if alternates(&mut probe, &pair) {
                cycle.extend(pair);
            }
        }
    }
    assert!(!cycle.is_empty(), "no drivable interaction pair found");
    cycle
}

/// `pct`-th percentile (0–100] of an ascending-sorted sample, by the
/// nearest-rank method. Empty samples yield 0.
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent sessions (connections) driven.
    pub sessions: usize,
    /// Total event requests sent.
    pub events: usize,
    /// Responses that were not `200` patches (protocol errors, transport
    /// rejections). A healthy run reports zero.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Event latency percentiles, in nanoseconds (request write → full
    /// response read).
    pub p50_ns: u64,
    /// 95th percentile latency (ns).
    pub p95_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_ns: u64,
}

impl LoadReport {
    /// Sustained events/second across all sessions.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.events as f64 / self.elapsed.as_secs_f64()
    }

    /// Merge per-session latency samples into a report.
    pub fn from_latencies(
        sessions: usize,
        mut latencies_ns: Vec<u64>,
        errors: usize,
        elapsed: Duration,
    ) -> LoadReport {
        latencies_ns.sort_unstable();
        LoadReport {
            sessions,
            events: latencies_ns.len(),
            errors,
            elapsed,
            p50_ns: percentile(&latencies_ns, 50.0),
            p95_ns: percentile(&latencies_ns, 95.0),
            p99_ns: percentile(&latencies_ns, 99.0),
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}µs", ns as f64 / 1e3)
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions · {} events in {:.2}s · {:.0} events/s · \
             p50 {} · p95 {} · p99 {} · {} errors",
            self.sessions,
            self.events,
            self.elapsed.as_secs_f64(),
            self.throughput(),
            fmt_ns(self.p50_ns),
            fmt_ns(self.p95_ns),
            fmt_ns(self.p99_ns),
            self.errors,
        )
    }
}

/// Open a wire session over one connection; returns the session id.
pub fn open_session(client: &mut Http1Client, workload: &str) -> io::Result<u64> {
    let body = pi2::request_to_json(&Request::Open {
        workload: workload.to_string(),
    });
    let resp = client.post("/v1", &body)?;
    let parsed = Json::parse(&resp.body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if resp.status != 200 {
        return Err(io::Error::other(format!(
            "open failed with {}: {}",
            resp.status, resp.body
        )));
    }
    parsed
        .get("session")
        .and_then(Json::as_i64)
        .map(|id| id as u64)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "opened response lacks session"))
}

/// Replay `events_per_session` events (cycling through `cycle`) on one
/// open keep-alive connection; returns per-event latencies (ns) and the
/// error count.
pub fn replay_session(
    client: &mut Http1Client,
    session: u64,
    cycle: &[Event],
    events_per_session: usize,
) -> io::Result<(Vec<u64>, usize)> {
    let mut latencies = Vec::with_capacity(events_per_session);
    let mut errors = 0;
    for i in 0..events_per_session {
        let body = pi2::request_to_json(&Request::Event {
            session,
            event: cycle[i % cycle.len()].clone(),
        });
        let start = Instant::now();
        let resp = client.post("/v1", &body)?;
        latencies.push(start.elapsed().as_nanos() as u64);
        if resp.status != 200 || !resp.body.contains("\"type\":\"patch\"") {
            errors += 1;
        }
    }
    Ok((latencies, errors))
}

/// Drive `sessions` concurrent keep-alive connections against a running
/// server: each opens its own wire session over `workload`, replays
/// `events_per_session` events from the recorded `cycle`, and closes.
pub fn run_load(
    addr: SocketAddr,
    workload: &str,
    cycle: &[Event],
    sessions: usize,
    events_per_session: usize,
) -> io::Result<LoadReport> {
    let start = Instant::now();
    let results: Vec<io::Result<(Vec<u64>, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Http1Client::connect(addr)?;
                    let session = open_session(&mut client, workload)?;
                    let out = replay_session(&mut client, session, cycle, events_per_session)?;
                    let close = pi2::request_to_json(&Request::Close { session });
                    let resp = client.post("/v1", &close)?;
                    if resp.status != 200 {
                        return Err(io::Error::other(format!(
                            "close failed with {}: {}",
                            resp.status, resp.body
                        )));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut latencies = Vec::with_capacity(sessions * events_per_session);
    let mut errors = 0;
    for result in results {
        let (lats, errs) = result?;
        latencies.extend(lats);
        errors += errs;
    }
    Ok(LoadReport::from_latencies(
        sessions, latencies, errors, elapsed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2::server::ServerConfig;
    use pi2::{Pi2Service, Table};
    use pi2_data::{Catalog, DataType};
    use std::sync::Arc;

    #[test]
    fn percentile_uses_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50.0), 50);
        assert_eq!(percentile(&sample, 95.0), 95);
        assert_eq!(percentile(&sample, 99.0), 99);
        assert_eq!(percentile(&sample, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn report_summarizes_and_formats() {
        let report = LoadReport::from_latencies(
            4,
            vec![5_000, 1_000, 3_000, 2_000_000],
            1,
            Duration::from_secs(2),
        );
        assert_eq!(report.events, 4);
        assert_eq!(report.p50_ns, 3_000);
        assert_eq!(report.p99_ns, 2_000_000);
        assert_eq!(report.throughput(), 2.0);
        let text = report.to_string();
        assert!(text.contains("p99 2.00ms"), "{text}");
        assert!(text.contains("1 errors"), "{text}");
    }

    /// The `--rows` path at toy scale: generation over a scaled big tier
    /// yields a drivable interface whose recorded mix dispatches cleanly.
    #[test]
    fn big_tier_generation_drives_sessions() {
        let generation = big_generation(2_000);
        let cycle = event_cycle(&generation);
        let mut session = generation.session().unwrap();
        for event in cycle.iter().take(4) {
            session.dispatch(event).unwrap();
        }
    }

    /// End to end over loopback on a tiny synthetic workload: N sessions
    /// replay a recorded mix with zero protocol errors.
    #[test]
    fn load_run_over_tcp_reports_zero_errors() {
        let mut catalog = Catalog::new();
        let rows: Vec<Vec<pi2::Value>> = (0..24)
            .map(|i| vec![pi2::Value::Int(i % 4), pi2::Value::Int(10 * (i % 6))])
            .collect();
        let t = Table::from_rows(vec![("a", DataType::Int), ("b", DataType::Int)], rows).unwrap();
        catalog.add_table("T", t, vec![]);
        let service = Arc::new(Pi2Service::new());
        let generation = service
            .register(
                "tiny",
                catalog,
                &[
                    "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
                    "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
                ],
                &GenerationConfig::quick(),
            )
            .unwrap();
        let cycle = event_cycle(&generation);
        let server = pi2::serve(Arc::clone(&service), ServerConfig::default()).unwrap();
        let report = run_load(server.local_addr(), "tiny", &cycle, 4, 12).unwrap();
        assert_eq!(report.sessions, 4);
        assert_eq!(report.events, 48);
        assert_eq!(report.errors, 0, "{report}");
        assert!(report.p99_ns >= report.p50_ns);
        server.shutdown();
    }
}
