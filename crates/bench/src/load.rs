//! The load-generation harness behind the `loadgen` binary
//! (`tools/loadgen.rs`) and the `service/server_throughput` bench.
//!
//! Three pieces, each unit-testable without a network: building a
//! *recorded event mix* for a workload (an alternating cycle in which
//! every event changes some view's resolved query — replaying it forever
//! keeps producing non-empty patches), replaying that mix over N
//! concurrent keep-alive connections against a running server
//! ([`run_load`]), and summarizing per-request latencies into a
//! [`LoadReport`] (throughput + p50/p95/p99).

use pi2::server::{Http1Client, WsClient};
use pi2::{
    Event, Generation, GenerationConfig, InteractionChoice, Json, MctsConfig, Pi2, Request,
    Session, Table, Value, WidgetKind,
};
use pi2_workloads::big::big_catalog;
use pi2_workloads::{catalog, log, LogKind};
use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// The deterministic, CI-sized generation configuration the load and
/// service benches share.
pub fn bench_config() -> GenerationConfig {
    GenerationConfig {
        mcts: MctsConfig {
            workers: 2,
            max_iterations: 120,
            early_stop: 25,
            sync_interval: 10,
            seed: 42,
            ..MctsConfig::default()
        },
        mapping: Default::default(),
    }
}

/// Generate one of the paper workloads under [`bench_config`].
pub fn generation_for(kind: LogKind) -> Generation {
    let l = log(kind);
    let refs: Vec<&str> = l.queries.iter().map(|s| s.as_str()).collect();
    Pi2::new(catalog())
        .generate_with(&refs, &bench_config())
        .unwrap_or_else(|e| panic!("generation failed for {}: {e}", l.name))
}

/// The big-tier query log: one bench shape with a spread of thresholds,
/// so the mapper mines a drivable interaction over the literal. Kept to a
/// single table — generation cost scales with the row count the caller
/// picks.
pub fn big_queries() -> Vec<String> {
    [700, 900, 1100]
        .iter()
        .map(|t| {
            format!("SELECT state, sum(cases) FROM covid_big WHERE deaths > {t} GROUP BY state")
        })
        .collect()
}

/// Generate an interface over the scaled big tier (`big_catalog(rows)`)
/// under [`bench_config`]: the `loadgen --rows` path, measuring end-to-end
/// serving latency when every event answers against `rows`-row tables
/// instead of the paper-scale ones.
pub fn big_generation(rows: usize) -> Generation {
    let queries = big_queries();
    let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
    Pi2::new(big_catalog(rows))
        .generate_with(&refs, &bench_config())
        .unwrap_or_else(|e| panic!("big-tier generation failed at {rows} rows: {e}"))
}

/// Whether a pair of events truly alternates session state: both must
/// dispatch, and on a second lap each must still produce a non-empty
/// patch. (Continuous payloads snap to the nearest *expressible* option —
/// two payloads can land on the same option and stop alternating, which
/// would silently bench an empty loop.)
fn alternates(probe: &mut Session, pair: &[Event; 2]) -> bool {
    if probe.dispatch(&pair[0]).is_err() || probe.dispatch(&pair[1]).is_err() {
        return false;
    }
    let again_a = probe.dispatch(&pair[0]);
    let again_b = probe.dispatch(&pair[1]);
    matches!((again_a, again_b), (Ok(pa), Ok(pb)) if !pa.is_empty() && !pb.is_empty())
}

/// An alternating event cycle: for each drivable interaction, pairs of
/// events toggling it between two distinct states, validated by probing a
/// scratch session. Replaying the cycle forever keeps changing queries, so
/// every dispatch emits a patch.
pub fn event_cycle(g: &Generation) -> Vec<Event> {
    let mut probe = g.session().expect("probe session");
    let mut cycle = Vec::new();
    for (ix, inst) in g.interface.interactions.iter().enumerate() {
        let pairs: Vec<[Event; 2]> = match &inst.choice {
            InteractionChoice::Widget { kind, domain, .. } => match kind {
                WidgetKind::Toggle => vec![[
                    Event::Toggle {
                        interaction: ix,
                        on: false,
                    },
                    Event::Toggle {
                        interaction: ix,
                        on: true,
                    },
                ]],
                _ if domain.size() >= 2 => vec![[
                    Event::Select {
                        interaction: ix,
                        option: 0,
                    },
                    Event::Select {
                        interaction: ix,
                        option: 1,
                    },
                ]],
                // Continuous widgets (sliders over a range) take value
                // payloads; the probe below keeps only pairs that truly
                // alternate.
                _ => vec![
                    [
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(10)],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(20)],
                        },
                    ],
                    [
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(0)],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(40)],
                        },
                    ],
                ],
            },
            InteractionChoice::Vis { .. } => {
                let ints = |a: i64, b: i64| Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(a), Value::Int(b)],
                };
                let dates = |a: &str, b: &str| Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Str(a.into()), Value::Str(b.into())],
                };
                vec![
                    [ints(20, 40), ints(30, 60)],
                    [ints(0, 10), ints(70, 100)],
                    [
                        dates("2019-01-01", "2019-01-31"),
                        dates("2019-02-01", "2019-02-28"),
                    ],
                    [
                        dates("2019-01-25", "2019-02-15"),
                        dates("2019-02-01", "2019-02-20"),
                    ],
                    [
                        Event::SetValues {
                            interaction: ix,
                            values: vec![
                                Value::Int(20),
                                Value::Int(40),
                                Value::Int(1),
                                Value::Int(3),
                            ],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![
                                Value::Int(30),
                                Value::Int(60),
                                Value::Int(2),
                                Value::Int(4),
                            ],
                        },
                    ],
                ]
            }
        };
        // Keep every truly-alternating pair (not just the first): the
        // expensive views — e.g. the Sales correlated-HAVING tree — must
        // take part for the numbers to mean anything.
        for pair in pairs {
            if alternates(&mut probe, &pair) {
                cycle.extend(pair);
            }
        }
    }
    assert!(!cycle.is_empty(), "no drivable interaction pair found");
    cycle
}

/// `pct`-th percentile (0–100] of an ascending-sorted sample, by the
/// nearest-rank method. Empty samples yield 0.
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent sessions (connections) driven.
    pub sessions: usize,
    /// Total event requests sent.
    pub events: usize,
    /// Responses that were not `200` patches (protocol errors, transport
    /// rejections). A healthy run reports zero.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Event latency percentiles, in nanoseconds (request write → full
    /// response read).
    pub p50_ns: u64,
    /// 95th percentile latency (ns).
    pub p95_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_ns: u64,
}

impl LoadReport {
    /// Sustained events/second across all sessions.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.events as f64 / self.elapsed.as_secs_f64()
    }

    /// Merge per-session latency samples into a report.
    pub fn from_latencies(
        sessions: usize,
        mut latencies_ns: Vec<u64>,
        errors: usize,
        elapsed: Duration,
    ) -> LoadReport {
        latencies_ns.sort_unstable();
        LoadReport {
            sessions,
            events: latencies_ns.len(),
            errors,
            elapsed,
            p50_ns: percentile(&latencies_ns, 50.0),
            p95_ns: percentile(&latencies_ns, 95.0),
            p99_ns: percentile(&latencies_ns, 99.0),
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}µs", ns as f64 / 1e3)
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions · {} events in {:.2}s · {:.0} events/s · \
             p50 {} · p95 {} · p99 {} · {} errors",
            self.sessions,
            self.events,
            self.elapsed.as_secs_f64(),
            self.throughput(),
            fmt_ns(self.p50_ns),
            fmt_ns(self.p95_ns),
            fmt_ns(self.p99_ns),
            self.errors,
        )
    }
}

/// The result of one WebSocket push-load run: request latency (the
/// writer's send → own response) and push latency (the writer's send →
/// a subscriber receiving its fanned-out patch) are separate
/// distributions — the second includes per-peer replay and the push lane
/// through the reactor.
#[derive(Debug, Clone)]
pub struct WsLoadReport {
    /// Subscribed peer connections (the writer is one more).
    pub subscribers: usize,
    /// Events the writer dispatched.
    pub events: usize,
    /// Pushed messages received across all subscribers (a clean run
    /// receives `subscribers × events`).
    pub pushes: usize,
    /// Writer responses or pushed messages that were not patches.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Writer request latency percentiles (ns).
    pub request_p50_ns: u64,
    /// 95th percentile writer request latency (ns).
    pub request_p95_ns: u64,
    /// 99th percentile writer request latency (ns).
    pub request_p99_ns: u64,
    /// Push latency percentiles (ns): writer send → subscriber receive.
    pub push_p50_ns: u64,
    /// 95th percentile push latency (ns).
    pub push_p95_ns: u64,
    /// 99th percentile push latency (ns).
    pub push_p99_ns: u64,
}

impl WsLoadReport {
    /// Pushed messages delivered per second across all subscribers.
    pub fn push_throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.pushes as f64 / self.elapsed.as_secs_f64()
    }
}

impl fmt::Display for WsLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "1 writer + {} subscribers · {} events · {} pushes in {:.2}s · \
             {:.0} pushes/s · request p50 {} p95 {} p99 {} · \
             push p50 {} p95 {} p99 {} · {} errors",
            self.subscribers,
            self.events,
            self.pushes,
            self.elapsed.as_secs_f64(),
            self.push_throughput(),
            fmt_ns(self.request_p50_ns),
            fmt_ns(self.request_p95_ns),
            fmt_ns(self.request_p99_ns),
            fmt_ns(self.push_p50_ns),
            fmt_ns(self.push_p95_ns),
            fmt_ns(self.push_p99_ns),
            self.errors,
        )
    }
}

/// Open a wire session over one WebSocket connection; returns the
/// session id.
pub fn open_ws_session(client: &mut WsClient, workload: &str) -> io::Result<u64> {
    let body = pi2::request_to_json(&Request::Open {
        workload: workload.to_string(),
    });
    let resp = client.round_trip(&body)?;
    let parsed = Json::parse(&resp)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    parsed
        .get("session")
        .and_then(Json::as_i64)
        .map(|id| id as u64)
        .ok_or_else(|| io::Error::other(format!("open over ws failed: {resp}")))
}

/// Drive the protocol v2 push fan-out against a running server: one
/// writer session replays `events` events from `cycle` while
/// `subscribers` WebSocket peers — each with its own wire session
/// subscribed to the shared workload channel — receive every resulting
/// patch as a server-initiated frame. Reports request and push latency
/// separately.
pub fn run_ws_load(
    addr: SocketAddr,
    workload: &str,
    cycle: &[Event],
    subscribers: usize,
    events: usize,
) -> io::Result<WsLoadReport> {
    let mut writer = WsClient::connect(addr)?;
    let writer_session = open_ws_session(&mut writer, workload)?;
    // Subscribe every peer before the first event so no push is missed.
    let mut peers: Vec<WsClient> = Vec::with_capacity(subscribers);
    for _ in 0..subscribers {
        let mut peer = WsClient::connect(addr)?;
        let session = open_ws_session(&mut peer, workload)?;
        let resp = peer.round_trip(&pi2::request_to_json(&Request::Subscribe { session }))?;
        if !resp.contains("\"type\":\"subscribed\"") {
            return Err(io::Error::other(format!("subscribe failed: {resp}")));
        }
        peers.push(peer);
    }

    // The writer stamps each event's send instant before writing it, so a
    // subscriber can compute push latency for the i-th push it receives
    // (pushes arrive in dispatch order per peer).
    let send_times: std::sync::Mutex<Vec<Instant>> = std::sync::Mutex::new(Vec::new());
    let start = Instant::now();
    let (request_result, push_results) = std::thread::scope(|scope| {
        let send_times = &send_times;
        let peer_handles: Vec<_> = peers
            .iter_mut()
            .map(|peer| {
                scope.spawn(move || -> io::Result<(Vec<u64>, usize)> {
                    let mut latencies = Vec::with_capacity(events);
                    let mut errors = 0;
                    for i in 0..events {
                        let msg = match peer.read_message()? {
                            pi2::server::client::WsMessage::Text(msg) => msg,
                            pi2::server::client::WsMessage::Closed(code) => {
                                return Err(io::Error::other(format!(
                                    "subscriber closed (code {code:?}) after {i} pushes"
                                )));
                            }
                        };
                        let sent = send_times.lock().unwrap()[i];
                        latencies.push(sent.elapsed().as_nanos() as u64);
                        if !msg.contains("\"type\":\"patch\"") {
                            errors += 1;
                        }
                    }
                    Ok((latencies, errors))
                })
            })
            .collect();
        let writer_result: io::Result<(Vec<u64>, usize)> = (|| {
            let mut latencies = Vec::with_capacity(events);
            let mut errors = 0;
            for i in 0..events {
                let body = pi2::request_to_json(&Request::Event {
                    session: writer_session,
                    event: cycle[i % cycle.len()].clone(),
                });
                let sent = Instant::now();
                send_times.lock().unwrap().push(sent);
                let resp = writer.round_trip(&body)?;
                latencies.push(sent.elapsed().as_nanos() as u64);
                if !resp.contains("\"type\":\"patch\"") {
                    errors += 1;
                }
            }
            Ok((latencies, errors))
        })();
        let push_results: Vec<io::Result<(Vec<u64>, usize)>> = peer_handles
            .into_iter()
            .map(|h| h.join().expect("subscriber thread panicked"))
            .collect();
        (writer_result, push_results)
    });
    let elapsed = start.elapsed();
    let (mut request_lat, mut errors) = request_result?;
    let mut push_lat = Vec::with_capacity(subscribers * events);
    for result in push_results {
        let (lats, errs) = result?;
        push_lat.extend(lats);
        errors += errs;
    }
    let pushes = push_lat.len();
    request_lat.sort_unstable();
    push_lat.sort_unstable();
    Ok(WsLoadReport {
        subscribers,
        events,
        pushes,
        errors,
        elapsed,
        request_p50_ns: percentile(&request_lat, 50.0),
        request_p95_ns: percentile(&request_lat, 95.0),
        request_p99_ns: percentile(&request_lat, 99.0),
        push_p50_ns: percentile(&push_lat, 50.0),
        push_p95_ns: percentile(&push_lat, 95.0),
        push_p99_ns: percentile(&push_lat, 99.0),
    })
}

/// Open a wire session over one connection; returns the session id.
pub fn open_session(client: &mut Http1Client, workload: &str) -> io::Result<u64> {
    let body = pi2::request_to_json(&Request::Open {
        workload: workload.to_string(),
    });
    let resp = client.post("/v1", &body)?;
    let parsed = Json::parse(&resp.body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if resp.status != 200 {
        return Err(io::Error::other(format!(
            "open failed with {}: {}",
            resp.status, resp.body
        )));
    }
    parsed
        .get("session")
        .and_then(Json::as_i64)
        .map(|id| id as u64)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "opened response lacks session"))
}

/// Replay `events_per_session` events (cycling through `cycle`) on one
/// open keep-alive connection; returns per-event latencies (ns) and the
/// error count.
pub fn replay_session(
    client: &mut Http1Client,
    session: u64,
    cycle: &[Event],
    events_per_session: usize,
) -> io::Result<(Vec<u64>, usize)> {
    let mut latencies = Vec::with_capacity(events_per_session);
    let mut errors = 0;
    for i in 0..events_per_session {
        let body = pi2::request_to_json(&Request::Event {
            session,
            event: cycle[i % cycle.len()].clone(),
        });
        let start = Instant::now();
        let resp = client.post("/v1", &body)?;
        latencies.push(start.elapsed().as_nanos() as u64);
        if resp.status != 200 || !resp.body.contains("\"type\":\"patch\"") {
            errors += 1;
        }
    }
    Ok((latencies, errors))
}

/// Drive `sessions` concurrent keep-alive connections against a running
/// server: each opens its own wire session over `workload`, replays
/// `events_per_session` events from the recorded `cycle`, and closes.
pub fn run_load(
    addr: SocketAddr,
    workload: &str,
    cycle: &[Event],
    sessions: usize,
    events_per_session: usize,
) -> io::Result<LoadReport> {
    let start = Instant::now();
    let results: Vec<io::Result<(Vec<u64>, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Http1Client::connect(addr)?;
                    let session = open_session(&mut client, workload)?;
                    let out = replay_session(&mut client, session, cycle, events_per_session)?;
                    let close = pi2::request_to_json(&Request::Close { session });
                    let resp = client.post("/v1", &close)?;
                    if resp.status != 200 {
                        return Err(io::Error::other(format!(
                            "close failed with {}: {}",
                            resp.status, resp.body
                        )));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut latencies = Vec::with_capacity(sessions * events_per_session);
    let mut errors = 0;
    for result in results {
        let (lats, errs) = result?;
        latencies.extend(lats);
        errors += errs;
    }
    Ok(LoadReport::from_latencies(
        sessions, latencies, errors, elapsed,
    ))
}

/// Synthesize the append payload for a mixed (read/write) run: the first
/// catalogue table the workload's queries actually read (so every append
/// invalidates at least one view), with its first row duplicated as a
/// one-row delta — the schema matches by construction. `None` when no
/// referenced table has rows to clone.
pub fn append_payload(g: &Generation) -> Option<(String, Table)> {
    let referenced: std::collections::BTreeSet<String> = g
        .workload
        .queries
        .iter()
        .flat_map(pi2_engine::referenced_tables)
        .collect();
    let catalog = g.live.snapshot();
    for name in referenced {
        let Some(meta) = catalog.table(&name) else {
            continue;
        };
        if meta.table.num_rows() == 0 {
            continue;
        }
        let schema: Vec<(&str, pi2::DataType)> = meta
            .table
            .schema
            .columns
            .iter()
            .map(|c| (c.name.as_str(), c.dtype))
            .collect();
        let ncols = schema.len();
        let row: Vec<Value> = (0..ncols).map(|c| meta.table.value(0, c)).collect();
        let delta = Table::from_rows(schema, vec![row]).ok()?;
        return Some((meta.name.clone(), delta));
    }
    None
}

/// The read-vs-write split of a mixed load run. The two halves are
/// summarized separately because their latency profiles differ by
/// design: a read answers from the result memo (or IVM), while a write
/// pays catalogue versioning, eviction, and subscriber fan-out.
#[derive(Debug, Clone)]
pub struct MixedLoadReport {
    /// The read half — replayed widget events; `events` counts reads.
    pub read: LoadReport,
    /// The write half — interleaved appends; `events` counts appends.
    pub write: LoadReport,
}

impl MixedLoadReport {
    /// Total non-200 / wrong-shape responses across both halves.
    pub fn errors(&self) -> usize {
        self.read.errors + self.write.errors
    }
}

impl fmt::Display for MixedLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reads: {} | appends: {}", self.read, self.write)
    }
}

/// One connection's half of a mixed run: latency samples and error
/// count per side.
#[derive(Debug, Default)]
pub struct MixedSamples {
    /// Per-read latencies (ns).
    pub reads: Vec<u64>,
    /// Per-append latencies (ns).
    pub writes: Vec<u64>,
    /// Non-200 / wrong-shape event responses.
    pub read_errors: usize,
    /// Non-200 / wrong-shape append responses.
    pub write_errors: usize,
}

/// Replay `events_per_session` requests on one keep-alive connection,
/// every `append_every`-th being a v2 `append` of `delta` to `table`
/// instead of a widget event.
#[allow(clippy::too_many_arguments)]
pub fn replay_session_mixed(
    client: &mut Http1Client,
    session: u64,
    workload: &str,
    cycle: &[Event],
    events_per_session: usize,
    append_every: usize,
    table: &str,
    delta: &Table,
) -> io::Result<MixedSamples> {
    let mut out = MixedSamples::default();
    for i in 0..events_per_session {
        let write = append_every > 0 && (i + 1) % append_every == 0;
        let (body, expect) = if write {
            (
                pi2::request_to_json(&Request::Append {
                    workload: workload.to_string(),
                    table: table.to_string(),
                    rows: delta.clone(),
                }),
                "\"type\":\"appended\"",
            )
        } else {
            (
                pi2::request_to_json(&Request::Event {
                    session,
                    event: cycle[i % cycle.len()].clone(),
                }),
                "\"type\":\"patch\"",
            )
        };
        let start = Instant::now();
        let resp = client.post("/v1", &body)?;
        let ns = start.elapsed().as_nanos() as u64;
        let bad = resp.status != 200 || !resp.body.contains(expect);
        if write {
            out.writes.push(ns);
            out.write_errors += bad as usize;
        } else {
            out.reads.push(ns);
            out.read_errors += bad as usize;
        }
    }
    Ok(out)
}

/// The mixed-load counterpart of [`run_load`]: `sessions` concurrent
/// connections each replay the recorded mix with every `append_every`-th
/// request swapped for an append of `delta` to `table`. Read and write
/// latencies are reported as separate distributions.
#[allow(clippy::too_many_arguments)]
pub fn run_mixed_load(
    addr: SocketAddr,
    workload: &str,
    cycle: &[Event],
    sessions: usize,
    events_per_session: usize,
    append_every: usize,
    table: &str,
    delta: &Table,
) -> io::Result<MixedLoadReport> {
    let start = Instant::now();
    let results: Vec<io::Result<MixedSamples>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Http1Client::connect(addr)?;
                    let session = open_session(&mut client, workload)?;
                    let out = replay_session_mixed(
                        &mut client,
                        session,
                        workload,
                        cycle,
                        events_per_session,
                        append_every,
                        table,
                        delta,
                    )?;
                    let close = pi2::request_to_json(&Request::Close { session });
                    let resp = client.post("/v1", &close)?;
                    if resp.status != 200 {
                        return Err(io::Error::other(format!(
                            "close failed with {}: {}",
                            resp.status, resp.body
                        )));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut merged = MixedSamples::default();
    for result in results {
        let samples = result?;
        merged.reads.extend(samples.reads);
        merged.writes.extend(samples.writes);
        merged.read_errors += samples.read_errors;
        merged.write_errors += samples.write_errors;
    }
    Ok(MixedLoadReport {
        read: LoadReport::from_latencies(sessions, merged.reads, merged.read_errors, elapsed),
        write: LoadReport::from_latencies(sessions, merged.writes, merged.write_errors, elapsed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2::server::ServerConfig;
    use pi2::{Pi2Service, Table};
    use pi2_data::{Catalog, DataType};
    use std::sync::Arc;

    #[test]
    fn percentile_uses_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 50.0), 50);
        assert_eq!(percentile(&sample, 95.0), 95);
        assert_eq!(percentile(&sample, 99.0), 99);
        assert_eq!(percentile(&sample, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn report_summarizes_and_formats() {
        let report = LoadReport::from_latencies(
            4,
            vec![5_000, 1_000, 3_000, 2_000_000],
            1,
            Duration::from_secs(2),
        );
        assert_eq!(report.events, 4);
        assert_eq!(report.p50_ns, 3_000);
        assert_eq!(report.p99_ns, 2_000_000);
        assert_eq!(report.throughput(), 2.0);
        let text = report.to_string();
        assert!(text.contains("p99 2.00ms"), "{text}");
        assert!(text.contains("1 errors"), "{text}");
    }

    /// The `--rows` path at toy scale: generation over a scaled big tier
    /// yields a drivable interface whose recorded mix dispatches cleanly.
    #[test]
    fn big_tier_generation_drives_sessions() {
        let generation = big_generation(2_000);
        let cycle = event_cycle(&generation);
        let mut session = generation.session().unwrap();
        for event in cycle.iter().take(4) {
            session.dispatch(event).unwrap();
        }
    }

    /// End to end over loopback on a tiny synthetic workload: N sessions
    /// replay a recorded mix with zero protocol errors.
    #[test]
    fn load_run_over_tcp_reports_zero_errors() {
        let mut catalog = Catalog::new();
        let rows: Vec<Vec<pi2::Value>> = (0..24)
            .map(|i| vec![pi2::Value::Int(i % 4), pi2::Value::Int(10 * (i % 6))])
            .collect();
        let t = Table::from_rows(vec![("a", DataType::Int), ("b", DataType::Int)], rows).unwrap();
        catalog.add_table("T", t, vec![]);
        let service = Arc::new(Pi2Service::new());
        let generation = service
            .register(
                "tiny",
                catalog,
                &[
                    "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
                    "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
                ],
                &GenerationConfig::quick(),
            )
            .unwrap();
        let cycle = event_cycle(&generation);
        let server = pi2::serve(Arc::clone(&service), ServerConfig::default()).unwrap();
        let report = run_load(server.local_addr(), "tiny", &cycle, 4, 12).unwrap();
        assert_eq!(report.sessions, 4);
        assert_eq!(report.events, 48);
        assert_eq!(report.errors, 0, "{report}");
        assert!(report.p99_ns >= report.p50_ns);
        server.shutdown();
    }

    /// The `--append-every` path end to end: every third request is an
    /// append, both halves report separately, and nothing errors — the
    /// append-mix smoke CI runs at larger scale.
    #[test]
    fn mixed_load_run_splits_reads_from_writes() {
        let mut catalog = Catalog::new();
        let rows: Vec<Vec<pi2::Value>> = (0..24)
            .map(|i| vec![pi2::Value::Int(i % 4), pi2::Value::Int(10 * (i % 6))])
            .collect();
        let t = Table::from_rows(vec![("a", DataType::Int), ("b", DataType::Int)], rows).unwrap();
        catalog.add_table("T", t, vec![]);
        let service = Arc::new(Pi2Service::new());
        let generation = service
            .register(
                "tiny",
                catalog,
                &[
                    "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
                    "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
                ],
                &GenerationConfig::quick(),
            )
            .unwrap();
        let cycle = event_cycle(&generation);
        let (table, delta) = append_payload(&generation).expect("T is referenced and non-empty");
        assert_eq!(table, "T");
        assert_eq!(delta.num_rows(), 1);
        let server = pi2::serve(Arc::clone(&service), ServerConfig::default()).unwrap();
        let report = run_mixed_load(
            server.local_addr(),
            "tiny",
            &cycle,
            3,
            12,
            3,
            &table,
            &delta,
        )
        .unwrap();
        // Every 3rd of 12 requests per session is an append: 4 writes,
        // 8 reads, times 3 sessions.
        assert_eq!(report.write.events, 12, "{report}");
        assert_eq!(report.read.events, 24, "{report}");
        assert_eq!(report.errors(), 0, "{report}");
        let text = report.to_string();
        assert!(
            text.contains("reads: ") && text.contains("appends: "),
            "{text}"
        );
        server.shutdown();
    }

    /// The WebSocket push path end to end: one writer, N subscribed
    /// peers, every dispatch fanned out to every peer with zero errors.
    #[test]
    fn ws_load_run_fans_out_every_event() {
        let mut catalog = Catalog::new();
        let rows: Vec<Vec<pi2::Value>> = (0..24)
            .map(|i| vec![pi2::Value::Int(i % 4), pi2::Value::Int(10 * (i % 6))])
            .collect();
        let t = Table::from_rows(vec![("a", DataType::Int), ("b", DataType::Int)], rows).unwrap();
        catalog.add_table("T", t, vec![]);
        let service = Arc::new(Pi2Service::new());
        let generation = service
            .register(
                "tiny",
                catalog,
                &[
                    "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
                    "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
                ],
                &GenerationConfig::quick(),
            )
            .unwrap();
        let cycle = event_cycle(&generation);
        let server = pi2::serve(Arc::clone(&service), ServerConfig::default()).unwrap();
        let report = run_ws_load(server.local_addr(), "tiny", &cycle, 3, 8).unwrap();
        assert_eq!(report.subscribers, 3);
        assert_eq!(report.events, 8);
        assert_eq!(report.pushes, 24, "{report}");
        assert_eq!(report.errors, 0, "{report}");
        assert!(report.push_p99_ns >= report.push_p50_ns);
        let text = report.to_string();
        assert!(text.contains("push p50"), "{text}");
        server.shutdown();
    }
}
