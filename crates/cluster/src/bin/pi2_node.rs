//! One fleet member: a full PI2 node — HTTP front, peer listener,
//! shared-cache tiers — as a standalone process.
//!
//! ```text
//! pi2-node --node I --peers ADDR0,ADDR1,… [--http ADDR] [--workload covid]
//! ```
//!
//! `--peers` lists every node's *peer-protocol* address, index-aligned
//! with ring indices; `--node I` says which entry is this process (its
//! own peer listener binds there). `--http` is the client-facing
//! address (default `127.0.0.1:0`). The workload is registered with
//! `GenerationConfig::quick()` — deterministic across nodes, so every
//! fleet member generates the identical interface and the shared caches
//! agree on keys.
//!
//! Once serving, the process prints a single machine-readable line:
//!
//! ```text
//! READY <http addr> <peer addr>
//! ```
//!
//! and runs until killed. The fleet integration test and
//! `loadgen --cluster N` both drive nodes through this binary — real
//! processes, so each has its own process-wide caches, like production.

use pi2::server::ServerConfig;
use pi2::{GenerationConfig, Pi2Service};
use pi2_cluster::{proxy_handler, Cluster, ClusterConfig, ClusterService, PeerServer};
use pi2_workloads::{all_logs, catalog, log};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!("usage: pi2-node --node I --peers ADDR0,ADDR1,… [--http ADDR] [--workload covid]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut node: Option<u16> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut http = "127.0.0.1:0".to_string();
    let mut workload = "covid".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--node" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => node = Some(v),
                None => return usage(),
            },
            "--peers" => match it.next() {
                Some(v) => peers = v.split(',').map(str::to_string).collect(),
                None => return usage(),
            },
            "--http" => match it.next() {
                Some(v) => http = v.clone(),
                None => return usage(),
            },
            "--workload" => match it.next() {
                Some(v) => workload = v.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(node) = node else { return usage() };
    if peers.is_empty() || (node as usize) >= peers.len() {
        eprintln!("pi2-node: --node {node} needs a --peers list that includes it");
        return ExitCode::from(2);
    }
    let Some(kind) = all_logs()
        .iter()
        .map(|l| l.kind)
        .find(|k| log(*k).name == workload)
    else {
        eprintln!(
            "pi2-node: unknown workload {workload:?} (known: {})",
            all_logs()
                .iter()
                .map(|l| l.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };

    let service = Arc::new(Pi2Service::new());
    // Join before registering: the registration warm-up already reads
    // through (and publishes to) the fleet.
    let peer_addr = peers[node as usize].clone();
    let cluster = Cluster::join(&service, ClusterConfig::new(node, peers));
    let peer_server = match PeerServer::start(
        &peer_addr,
        proxy_handler(Arc::clone(&service), Arc::clone(&cluster)),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pi2-node: peer listener failed on {peer_addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let queries = log(kind).queries;
    let sqls: Vec<&str> = queries.iter().map(String::as_str).collect();
    if let Err(e) = service.register(&workload, catalog(), &sqls, &GenerationConfig::quick()) {
        eprintln!("pi2-node: register {workload} failed: {e}");
        return ExitCode::FAILURE;
    }

    let front = ClusterService::new(Arc::clone(&service), cluster);
    let http_server = match pi2::server::Server::start(
        Arc::new(front),
        ServerConfig {
            addr: http,
            ..ServerConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pi2-node: http server failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "READY {} {}",
        http_server.local_addr(),
        peer_server.local_addr()
    );
    use std::io::Write;
    let _ = std::io::stdout().flush();
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
