//! Per-peer circuit breaker.
//!
//! The fleet is a cache, never a correctness dependency — so a dead or
//! slow peer must cost at most one timeout, not one timeout *per
//! lookup*. After `threshold` consecutive failures the breaker opens
//! and every call is refused locally (callers fall back to local
//! computation) until `cooldown` elapses; the first call after the
//! cooldown is the half-open probe — its outcome re-closes or re-opens
//! the breaker.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// A circuit breaker guarding one peer connection.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<State>,
}

impl Breaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures and probes again after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            state: Mutex::new(State {
                consecutive_failures: 0,
                open_until: None,
            }),
        }
    }

    /// Whether a call may proceed. While open this returns `false`;
    /// once the cooldown has elapsed it returns `true` exactly once
    /// (the half-open probe) until the probe's outcome is recorded.
    pub fn allow(&self) -> bool {
        let mut s = self.state.lock().unwrap();
        match s.open_until {
            None => true,
            Some(until) if Instant::now() >= until => {
                // Half-open: let one probe through; a failure re-opens.
                s.open_until = None;
                s.consecutive_failures = self.threshold.saturating_sub(1);
                true
            }
            Some(_) => false,
        }
    }

    /// Record a successful call: the breaker closes fully.
    pub fn record_success(&self) {
        let mut s = self.state.lock().unwrap();
        s.consecutive_failures = 0;
        s.open_until = None;
    }

    /// Record a failed call; opens the breaker at the threshold.
    pub fn record_failure(&self) {
        let mut s = self.state.lock().unwrap();
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        if s.consecutive_failures >= self.threshold {
            s.open_until = Some(Instant::now() + self.cooldown);
        }
    }

    /// Whether the breaker is currently refusing calls.
    pub fn is_open(&self) -> bool {
        let s = self.state.lock().unwrap();
        matches!(s.open_until, Some(until) if Instant::now() < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_at_threshold_and_probes_after_cooldown() {
        let b = Breaker::new(3, Duration::from_millis(30));
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert!(b.allow(), "below threshold stays closed");
        b.record_failure();
        assert!(!b.allow(), "threshold reached: open");
        assert!(b.is_open());
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow(), "cooldown elapsed: half-open probe");
        // A failing probe re-opens immediately…
        b.record_failure();
        assert!(!b.allow());
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allow());
        // …a succeeding probe closes fully.
        b.record_success();
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert!(b.allow(), "success reset the failure count");
    }
}
