#![warn(missing_docs)]
//! # pi2-cluster: N processes, one fleet
//!
//! The multi-node layer of the PI2 session service. Each node runs the
//! full stack — generation, sessions, HTTP front — and the fleet shares
//! what is *expensive and deterministic*: the cross-session result memo
//! and the MCTS reward transposition table, sharded over the nodes by a
//! rendezvous consistent-hash [`ring`], so a query result (or a state
//! reward) computed anywhere is computed once fleet-wide.
//!
//! Three pieces:
//!
//! * **Shared caches** ([`tier`]) — a local cache miss consults the
//!   key's owning node over the binary peer protocol ([`wire`]) before
//!   computing (read-through); local computes are shipped to the owner
//!   by a background publisher (write-behind). Peer lookups ride
//!   persistent connections with tight timeouts and a per-peer circuit
//!   [`breaker`]; any failure falls back to local computation — **the
//!   fleet is a cache, never a correctness dependency**.
//! * **The peer protocol** ([`wire`], [`server`]) — compact
//!   length-prefixed binary frames; table payloads reuse the columnar
//!   `{dict, codes}` JSON form from `pi2_data::wire`. Every node's peer
//!   listener is a single reactor thread multiplexed on the same
//!   pluggable `Selector` infrastructure as the HTTP server
//!   (`pi2_server::poll`).
//! * **Sticky session routing** ([`route`]) — session ids carry their
//!   birth node in the top 16 bits; a front node serves its own
//!   sessions locally and proxies dispatches for sessions another node
//!   owns, relaying the owner's response byte-for-byte. A serializable
//!   [`route::RouteMap`] snapshot supports migration and failover.
//!
//! Wire it up with [`Cluster::join`] before registering workloads:
//!
//! ```no_run
//! use pi2::{Pi2Service, server::ServerConfig};
//! use pi2_cluster::{Cluster, ClusterConfig, ClusterService, PeerServer};
//! use std::sync::Arc;
//!
//! let service = Arc::new(Pi2Service::new());
//! let config = ClusterConfig::new(0, vec![
//!     "127.0.0.1:7100".into(), // this node's peer listener
//!     "127.0.0.1:7101".into(),
//! ]);
//! let cluster = Cluster::join(&service, config);
//! let _peers = PeerServer::start(
//!     "127.0.0.1:7100",
//!     pi2_cluster::proxy_handler(Arc::clone(&service), Arc::clone(&cluster)),
//! ).unwrap();
//! // … register workloads, then serve the fleet-aware front:
//! let front = ClusterService::new(Arc::clone(&service), cluster);
//! let _http = pi2::server::Server::start(Arc::new(front), ServerConfig::default()).unwrap();
//! ```

pub mod breaker;
pub mod metrics;
pub mod peer;
pub mod ring;
pub mod route;
pub mod server;
pub mod tier;
pub mod wire;

pub use metrics::ClusterMetrics;
pub use ring::Ring;
pub use route::{proxy_handler, ClusterService, RouteMap};
pub use server::{PeerServer, ProxyHandler};
pub use wire::Frame;

use peer::PeerClient;
use pi2::Pi2Service;
use std::io;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tier::{ClusterResultTier, ClusterRewardTier, Publish};
use wire::Frame as WireFrame;

/// Static fleet membership plus the failure-handling knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's ring index.
    pub node: u16,
    /// Peer-protocol addresses, index-aligned with ring indices
    /// (`peers[node]` is this node's own listener; it is never dialed).
    pub peers: Vec<String>,
    /// Per-call peer I/O timeout (connect, read, write).
    pub peer_timeout: Duration,
    /// Consecutive failures before a peer's circuit breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses calls before probing again.
    pub breaker_cooldown: Duration,
    /// Write-behind queue capacity (publishes drop beyond it).
    pub publish_queue: usize,
}

impl ClusterConfig {
    /// A config with the default failure knobs: 250 ms peer timeout,
    /// breaker opens after 3 failures and probes after 500 ms.
    pub fn new(node: u16, peers: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            node,
            peers,
            peer_timeout: Duration::from_millis(250),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            publish_queue: 1024,
        }
    }
}

/// One node's handle on the fleet: the ring, the peer clients, the
/// route map, and the counters.
pub struct Cluster {
    node: u16,
    ring: Ring,
    peers: Arc<Vec<Option<PeerClient>>>,
    metrics: Arc<ClusterMetrics>,
    routes: RouteMap,
    publish_tx: Mutex<SyncSender<Publish>>,
}

impl Cluster {
    /// Join the fleet: build peer clients, start the write-behind
    /// publisher, install the shared-cache tiers into the cache layers,
    /// and hook the counters (and the session-id node prefix) into the
    /// service's metrics.
    ///
    /// Call this **before** registering workloads, so registration's
    /// cache warm-up already reads through and publishes to the fleet.
    /// The cache-tier hooks are process-wide one-shots; a second
    /// `join` in the same process keeps the first tiers.
    pub fn join(service: &Arc<Pi2Service>, config: ClusterConfig) -> Arc<Cluster> {
        let metrics = Arc::new(ClusterMetrics::default());
        let peers: Arc<Vec<Option<PeerClient>>> = Arc::new(
            config
                .peers
                .iter()
                .enumerate()
                .map(|(i, addr)| {
                    if i as u16 == config.node {
                        None
                    } else {
                        Some(PeerClient::new(
                            config.node,
                            i as u16,
                            addr.clone(),
                            config.peer_timeout,
                            config.breaker_threshold,
                            config.breaker_cooldown,
                            Arc::clone(&metrics),
                        ))
                    }
                })
                .collect(),
        );
        let (publish_tx, publish_rx) = sync_channel(config.publish_queue.max(1));
        {
            let peers = Arc::clone(&peers);
            let _ = std::thread::Builder::new()
                .name("pi2-peer-publish".into())
                .spawn(move || tier::publisher_loop(publish_rx, peers));
        }
        let cluster = Arc::new(Cluster {
            node: config.node,
            ring: Ring::new(config.peers.len()),
            peers,
            metrics: Arc::clone(&metrics),
            routes: RouteMap::new(),
            publish_tx: Mutex::new(publish_tx),
        });
        pi2_interface::set_remote_result_tier(Arc::new(ClusterResultTier {
            cluster: Arc::clone(&cluster),
        }));
        pi2_search::set_remote_reward_tier(Arc::new(ClusterRewardTier {
            cluster: Arc::clone(&cluster),
        }));
        let nodes = cluster.ring.len();
        let node = cluster.node;
        let m = Arc::clone(&metrics);
        service.set_cluster_stats(node, Box::new(move || m.snapshot(node, nodes)));
        cluster
    }

    /// This node's ring index.
    pub fn node(&self) -> u16 {
        self.node
    }

    /// The ownership ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The fleet counters.
    pub fn metrics(&self) -> &Arc<ClusterMetrics> {
        &self.metrics
    }

    /// The sticky-routing binding map.
    pub fn routes(&self) -> &RouteMap {
        &self.routes
    }

    /// The client for a *remote* node: `None` for this node itself and
    /// for out-of-range indices.
    pub fn peer(&self, node: u16) -> Option<&PeerClient> {
        self.peers.get(node as usize).and_then(|p| p.as_ref())
    }

    /// The owner of a session if it is some *other* node: an explicit
    /// route-map binding wins, otherwise the id's node bits. Sessions
    /// owned here — or with bits no configured node matches — answer
    /// `None` and are served locally.
    pub fn remote_owner(&self, session: u64) -> Option<u16> {
        let owner = self
            .routes
            .lookup(session)
            .unwrap_or((session >> 48) as u16);
        (owner != self.node && (owner as usize) < self.ring.len()).then_some(owner)
    }

    /// Forward a protocol request body to `owner` and return its
    /// verbatim `(status, body)` answer.
    pub fn proxy(&self, owner: u16, body: &str) -> io::Result<(u16, String)> {
        let peer = self
            .peer(owner)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no peer {owner}")))?;
        match peer.call(&WireFrame::ProxyRequest {
            body: body.as_bytes().to_vec(),
        })? {
            WireFrame::ProxyResponse { status, body } => {
                let body = String::from_utf8(body).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 proxy response")
                })?;
                Ok((status, body))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected proxy answer {other:?}"),
            )),
        }
    }

    /// The node that owns appends to `(workload, table)` — see
    /// [`Ring::append_owner`].
    pub fn append_owner(&self, workload: &str, table: &str) -> u16 {
        self.ring.append_owner(workload, table)
    }

    /// Best-effort one-way broadcast of an applied append to every peer
    /// (the owner calls this after committing locally). A peer that
    /// cannot be reached simply misses the delta — its own catalogue
    /// epoch stays behind and its memo entries for the old fingerprint
    /// remain valid for the data it still holds; failures are counted
    /// like any other peer timeout.
    pub fn broadcast_append(&self, body: &str) {
        for peer in self.peers.iter().flatten() {
            if peer
                .send(&WireFrame::AppendApply {
                    body: body.as_bytes().to_vec(),
                })
                .is_err()
            {
                ClusterMetrics::bump(&self.metrics.peer_timeouts);
            }
        }
    }

    /// Queue a write-behind publish (lossy beyond the queue bound).
    pub(crate) fn enqueue(&self, item: Publish) {
        match self.publish_tx.lock().unwrap().try_send(item) {
            Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_owner_honours_bits_bindings_and_bounds() {
        let service = Arc::new(Pi2Service::new());
        let cluster = Cluster::join(
            &service,
            ClusterConfig::new(
                1,
                vec![
                    "127.0.0.1:1".into(),
                    "127.0.0.1:2".into(),
                    "127.0.0.1:3".into(),
                ],
            ),
        );
        // Id bits: node 0 and 2 are remote, node 1 is local.
        assert_eq!(cluster.remote_owner(7), Some(0));
        assert_eq!(cluster.remote_owner((1 << 48) | 7), None);
        assert_eq!(cluster.remote_owner((2 << 48) | 7), Some(2));
        // Out-of-fleet bits serve locally rather than proxying nowhere.
        assert_eq!(cluster.remote_owner((9 << 48) | 7), None);
        // An explicit binding (migration) overrides the bits.
        cluster.routes().bind((2 << 48) | 7, 1);
        assert_eq!(cluster.remote_owner((2 << 48) | 7), None);
        cluster.routes().bind(7, 2);
        assert_eq!(cluster.remote_owner(7), Some(2));
        // The service now reports fleet counters through /metrics.
        let stats = service.cluster_stats().expect("cluster stats installed");
        assert_eq!((stats.node, stats.nodes), (1, 3));
    }
}
