//! Fleet counters, surfaced through `GET /metrics` via
//! [`pi2::Pi2Service::set_cluster_stats`].

use pi2::ClusterStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for one node's view of the fleet.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Cache lookups answered by a remote owner.
    pub cluster_hits: AtomicU64,
    /// Cache lookups the remote owner also missed (computed locally).
    pub cluster_misses: AtomicU64,
    /// Peer calls that failed — timeouts, connection errors, or an open
    /// circuit breaker.
    pub peer_timeouts: AtomicU64,
    /// Session-addressed requests forwarded to their owning node.
    pub proxied_dispatches: AtomicU64,
}

impl ClusterMetrics {
    /// Snapshot into the service-level stats struct.
    pub fn snapshot(&self, node: u16, nodes: usize) -> ClusterStats {
        ClusterStats {
            node,
            nodes,
            cluster_hits: self.cluster_hits.load(Ordering::Relaxed),
            cluster_misses: self.cluster_misses.load(Ordering::Relaxed),
            peer_timeouts: self.peer_timeouts.load(Ordering::Relaxed),
            proxied_dispatches: self.proxied_dispatches.load(Ordering::Relaxed),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}
