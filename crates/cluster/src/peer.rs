//! The peer *client*: one persistent connection per remote node.
//!
//! Each remote peer gets a lazily-connected, mutex-guarded blocking
//! `TcpStream` with aggressive timeouts. The mutex enforces the wire
//! discipline (one outstanding request per connection); any I/O error
//! drops the connection (the next call reconnects) and feeds the
//! per-peer [`Breaker`], so a dead peer degrades to a fast local
//! refusal instead of a timeout per lookup. Every failure — timeout,
//! refused connection, open breaker — bumps `peerTimeouts`.

use crate::breaker::Breaker;
use crate::metrics::ClusterMetrics;
use crate::wire::{read_frame, write_frame, Frame};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A handle to one remote fleet member.
pub struct PeerClient {
    addr: String,
    /// Ring index of the remote node.
    pub remote: u16,
    node: u16,
    timeout: Duration,
    conn: Mutex<Option<TcpStream>>,
    breaker: Breaker,
    metrics: Arc<ClusterMetrics>,
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("{addr} resolves to nothing"),
        )
    })
}

impl PeerClient {
    /// A client for the peer at `addr` (not connected yet).
    pub fn new(
        node: u16,
        remote: u16,
        addr: String,
        timeout: Duration,
        breaker_threshold: u32,
        breaker_cooldown: Duration,
        metrics: Arc<ClusterMetrics>,
    ) -> PeerClient {
        PeerClient {
            addr,
            remote,
            node,
            timeout,
            conn: Mutex::new(None),
            breaker: Breaker::new(breaker_threshold, breaker_cooldown),
            metrics,
        }
    }

    /// Whether this peer's circuit breaker is currently open.
    pub fn is_open(&self) -> bool {
        self.breaker.is_open()
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&resolve(&self.addr)?, self.timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut stream = stream;
        write_frame(&mut stream, &Frame::Hello { node: self.node })?;
        Ok(stream)
    }

    /// Run `f` over the (re)connected stream under the connection lock,
    /// recording the outcome with the breaker and the fleet counters.
    fn with_conn<T>(&self, f: impl FnOnce(&mut TcpStream) -> io::Result<T>) -> io::Result<T> {
        if !self.breaker.allow() {
            ClusterMetrics::bump(&self.metrics.peer_timeouts);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("circuit open for peer {}", self.remote),
            ));
        }
        let mut guard = self.conn.lock().unwrap();
        let result = (|| {
            if guard.is_none() {
                *guard = Some(self.connect()?);
            }
            f(guard.as_mut().unwrap())
        })();
        match result {
            Ok(v) => {
                self.breaker.record_success();
                Ok(v)
            }
            Err(e) => {
                // The stream may hold half a response; never reuse it.
                *guard = None;
                self.breaker.record_failure();
                ClusterMetrics::bump(&self.metrics.peer_timeouts);
                Err(e)
            }
        }
    }

    /// One request frame, one response frame.
    pub fn call(&self, request: &Frame) -> io::Result<Frame> {
        self.with_conn(|s| {
            write_frame(s, request)?;
            read_frame(s)
        })
    }

    /// One one-way frame (the write-behind puts).
    pub fn send(&self, frame: &Frame) -> io::Result<()> {
        self.with_conn(|s| write_frame(s, frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn metrics() -> Arc<ClusterMetrics> {
        Arc::new(ClusterMetrics::default())
    }

    #[test]
    fn round_trips_against_a_scripted_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            assert_eq!(read_frame(&mut s).unwrap(), Frame::Hello { node: 0 });
            match read_frame(&mut s).unwrap() {
                Frame::MemoGet { catalog_fp, sql_fp } => {
                    assert_eq!((catalog_fp, sql_fp), (7, 8));
                    write_frame(&mut s, &Frame::MemoMiss).unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
            // The one-way put arrives on the same connection.
            assert!(matches!(
                read_frame(&mut s).unwrap(),
                Frame::RewardPut { reward, .. } if reward == 0.5
            ));
        });
        let m = metrics();
        let peer = PeerClient::new(
            0,
            1,
            addr.to_string(),
            Duration::from_secs(5),
            3,
            Duration::from_millis(100),
            m.clone(),
        );
        let reply = peer
            .call(&Frame::MemoGet {
                catalog_fp: 7,
                sql_fp: 8,
            })
            .unwrap();
        assert_eq!(reply, Frame::MemoMiss);
        peer.send(&Frame::RewardPut {
            state_hash: 1,
            state_size: 2,
            ctx_fp: 3,
            reward: 0.5,
        })
        .unwrap();
        server.join().unwrap();
        assert_eq!(
            m.peer_timeouts.load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }

    #[test]
    fn a_dead_peer_opens_the_breaker_and_fails_fast() {
        // A bound-then-dropped listener leaves a port nothing listens on.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let m = metrics();
        let peer = PeerClient::new(
            0,
            1,
            addr.to_string(),
            Duration::from_millis(100),
            2,
            Duration::from_secs(60),
            m.clone(),
        );
        assert!(peer.call(&Frame::MemoMiss).is_err());
        assert!(peer.call(&Frame::MemoMiss).is_err());
        // Breaker open: refusals are local now.
        assert!(peer.is_open());
        let t0 = std::time::Instant::now();
        assert!(peer.call(&Frame::MemoMiss).is_err());
        assert!(t0.elapsed() < Duration::from_millis(50), "must not dial");
        assert_eq!(
            m.peer_timeouts.load(std::sync::atomic::Ordering::Relaxed),
            3
        );
    }
}
