//! The consistent-hash ring: which node owns which cache key.
//!
//! The fleet shards its two cross-session caches — the result memo and
//! the reward transposition table — by key ownership: every key has
//! exactly one *owner* node, the only node consulted on a miss and the
//! only node a computed value is published to. Ownership is computed by
//! **rendezvous (highest-random-weight) hashing**: the owner of key `k`
//! in a fleet of nodes `n₀ … nₘ` is `argmaxᵢ mix(k, nᵢ)`.
//!
//! Rendezvous was chosen over a virtual-node token ring and over jump
//! consistent hashing deliberately:
//!
//! * fleets here are small (single digits), so the O(N) per-lookup scan
//!   is a handful of multiplies — there is nothing for a token ring's
//!   O(log N) binary search to win;
//! * it needs **no tuning**: a token ring needs a virtual-node count
//!   chosen to balance variance against table size, rendezvous is
//!   uniform by construction;
//! * unlike jump hashing it takes **arbitrary node ids**, so a node can
//!   drop out of the live set without renumbering the survivors — keys
//!   owned by the dead node redistribute evenly over the rest and every
//!   other key keeps its owner (minimal disruption, same guarantee a
//!   token ring gives);
//! * it is **coordination-free**: every node computes the same owner
//!   from the same member list, no ring state is exchanged.

/// A 64-bit mix of (key, node) — SplitMix64's finalizer over the pair.
/// Any stateless avalanche function works; this one is already the
/// fleet-wide convention (`pi2_workloads::big::SplitMix64`).
fn mix(key: u64, node: u16) -> u64 {
    let mut z = key ^ (u64::from(node).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold two 64-bit cache-key components into one ring key.
pub fn combine(a: u64, b: u64) -> u64 {
    mix(a ^ b.rotate_left(32), 0x5eed)
}

/// FNV-1a over a byte string — the ring key for *named* resources
/// (workload and table names), which have no numeric fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fleet's ownership function over a fixed member list.
#[derive(Debug, Clone)]
pub struct Ring {
    nodes: Vec<u16>,
}

impl Ring {
    /// A ring over nodes `0..n`.
    pub fn new(n: usize) -> Ring {
        Ring {
            nodes: (0..n as u16).collect(),
        }
    }

    /// A ring over an explicit member list (for failover: the live
    /// subset of the configured fleet).
    pub fn with_members(nodes: Vec<u16>) -> Ring {
        Ring { nodes }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The owner of `key`: the member with the highest rendezvous
    /// weight. Panics on an empty ring.
    pub fn owner(&self, key: u64) -> u16 {
        *self
            .nodes
            .iter()
            .max_by_key(|&&n| mix(key, n))
            .expect("ring must have members")
    }

    /// The owner of a result-memo entry.
    pub fn memo_owner(&self, catalog_fp: u64, sql_fp: u64) -> u16 {
        self.owner(combine(catalog_fp, sql_fp))
    }

    /// The owner of a reward-table entry.
    pub fn reward_owner(&self, state_hash: u64, state_size: u32, ctx_fp: u64) -> u16 {
        self.owner(combine(state_hash, ctx_fp ^ u64::from(state_size)))
    }

    /// The owner of a live table's appends: every `append` to
    /// `(workload, table)` funnels through one node, which serializes
    /// concurrent writers and broadcasts the applied delta to the rest
    /// of the fleet. Table names hash case-insensitively, matching the
    /// catalogue's lookup semantics.
    pub fn append_owner(&self, workload: &str, table: &str) -> u16 {
        self.owner(combine(
            fnv1a(workload.as_bytes()),
            fnv1a(table.to_lowercase().as_bytes()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_total() {
        let ring = Ring::new(3);
        for key in 0..1000u64 {
            let owner = ring.owner(key);
            assert!(owner < 3);
            assert_eq!(owner, ring.owner(key), "same key, same owner");
        }
    }

    #[test]
    fn keys_spread_roughly_evenly() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[ring.owner(mix(key, 7)) as usize] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "node {node} owns {c} of 4000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_member_only_moves_its_own_keys() {
        // The rendezvous guarantee: dropping node 2 reassigns exactly the
        // keys node 2 owned; every other key keeps its owner.
        let full = Ring::new(3);
        let survivors = Ring::with_members(vec![0, 1]);
        let mut moved = 0;
        for key in 0..2000u64 {
            let before = full.owner(key);
            let after = survivors.owner(key);
            if before != 2 {
                assert_eq!(before, after, "key {key} moved needlessly");
            } else {
                moved += 1;
                assert_ne!(after, 2);
            }
        }
        assert!(moved > 0, "node 2 must have owned something");
    }

    #[test]
    fn append_owners_are_deterministic_and_case_insensitive() {
        let ring = Ring::new(3);
        let owner = ring.append_owner("covid", "covid");
        assert_eq!(owner, ring.append_owner("covid", "COVID"));
        assert_eq!(owner, ring.append_owner("covid", "Covid"));
        // Distinct tables can land on distinct owners.
        let owners: std::collections::HashSet<u16> = (0..32)
            .map(|i| ring.append_owner("w", &format!("t{i}")))
            .collect();
        assert!(owners.len() > 1, "append keys all collapsed to one owner");
    }

    #[test]
    fn memo_and_reward_keys_use_both_components() {
        let ring = Ring::new(3);
        // Distinct fingerprints must be able to land on distinct owners.
        let owners: std::collections::HashSet<u16> =
            (0..64u64).map(|i| ring.memo_owner(i, i ^ 41)).collect();
        assert!(owners.len() > 1, "memo keys all collapsed to one owner");
        let owners: std::collections::HashSet<u16> = (0..64u64)
            .map(|i| ring.reward_owner(i, (i % 7) as u32, 99))
            .collect();
        assert!(owners.len() > 1, "reward keys all collapsed to one owner");
    }
}
