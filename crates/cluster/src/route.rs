//! Sticky session routing: serve locally or forward to the owner.
//!
//! Session ids already encode their birth node (the service's registry
//! stamps `node << 48` into every id), so any node can compute a
//! session's owner from the id alone. The [`RouteMap`] layers explicit
//! bindings on top of those id bits — a serializable session → node
//! snapshot that supports *migration* (rebind a session to a new owner
//! and load the snapshot fleet-wide) and failover bookkeeping.
//!
//! [`ClusterService`] wraps the node's `Pi2Service` behind the same
//! [`WireService`] contract the HTTP server hosts: session-addressed
//! requests whose owner is another node are re-encoded with
//! `request_to_json` and forwarded over the peer protocol; the owner's
//! `(status, body)` comes back verbatim, so a proxied dispatch is
//! byte-identical to asking the owner directly. Everything session-free
//! (open, describe, metrics, negotiate) serves locally. If the owner
//! cannot be reached the client sees `Pi2Error::PeerUnavailable` (503)
//! — and a peer asked to serve a session it does not own answers
//! `Pi2Error::WrongShard` (307) rather than guessing.
//!
//! One documented limitation: `subscribe`/`unsubscribe` bind a push
//! channel to the *arrival* connection, which a remote owner cannot
//! push to — cross-node subscriptions answer `WrongShard { owner }` so
//! the client reconnects its WebSocket to the owning node.

use crate::metrics::ClusterMetrics;
use crate::server::ProxyHandler;
use crate::Cluster;
use pi2::protocol::{error_to_json, request_to_json};
use pi2::server::{PushLink, Reject, WireService};
use pi2::{Json, Pi2Error, Pi2Service, Request};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The serializable session → owning-node binding map.
#[derive(Debug, Default)]
pub struct RouteMap {
    map: Mutex<HashMap<u64, u16>>,
}

impl RouteMap {
    /// An empty map (id bits alone decide ownership).
    pub fn new() -> RouteMap {
        RouteMap::default()
    }

    /// Bind a session to a node, overriding its id bits.
    pub fn bind(&self, session: u64, node: u16) {
        self.map.lock().unwrap().insert(session, node);
    }

    /// Drop a binding (the id bits take over again).
    pub fn unbind(&self, session: u64) {
        self.map.lock().unwrap().remove(&session);
    }

    /// The explicit binding for a session, if any.
    pub fn lookup(&self, session: u64) -> Option<u16> {
        self.map.lock().unwrap().get(&session).copied()
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the map holds no explicit bindings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A deterministic JSON snapshot of every binding, suitable for
    /// shipping to a joining or recovering node.
    pub fn snapshot_json(&self) -> String {
        let mut bindings: Vec<(u64, u16)> = self
            .map
            .lock()
            .unwrap()
            .iter()
            .map(|(&s, &n)| (s, n))
            .collect();
        bindings.sort_unstable();
        let mut out = String::from("{\"v\":1,\"type\":\"routes\",\"bindings\":[");
        for (i, (session, node)) in bindings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{session},{node}]");
        }
        out.push_str("]}");
        out
    }

    /// Replace the bindings with a snapshot produced by
    /// [`RouteMap::snapshot_json`]; returns how many were loaded.
    pub fn load_snapshot(&self, json: &str) -> Result<usize, Pi2Error> {
        let j = Json::parse(json).map_err(|e| Pi2Error::Protocol(format!("routes: {e}")))?;
        let bindings = j
            .get("bindings")
            .and_then(|b| b.as_arr())
            .ok_or_else(|| Pi2Error::Protocol("routes: missing bindings".into()))?;
        let mut parsed = HashMap::with_capacity(bindings.len());
        for pair in bindings {
            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                Pi2Error::Protocol("routes: binding must be [session, node]".into())
            })?;
            let session = pair[0]
                .as_i64()
                .filter(|&s| s >= 0)
                .ok_or_else(|| Pi2Error::Protocol("routes: bad session id".into()))?
                as u64;
            let node = pair[1]
                .as_i64()
                .filter(|&n| (0..=i64::from(u16::MAX)).contains(&n))
                .ok_or_else(|| Pi2Error::Protocol("routes: bad node index".into()))?;
            parsed.insert(session, node as u16);
        }
        let n = parsed.len();
        *self.map.lock().unwrap() = parsed;
        Ok(n)
    }
}

/// Raw scan for the `"session": <int>` member of a response body —
/// the same no-decode trick the HTTP reactor's `route_key` uses.
fn scan_session(body: &str) -> Option<u64> {
    let at = body.find("\"session\"")?;
    let rest = body[at + "\"session\"".len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits = rest.split(|c: char| !c.is_ascii_digit()).next()?;
    digits.parse().ok()
}

/// The fleet-aware [`WireService`]: `Pi2Service` plus sticky routing.
pub struct ClusterService {
    inner: Arc<Pi2Service>,
    cluster: Arc<Cluster>,
}

impl ClusterService {
    /// Wrap a node's service with the fleet's routing layer.
    pub fn new(inner: Arc<Pi2Service>, cluster: Arc<Cluster>) -> ClusterService {
        ClusterService { inner, cluster }
    }
}

impl WireService for ClusterService {
    type Request = Request;

    fn parse(&self, body: &str) -> Result<Request, (u16, String)> {
        self.inner.parse(body)
    }

    fn route_key(&self, body: &str) -> Option<u64> {
        self.inner.route_key(body)
    }

    fn session_of(&self, request: &Request) -> Option<u64> {
        self.inner.session_of(request)
    }

    fn handle(&self, request: Request) -> (u16, String) {
        self.handle_link(request, None)
    }

    fn handle_link(&self, request: Request, link: Option<&PushLink>) -> (u16, String) {
        // Live appends route by data ownership, not session ownership:
        // one node serializes all writers of a (workload, table) pair,
        // commits, answers the client, and broadcasts the delta so every
        // replica's catalogue advances.
        if let Request::Append {
            workload, table, ..
        } = &request
        {
            let owner = self.cluster.append_owner(workload, table);
            if owner != self.cluster.node() {
                ClusterMetrics::bump(&self.cluster.metrics().proxied_dispatches);
                let body = request_to_json(&request);
                return match self.cluster.proxy(owner, &body) {
                    Ok(answer) => answer,
                    Err(e) => {
                        let e = Pi2Error::PeerUnavailable(format!("node {owner}: {e}"));
                        (e.http_status(), error_to_json(&e))
                    }
                };
            }
            let body = request_to_json(&request);
            let (status, answer) = self.inner.handle_link(request, link);
            if status == 200 {
                self.cluster.broadcast_append(&body);
            }
            return (status, answer);
        }
        if let Some(session) = self.inner.session_of(&request) {
            if let Some(owner) = self.cluster.remote_owner(session) {
                if matches!(
                    request,
                    Request::Subscribe { .. } | Request::Unsubscribe { .. }
                ) {
                    // Cross-node push is unsupported: send the client to
                    // the owner's own WebSocket endpoint.
                    let e = Pi2Error::WrongShard { owner };
                    return (e.http_status(), error_to_json(&e));
                }
                ClusterMetrics::bump(&self.cluster.metrics().proxied_dispatches);
                let body = request_to_json(&request);
                return match self.cluster.proxy(owner, &body) {
                    Ok(answer) => answer,
                    Err(e) => {
                        let e = Pi2Error::PeerUnavailable(format!("node {owner}: {e}"));
                        (e.http_status(), error_to_json(&e))
                    }
                };
            }
        }
        let is_open = matches!(request, Request::Open { .. });
        let (status, body) = self.inner.handle_link(request, link);
        if is_open && status == 200 {
            if let Some(session) = scan_session(&body) {
                self.cluster.routes().bind(session, self.cluster.node());
            }
        }
        (status, body)
    }

    fn connection_closed(&self, conn: u64) {
        self.inner.connection_closed(conn);
    }

    fn metrics_body(&self) -> String {
        self.inner.metrics_body()
    }

    fn reject_body(&self, reject: &Reject) -> String {
        self.inner.reject_body(reject)
    }
}

/// The owner-side half of proxying: serve a forwarded request body
/// exactly as this node's HTTP front would, but answer `WrongShard` for
/// sessions some other node owns (a misdirected proxy must not guess).
pub fn proxy_handler(service: Arc<Pi2Service>, cluster: Arc<Cluster>) -> ProxyHandler {
    Arc::new(move |body: &str| match service.parse(body) {
        Ok(request) => {
            // Appends arrive here two ways: a `ProxyRequest` forwarded
            // by a non-owner front (this node is the owner — commit and
            // broadcast), or an `AppendApply` broadcast by the owner
            // (this node is a replica — commit quietly). Re-broadcasting
            // only as the owner is what keeps the fan-out loop-free.
            if let Request::Append {
                workload, table, ..
            } = &request
            {
                let owner = cluster.append_owner(workload, table);
                let is_owner = owner == cluster.node();
                let forwarded = body.to_string();
                let (status, answer) = service.handle_link(request, None);
                if status == 200 && is_owner {
                    cluster.broadcast_append(&forwarded);
                }
                return (status, answer);
            }
            if let Some(session) = service.session_of(&request) {
                if let Some(owner) = cluster.remote_owner(session) {
                    let e = Pi2Error::WrongShard { owner };
                    return (e.http_status(), error_to_json(&e));
                }
            }
            service.handle_link(request, None)
        }
        Err(answer) => answer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_map_snapshots_round_trip() {
        let map = RouteMap::new();
        map.bind(1 << 48 | 7, 1);
        map.bind(2 << 48 | 1, 0); // migrated: id bits say 2, binding says 0
        map.bind(3, 2);
        let snapshot = map.snapshot_json();
        assert_eq!(
            snapshot,
            format!(
                "{{\"v\":1,\"type\":\"routes\",\"bindings\":[[3,2],[{},1],[{},0]]}}",
                (1u64 << 48) | 7,
                (2u64 << 48) | 1,
            )
        );
        let restored = RouteMap::new();
        assert_eq!(restored.load_snapshot(&snapshot).unwrap(), 3);
        assert_eq!(restored.lookup(3), Some(2));
        assert_eq!(restored.lookup((2 << 48) | 1), Some(0));
        assert_eq!(restored.snapshot_json(), snapshot);
        // Unbinding falls back to id bits (the caller's concern).
        restored.unbind(3);
        assert_eq!(restored.lookup(3), None);
    }

    #[test]
    fn bad_snapshots_are_rejected() {
        let map = RouteMap::new();
        assert!(map.load_snapshot("not json").is_err());
        assert!(map.load_snapshot("{\"v\":1}").is_err());
        assert!(map.load_snapshot("{\"bindings\":[[1,2,3]]}").is_err());
        assert!(map.load_snapshot("{\"bindings\":[[1,99999]]}").is_err());
    }

    #[test]
    fn session_scan_matches_protocol_bodies() {
        assert_eq!(
            scan_session("{\"v\":1,\"type\":\"opened\",\"session\": 281474976710663,…"),
            Some(281474976710663)
        );
        assert_eq!(scan_session("{\"v\":1,\"type\":\"error\"}"), None);
    }
}
