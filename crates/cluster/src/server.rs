//! The peer *server*: every node's listening half of the fleet.
//!
//! One accept thread admits peer connections and hands them — made
//! non-blocking — to a single reactor thread multiplexed on the same
//! pluggable readiness [`Selector`] infrastructure the HTTP server's
//! reactors use (`pi2_server::poll`): epoll on Linux, the portable
//! timed tick elsewhere, honouring `PI2_SELECTOR`.
//!
//! Cache lookups (`MemoGet`/`RewardGet`) and write-behind publishes
//! (`MemoPut`/`RewardPut`) are answered *inline on the reactor*: they
//! are pure peeks/inserts into this node's local cache shards and never
//! touch the network, so they cannot stall the loop. `ProxyRequest` is
//! the exception — serving a forwarded dispatch runs real session work
//! and could itself consult remote cache tiers, so it is offloaded to a
//! worker thread and its response is delivered back to the reactor
//! through a completion channel + waker. That offload also breaks the
//! A→B/B→A distributed-deadlock cycle two single-threaded reactors
//! proxying at each other would otherwise form.

use crate::wire::{decode_buf, Frame};
use pi2::protocol::table_from_json;
use pi2::Json;
use pi2_data::wire::table_to_json;
use pi2_interface::global_eval_cache;
use pi2_server::poll::{build, Interest, Selector, SelectorKind, Waker, Wakeup};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Serves one forwarded protocol request body, returning the exact
/// `(status, body)` the owner would answer over its own HTTP front.
pub type ProxyHandler = Arc<dyn Fn(&str) -> (u16, String) + Send + Sync>;

/// A running peer listener.
pub struct PeerServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
}

struct PeerConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    want_write: bool,
    closed: bool,
}

impl PeerServer {
    /// Bind `addr` and start serving the peer protocol. `proxy` serves
    /// forwarded dispatches on worker threads.
    pub fn start(addr: &str, proxy: ProxyHandler) -> io::Result<PeerServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (_, mut selectors) = build(SelectorKind::Auto, 1);
        let mut selector = selectors.pop().expect("build returns one selector");
        let waker = selector.waker();

        // New connections travel accept thread → reactor through this
        // channel; a waker nudge makes the reactor drain it promptly.
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        // Proxy workers deliver finished responses the same way.
        let (done_tx, done_rx) = mpsc::channel::<(u64, Frame)>();

        let accept_thread = {
            let shutdown = shutdown.clone();
            let waker = waker.clone();
            std::thread::Builder::new()
                .name("pi2-peer-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        if stream.set_nonblocking(true).is_err()
                            || stream.set_nodelay(true).is_err()
                        {
                            continue;
                        }
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                        waker.wake();
                    }
                })?
        };

        let reactor_thread = {
            let shutdown = shutdown.clone();
            let waker = waker.clone();
            std::thread::Builder::new()
                .name("pi2-peer-reactor".into())
                .spawn(move || {
                    reactor_loop(
                        selector.as_mut(),
                        &shutdown,
                        &conn_rx,
                        &done_rx,
                        done_tx,
                        waker,
                        proxy,
                    )
                })?
        };

        Ok(PeerServer {
            local_addr,
            shutdown,
            waker,
            accept_thread: Some(accept_thread),
            reactor_thread: Some(reactor_thread),
        })
    }

    /// The bound peer-protocol address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting and close every peer connection.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection and the
        // reactor with its waker.
        let _ = TcpStream::connect(self.local_addr);
        self.waker.wake();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PeerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn reactor_loop(
    selector: &mut dyn Selector,
    shutdown: &AtomicBool,
    conn_rx: &mpsc::Receiver<TcpStream>,
    done_rx: &mpsc::Receiver<(u64, Frame)>,
    done_tx: mpsc::Sender<(u64, Frame)>,
    waker: Waker,
    proxy: ProxyHandler,
) {
    let mut conns: HashMap<u64, PeerConn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut ready: Vec<u64> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        // Admit new connections.
        while let Ok(stream) = conn_rx.try_recv() {
            let token = next_token;
            next_token += 1;
            if selector
                .register(
                    &stream,
                    token,
                    Interest {
                        read: true,
                        write: false,
                    },
                )
                .is_ok()
            {
                conns.insert(
                    token,
                    PeerConn {
                        stream,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        want_write: false,
                        closed: false,
                    },
                );
            }
        }
        // Deliver finished proxy responses.
        while let Ok((token, frame)) = done_rx.try_recv() {
            if let Some(conn) = conns.get_mut(&token) {
                conn.outbuf.extend_from_slice(&frame.encode());
                flush(selector, token, conn);
            }
        }
        ready.clear();
        let scan_all = match selector.wait(&mut ready, Duration::from_millis(25)) {
            Wakeup::All => true,
            Wakeup::Ready => false,
        };
        let tokens: Vec<u64> = if scan_all {
            conns.keys().copied().collect()
        } else {
            ready.clone()
        };
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if conn.want_write {
                flush(selector, token, conn);
            }
            service_reads(selector, token, conn, &done_tx, &waker, &proxy);
            if conn.closed {
                let conn = conns.remove(&token).unwrap();
                let _ = selector.deregister(&conn.stream);
            }
        }
    }
    for (_, conn) in conns.drain() {
        let _ = selector.deregister(&conn.stream);
    }
}

/// Write as much buffered output as the socket takes; track whether the
/// selector still needs to watch for writability.
fn flush(selector: &mut dyn Selector, token: u64, conn: &mut PeerConn) {
    while !conn.outbuf.is_empty() {
        match conn.stream.write(&conn.outbuf) {
            Ok(0) => {
                conn.closed = true;
                return;
            }
            Ok(n) => {
                conn.outbuf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closed = true;
                return;
            }
        }
    }
    let want_write = !conn.outbuf.is_empty();
    if want_write != conn.want_write {
        conn.want_write = want_write;
        let _ = selector.reregister(
            &conn.stream,
            token,
            Interest {
                read: true,
                write: want_write,
            },
        );
    }
}

fn service_reads(
    selector: &mut dyn Selector,
    token: u64,
    conn: &mut PeerConn,
    done_tx: &mpsc::Sender<(u64, Frame)>,
    waker: &Waker,
    proxy: &ProxyHandler,
) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.closed = true;
                break;
            }
            Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closed = true;
                break;
            }
        }
    }
    loop {
        match decode_buf(&conn.inbuf) {
            Ok(Some((frame, used))) => {
                conn.inbuf.drain(..used);
                if let Some(response) = handle_frame(frame, token, done_tx, waker, proxy) {
                    conn.outbuf.extend_from_slice(&response.encode());
                }
            }
            Ok(None) => break,
            Err(_) => {
                // A peer speaking garbage is cut off.
                conn.closed = true;
                break;
            }
        }
    }
    if !conn.outbuf.is_empty() {
        flush(selector, token, conn);
    }
}

/// Serve one frame. Gets and puts are pure local cache operations and
/// answer inline; proxies are offloaded.
fn handle_frame(
    frame: Frame,
    token: u64,
    done_tx: &mpsc::Sender<(u64, Frame)>,
    waker: &Waker,
    proxy: &ProxyHandler,
) -> Option<Frame> {
    match frame {
        Frame::Hello { .. } => None,
        Frame::MemoGet { catalog_fp, sql_fp } => {
            Some(match global_eval_cache().peek_result(catalog_fp, sql_fp) {
                Some(table) => Frame::MemoHit {
                    table_json: table_to_json(&table).into_bytes(),
                },
                None => Frame::MemoMiss,
            })
        }
        Frame::MemoPut {
            catalog_fp,
            sql_fp,
            table_json,
        } => {
            if let Some(table) = std::str::from_utf8(&table_json)
                .ok()
                .and_then(|s| Json::parse(s).ok())
                .and_then(|j| table_from_json(&j).ok())
            {
                global_eval_cache().admit_result(catalog_fp, sql_fp, Arc::new(table));
            }
            None
        }
        Frame::RewardGet {
            state_hash,
            state_size,
            ctx_fp,
        } => Some(
            match pi2_search::reward_table_peek(state_hash, state_size, ctx_fp) {
                Some(reward) => Frame::RewardHit { reward },
                None => Frame::RewardMiss,
            },
        ),
        Frame::RewardPut {
            state_hash,
            state_size,
            ctx_fp,
            reward,
        } => {
            pi2_search::admit_remote_reward(state_hash, state_size, ctx_fp, reward);
            None
        }
        Frame::ProxyRequest { body } => {
            let proxy = proxy.clone();
            let done_tx = done_tx.clone();
            let waker = waker.clone();
            std::thread::spawn(move || {
                let (status, body) = match std::str::from_utf8(&body) {
                    Ok(text) => proxy(text),
                    Err(_) => (400, String::from("{\"type\":\"error\"}")),
                };
                let _ = done_tx.send((
                    token,
                    Frame::ProxyResponse {
                        status,
                        body: body.into_bytes(),
                    },
                ));
                waker.wake();
            });
            None
        }
        Frame::AppendApply { body } => {
            // Apply the owner's committed append to this node's replica.
            // One-way by contract: no response frame, and — like a
            // proxy — the catalogue mutation and subscriber fan-out run
            // off the reactor. The handler only re-broadcasts when this
            // node owns the append key, which the broadcasting owner
            // does not, so replicas never echo.
            let proxy = proxy.clone();
            std::thread::spawn(move || {
                if let Ok(text) = std::str::from_utf8(&body) {
                    let _ = proxy(text);
                }
            });
            None
        }
        // Response frames arriving at a server are a protocol violation;
        // answering nothing lets the client's read time out and its
        // breaker handle the rest.
        Frame::MemoHit { .. }
        | Frame::MemoMiss
        | Frame::RewardHit { .. }
        | Frame::RewardMiss
        | Frame::ProxyResponse { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PeerClient;
    use crate::wire::{read_frame, write_frame};
    use pi2_data::{DataType, Table, Value};

    fn null_proxy() -> ProxyHandler {
        Arc::new(|_body: &str| (200, String::from("{\"ok\":true}")))
    }

    #[test]
    fn serves_memo_lookups_and_accepts_publishes() {
        let mut server = PeerServer::start("127.0.0.1:0", null_proxy()).unwrap();
        let metrics = Arc::new(crate::metrics::ClusterMetrics::default());
        let peer = PeerClient::new(
            1,
            0,
            server.local_addr().to_string(),
            Duration::from_secs(5),
            3,
            Duration::from_millis(100),
            metrics,
        );
        // Unknown key: miss.
        let reply = peer
            .call(&Frame::MemoGet {
                catalog_fp: 0xfeed,
                sql_fp: 0xbead,
            })
            .unwrap();
        assert_eq!(reply, Frame::MemoMiss);
        // Publish a table, then read it back through the wire.
        let table = Table::from_rows(
            vec![("a", DataType::Int)],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        peer.send(&Frame::MemoPut {
            catalog_fp: 0xfeed,
            sql_fp: 0xbead,
            table_json: table_to_json(&table).into_bytes(),
        })
        .unwrap();
        // The put is one-way; poll until the reactor has applied it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let got = loop {
            match peer
                .call(&Frame::MemoGet {
                    catalog_fp: 0xfeed,
                    sql_fp: 0xbead,
                })
                .unwrap()
            {
                Frame::MemoHit { table_json } => break table_json,
                Frame::MemoMiss if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5))
                }
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(got, table_to_json(&table).into_bytes());
        // Rewards travel the same way.
        peer.send(&Frame::RewardPut {
            state_hash: 11,
            state_size: 3,
            ctx_fp: 1,
            reward: 0.75,
        })
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match peer
                .call(&Frame::RewardGet {
                    state_hash: 11,
                    state_size: 3,
                    ctx_fp: 1,
                })
                .unwrap()
            {
                Frame::RewardHit { reward } => {
                    assert_eq!(reward, 0.75);
                    break;
                }
                Frame::RewardMiss if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5))
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn proxies_run_off_reactor_and_garbage_closes_the_connection() {
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let b2 = barrier.clone();
        let proxy: ProxyHandler = Arc::new(move |body: &str| {
            // Park the proxy worker until the test has proven the
            // reactor still answers gets.
            b2.wait();
            (207, format!("{{\"echo\":{body}}}"))
        });
        let mut server = PeerServer::start("127.0.0.1:0", proxy).unwrap();
        let addr = server.local_addr();
        let metrics = Arc::new(crate::metrics::ClusterMetrics::default());
        let slow = PeerClient::new(
            1,
            0,
            addr.to_string(),
            Duration::from_secs(10),
            3,
            Duration::from_millis(100),
            Arc::clone(&metrics),
        );
        let proxy_call = std::thread::spawn(move || {
            slow.call(&Frame::ProxyRequest {
                body: b"42".to_vec(),
            })
            .unwrap()
        });
        // While the proxy is parked, a second connection's gets answer.
        let fast = PeerClient::new(
            2,
            0,
            addr.to_string(),
            Duration::from_secs(5),
            3,
            Duration::from_millis(100),
            metrics,
        );
        assert_eq!(
            fast.call(&Frame::RewardGet {
                state_hash: 424242,
                state_size: 1,
                ctx_fp: 0,
            })
            .unwrap(),
            Frame::RewardMiss
        );
        barrier.wait();
        assert_eq!(
            proxy_call.join().unwrap(),
            Frame::ProxyResponse {
                status: 207,
                body: b"{\"echo\":42}".to_vec(),
            }
        );
        // A garbage frame gets the connection dropped, not the server.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&[0xFF; 16]).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink); // server closes → EOF (or reset)
        let mut again = TcpStream::connect(addr).unwrap();
        write_frame(&mut again, &Frame::Hello { node: 9 }).unwrap();
        write_frame(
            &mut again,
            &Frame::MemoGet {
                catalog_fp: 5,
                sql_fp: 6,
            },
        )
        .unwrap();
        again
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(read_frame(&mut again).unwrap(), Frame::MemoMiss);
        server.shutdown();
    }
}
