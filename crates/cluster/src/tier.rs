//! The read-through / write-behind cache tiers.
//!
//! These implement the hooks the cache layers expose —
//! [`pi2_interface::RemoteResultTier`] for the cross-session result
//! memo and [`pi2_search::RemoteRewardTier`] for the MCTS reward
//! transposition table — against the fleet. A local miss consults the
//! key's ring owner (read-through) before computing; a local compute is
//! queued to a background publisher thread that ships it to the owner
//! (write-behind, one-way frames), so the hot path never blocks on a
//! publish. The queue is bounded and lossy: the fleet is a cache, and
//! dropping a publish under pressure costs at most a recompute.

use crate::metrics::ClusterMetrics;
use crate::peer::PeerClient;
use crate::wire::Frame;
use crate::Cluster;
use pi2::protocol::table_from_json;
use pi2::Json;
use pi2_data::{wire::table_to_json, Table};
use pi2_interface::RemoteResultTier;
use pi2_search::RemoteRewardTier;
use std::sync::mpsc::Receiver;
use std::sync::Arc;

/// One queued write-behind publish.
pub(crate) enum Publish {
    /// A computed query result, headed for `owner`.
    Memo {
        owner: u16,
        catalog_fp: u64,
        sql_fp: u64,
        table: Arc<Table>,
    },
    /// A computed MCTS reward, headed for `owner`.
    Reward {
        owner: u16,
        state_hash: u64,
        state_size: u32,
        ctx_fp: u64,
        reward: f64,
    },
}

/// Drain the publish queue onto peer connections. Table encoding
/// happens here, off the dispatch path. Exits when every sender is
/// dropped.
pub(crate) fn publisher_loop(rx: Receiver<Publish>, peers: Arc<Vec<Option<PeerClient>>>) {
    let peer = |owner: u16| peers.get(owner as usize).and_then(|p| p.as_ref());
    for item in rx {
        match item {
            Publish::Memo {
                owner,
                catalog_fp,
                sql_fp,
                table,
            } => {
                if let Some(peer) = peer(owner) {
                    let _ = peer.send(&Frame::MemoPut {
                        catalog_fp,
                        sql_fp,
                        table_json: table_to_json(&table).into_bytes(),
                    });
                }
            }
            Publish::Reward {
                owner,
                state_hash,
                state_size,
                ctx_fp,
                reward,
            } => {
                if let Some(peer) = peer(owner) {
                    let _ = peer.send(&Frame::RewardPut {
                        state_hash,
                        state_size,
                        ctx_fp,
                        reward,
                    });
                }
            }
        }
    }
}

/// The result-memo tier: shards `(catalog_fp, sql_fp)` over the ring.
pub struct ClusterResultTier {
    pub(crate) cluster: Arc<Cluster>,
}

impl RemoteResultTier for ClusterResultTier {
    fn fetch(&self, catalog_fp: u64, sql_fp: u64) -> Option<Table> {
        let owner = self.cluster.ring().memo_owner(catalog_fp, sql_fp);
        let peer = self.cluster.peer(owner)?; // self-owned keys: the local miss is final
        let m = self.cluster.metrics();
        match peer.call(&Frame::MemoGet { catalog_fp, sql_fp }) {
            Ok(Frame::MemoHit { table_json }) => {
                let table = std::str::from_utf8(&table_json)
                    .ok()
                    .and_then(|s| Json::parse(s).ok())
                    .and_then(|j| table_from_json(&j).ok());
                match table {
                    Some(t) => {
                        ClusterMetrics::bump(&m.cluster_hits);
                        Some(t)
                    }
                    None => {
                        ClusterMetrics::bump(&m.cluster_misses);
                        None
                    }
                }
            }
            Ok(_) => {
                ClusterMetrics::bump(&m.cluster_misses);
                None
            }
            // Timeout / refused / open breaker: already counted as a
            // peer failure by the client; degrade to local computation.
            Err(_) => {
                ClusterMetrics::bump(&m.cluster_misses);
                None
            }
        }
    }

    fn publish(&self, catalog_fp: u64, sql_fp: u64, table: &Arc<Table>) {
        let owner = self.cluster.ring().memo_owner(catalog_fp, sql_fp);
        if self.cluster.peer(owner).is_none() {
            return; // we own it: the local insert was the publish
        }
        self.cluster.enqueue(Publish::Memo {
            owner,
            catalog_fp,
            sql_fp,
            table: Arc::clone(table),
        });
    }
}

/// The reward-table tier: shards `(ForestKey, ctx_fp)` over the ring.
pub struct ClusterRewardTier {
    pub(crate) cluster: Arc<Cluster>,
}

impl RemoteRewardTier for ClusterRewardTier {
    fn fetch(&self, state_hash: u64, state_size: u32, ctx_fp: u64) -> Option<f64> {
        let owner = self
            .cluster
            .ring()
            .reward_owner(state_hash, state_size, ctx_fp);
        let peer = self.cluster.peer(owner)?;
        let m = self.cluster.metrics();
        match peer.call(&Frame::RewardGet {
            state_hash,
            state_size,
            ctx_fp,
        }) {
            Ok(Frame::RewardHit { reward }) => {
                ClusterMetrics::bump(&m.cluster_hits);
                Some(reward)
            }
            Ok(_) => {
                ClusterMetrics::bump(&m.cluster_misses);
                None
            }
            Err(_) => {
                ClusterMetrics::bump(&m.cluster_misses);
                None
            }
        }
    }

    fn publish(&self, state_hash: u64, state_size: u32, ctx_fp: u64, reward: f64) {
        let owner = self
            .cluster
            .ring()
            .reward_owner(state_hash, state_size, ctx_fp);
        if self.cluster.peer(owner).is_none() {
            return;
        }
        self.cluster.enqueue(Publish::Reward {
            owner,
            state_hash,
            state_size,
            ctx_fp,
            reward,
        });
    }
}
