//! The compact binary peer protocol.
//!
//! Peers speak length-prefixed binary frames over persistent TCP
//! connections: a little-endian `u32` payload length, a one-byte tag,
//! then fixed-width key fields followed by at most one variable-length
//! trailing field. Table payloads reuse `pi2_data::wire`'s columnar
//! `{dict, codes}` JSON form (the same bytes the HTTP protocol ships to
//! browsers), so the peer tier adds no second table encoding — a
//! `MemoHit` body decodes with `pi2_core::protocol::table_from_json`.
//!
//! The request/response discipline is deliberately simple: a client
//! holds one outstanding request per connection (gets and proxies expect
//! exactly one response frame, in order), and the write-behind `*Put`
//! frames are **one-way** — no acknowledgement — so publishes never
//! interleave with a pending response. Responses therefore carry no
//! correlation ids and no echoed keys.

use std::io::{self, Read, Write};

/// Refuse frames above this size (a corrupt length prefix must not
/// allocate gigabytes).
pub const MAX_FRAME: usize = 64 << 20;

/// One peer-protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection preamble: the sender's node index.
    Hello {
        /// Ring index of the connecting node.
        node: u16,
    },
    /// Look up a result-memo entry on its owner.
    MemoGet {
        /// Catalogue fingerprint half of the memo key.
        catalog_fp: u64,
        /// SQL fingerprint half of the memo key.
        sql_fp: u64,
    },
    /// Owner answer: the memoised table, as columnar wire JSON.
    MemoHit {
        /// `pi2_data::wire::table_to_json` bytes.
        table_json: Vec<u8>,
    },
    /// Owner answer: not cached here.
    MemoMiss,
    /// Write-behind publish of a computed result to its owner (one-way).
    MemoPut {
        /// Catalogue fingerprint half of the memo key.
        catalog_fp: u64,
        /// SQL fingerprint half of the memo key.
        sql_fp: u64,
        /// `pi2_data::wire::table_to_json` bytes.
        table_json: Vec<u8>,
    },
    /// Look up a reward-table entry on its owner.
    RewardGet {
        /// `ForestKey::hash` of the Difftree state.
        state_hash: u64,
        /// `ForestKey::size` of the Difftree state.
        state_size: u32,
        /// Search-context fingerprint (workload ⊕ MCTS config).
        ctx_fp: u64,
    },
    /// Owner answer: the memoised reward.
    RewardHit {
        /// The reward value.
        reward: f64,
    },
    /// Owner answer: not cached here.
    RewardMiss,
    /// Write-behind publish of a computed reward to its owner (one-way).
    RewardPut {
        /// `ForestKey::hash` of the Difftree state.
        state_hash: u64,
        /// `ForestKey::size` of the Difftree state.
        state_size: u32,
        /// Search-context fingerprint (workload ⊕ MCTS config).
        ctx_fp: u64,
        /// The reward value.
        reward: f64,
    },
    /// Serve this protocol request locally and return the response: the
    /// sticky-routing forward of a `POST /v1` / WebSocket dispatch whose
    /// session this peer owns. The body is the JSON request.
    ProxyRequest {
        /// JSON protocol request bytes.
        body: Vec<u8>,
    },
    /// The owner's verbatim `(status, body)` answer to a proxy.
    ProxyResponse {
        /// HTTP status the owner would have answered.
        status: u16,
        /// Response body bytes, relayed to the client untouched.
        body: Vec<u8>,
    },
    /// Apply an already-committed live append to this node's replica of
    /// the workload's catalogue (one-way — the append owner broadcasts
    /// it after serving the client; replicas apply without replying and
    /// never re-broadcast). The body is the JSON `append` request.
    AppendApply {
        /// JSON protocol request bytes.
        body: Vec<u8>,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_MEMO_GET: u8 = 0x10;
const TAG_MEMO_HIT: u8 = 0x11;
const TAG_MEMO_MISS: u8 = 0x12;
const TAG_MEMO_PUT: u8 = 0x13;
const TAG_REWARD_GET: u8 = 0x20;
const TAG_REWARD_HIT: u8 = 0x21;
const TAG_REWARD_MISS: u8 = 0x22;
const TAG_REWARD_PUT: u8 = 0x23;
const TAG_PROXY_REQUEST: u8 = 0x30;
const TAG_PROXY_RESPONSE: u8 = 0x31;
const TAG_APPEND_APPLY: u8 = 0x32;

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("peer frame: {what}"))
}

impl Frame {
    /// Encode into a length-prefixed byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut p: Vec<u8> = Vec::with_capacity(32);
        match self {
            Frame::Hello { node } => {
                p.push(TAG_HELLO);
                p.extend_from_slice(&node.to_le_bytes());
            }
            Frame::MemoGet { catalog_fp, sql_fp } => {
                p.push(TAG_MEMO_GET);
                p.extend_from_slice(&catalog_fp.to_le_bytes());
                p.extend_from_slice(&sql_fp.to_le_bytes());
            }
            Frame::MemoHit { table_json } => {
                p.reserve(table_json.len());
                p.push(TAG_MEMO_HIT);
                p.extend_from_slice(table_json);
            }
            Frame::MemoMiss => p.push(TAG_MEMO_MISS),
            Frame::MemoPut {
                catalog_fp,
                sql_fp,
                table_json,
            } => {
                p.reserve(table_json.len() + 17);
                p.push(TAG_MEMO_PUT);
                p.extend_from_slice(&catalog_fp.to_le_bytes());
                p.extend_from_slice(&sql_fp.to_le_bytes());
                p.extend_from_slice(table_json);
            }
            Frame::RewardGet {
                state_hash,
                state_size,
                ctx_fp,
            } => {
                p.push(TAG_REWARD_GET);
                p.extend_from_slice(&state_hash.to_le_bytes());
                p.extend_from_slice(&state_size.to_le_bytes());
                p.extend_from_slice(&ctx_fp.to_le_bytes());
            }
            Frame::RewardHit { reward } => {
                p.push(TAG_REWARD_HIT);
                p.extend_from_slice(&reward.to_le_bytes());
            }
            Frame::RewardMiss => p.push(TAG_REWARD_MISS),
            Frame::RewardPut {
                state_hash,
                state_size,
                ctx_fp,
                reward,
            } => {
                p.push(TAG_REWARD_PUT);
                p.extend_from_slice(&state_hash.to_le_bytes());
                p.extend_from_slice(&state_size.to_le_bytes());
                p.extend_from_slice(&ctx_fp.to_le_bytes());
                p.extend_from_slice(&reward.to_le_bytes());
            }
            Frame::ProxyRequest { body } => {
                p.reserve(body.len());
                p.push(TAG_PROXY_REQUEST);
                p.extend_from_slice(body);
            }
            Frame::ProxyResponse { status, body } => {
                p.reserve(body.len() + 3);
                p.push(TAG_PROXY_RESPONSE);
                p.extend_from_slice(&status.to_le_bytes());
                p.extend_from_slice(body);
            }
            Frame::AppendApply { body } => {
                p.reserve(body.len());
                p.push(TAG_APPEND_APPLY);
                p.extend_from_slice(body);
            }
        }
        let mut out = Vec::with_capacity(4 + p.len());
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Decode one frame from a complete payload (the bytes after the
    /// length prefix).
    pub fn decode_payload(p: &[u8]) -> io::Result<Frame> {
        let (&tag, rest) = p.split_first().ok_or_else(|| bad("empty payload"))?;
        let fixed = |n: usize| -> io::Result<(&[u8], &[u8])> {
            if rest.len() < n {
                Err(bad("truncated fields"))
            } else {
                Ok(rest.split_at(n))
            }
        };
        let u64_at = |b: &[u8], at: usize| u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
        Ok(match tag {
            TAG_HELLO => {
                let (f, _) = fixed(2)?;
                Frame::Hello {
                    node: u16::from_le_bytes(f.try_into().unwrap()),
                }
            }
            TAG_MEMO_GET => {
                let (f, _) = fixed(16)?;
                Frame::MemoGet {
                    catalog_fp: u64_at(f, 0),
                    sql_fp: u64_at(f, 8),
                }
            }
            TAG_MEMO_HIT => Frame::MemoHit {
                table_json: rest.to_vec(),
            },
            TAG_MEMO_MISS => Frame::MemoMiss,
            TAG_MEMO_PUT => {
                let (f, body) = fixed(16)?;
                Frame::MemoPut {
                    catalog_fp: u64_at(f, 0),
                    sql_fp: u64_at(f, 8),
                    table_json: body.to_vec(),
                }
            }
            TAG_REWARD_GET => {
                let (f, _) = fixed(20)?;
                Frame::RewardGet {
                    state_hash: u64_at(f, 0),
                    state_size: u32::from_le_bytes(f[8..12].try_into().unwrap()),
                    ctx_fp: u64_at(f, 12),
                }
            }
            TAG_REWARD_HIT => {
                let (f, _) = fixed(8)?;
                Frame::RewardHit {
                    reward: f64::from_le_bytes(f.try_into().unwrap()),
                }
            }
            TAG_REWARD_MISS => Frame::RewardMiss,
            TAG_REWARD_PUT => {
                let (f, _) = fixed(28)?;
                Frame::RewardPut {
                    state_hash: u64_at(f, 0),
                    state_size: u32::from_le_bytes(f[8..12].try_into().unwrap()),
                    ctx_fp: u64_at(f, 12),
                    reward: f64::from_le_bytes(f[20..28].try_into().unwrap()),
                }
            }
            TAG_PROXY_REQUEST => Frame::ProxyRequest {
                body: rest.to_vec(),
            },
            TAG_PROXY_RESPONSE => {
                let (f, body) = fixed(2)?;
                Frame::ProxyResponse {
                    status: u16::from_le_bytes(f.try_into().unwrap()),
                    body: body.to_vec(),
                }
            }
            TAG_APPEND_APPLY => Frame::AppendApply {
                body: rest.to_vec(),
            },
            other => return Err(bad(&format!("unknown tag {other:#04x}"))),
        })
    }
}

/// Incremental decode for a reactor's read buffer: `Ok(Some((frame,
/// consumed)))` when a complete frame is buffered, `Ok(None)` when more
/// bytes are needed, `Err` on a malformed or oversized frame.
pub fn decode_buf(buf: &[u8]) -> io::Result<Option<(Frame, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(bad(&format!("length {len} exceeds {MAX_FRAME}")));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let frame = Frame::decode_payload(&buf[4..4 + len])?;
    Ok(Some((frame, 4 + len)))
}

/// Blocking: write one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())
}

/// Blocking: read exactly one frame (used by the peer *client*, whose
/// sockets stay in blocking mode with a read timeout).
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(bad(&format!("length {len} exceeds {MAX_FRAME}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Frame::decode_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { node: 2 },
            Frame::MemoGet {
                catalog_fp: 0xdead_beef,
                sql_fp: 41,
            },
            Frame::MemoHit {
                table_json: b"{\"dict\":[],\"codes\":[]}".to_vec(),
            },
            Frame::MemoMiss,
            Frame::MemoPut {
                catalog_fp: 1,
                sql_fp: u64::MAX,
                table_json: b"{}".to_vec(),
            },
            Frame::RewardGet {
                state_hash: 7,
                state_size: 3,
                ctx_fp: 99,
            },
            Frame::RewardHit { reward: -0.125 },
            Frame::RewardMiss,
            Frame::RewardPut {
                state_hash: 8,
                state_size: 0,
                ctx_fp: 1,
                reward: 2.5,
            },
            Frame::ProxyRequest {
                body: b"{\"v\":1,\"type\":\"metrics\"}".to_vec(),
            },
            Frame::ProxyResponse {
                status: 503,
                body: b"{\"type\":\"error\"}".to_vec(),
            },
            Frame::AppendApply {
                body: b"{\"v\":2,\"type\":\"append\",\"workload\":\"w\",\"table\":\"t\"}".to_vec(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in all_frames() {
            let bytes = frame.encode();
            let (decoded, used) = decode_buf(&bytes).unwrap().expect("complete");
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
            // And through the blocking reader.
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn a_stream_of_frames_decodes_incrementally() {
        let frames = all_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        // Feed the buffer one byte at a time; frames pop out whole.
        let mut buf = Vec::new();
        let mut out = Vec::new();
        for b in stream {
            buf.push(b);
            while let Some((frame, used)) = decode_buf(&buf).unwrap() {
                buf.drain(..used);
                out.push(frame);
            }
        }
        assert!(buf.is_empty());
        assert_eq!(out, frames);
    }

    #[test]
    fn malformed_frames_error_instead_of_allocating() {
        // Oversized length prefix.
        let mut huge = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 8]);
        assert!(decode_buf(&huge).is_err());
        // Unknown tag.
        let mut unknown = 1u32.to_le_bytes().to_vec();
        unknown.push(0xEE);
        assert!(decode_buf(&unknown).is_err());
        // Truncated fixed fields.
        let short = Frame::MemoGet {
            catalog_fp: 1,
            sql_fp: 2,
        }
        .encode();
        let mut cut = short[..8].to_vec();
        cut[0..4].copy_from_slice(&4u32.to_le_bytes());
        assert!(decode_buf(&cut).is_err());
    }
}
