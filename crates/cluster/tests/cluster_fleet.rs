//! Three-process fleet test: real `pi2-node` processes (separate
//! address spaces, separate process-wide caches — like production),
//! booted over loopback.
//!
//! Pins the tentpole behaviours end to end:
//! * a proxied dispatch answers **byte-identical** to asking the owner
//!   directly;
//! * a warm cross-node cache hit serves a result computed on another
//!   node (`clusterHits > 0`) instead of re-executing locally;
//! * killing a peer mid-run degrades to local computation with zero
//!   client-visible errors on locally-owned sessions (`peerTimeouts`
//!   counts the failures), and proxying to the dead owner answers the
//!   structured `peer_unavailable` 503;
//! * `negotiate` advertises the cluster capability.

use pi2::server::Http1Client;
use pi2::{
    request_to_json, Event, GenerationConfig, InteractionChoice, Json, Pi2, Request, Value,
    WidgetKind,
};
use pi2_cluster::Ring;
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kills the node processes even when an assertion panics.
struct Fleet {
    nodes: Vec<Child>,
    http: Vec<SocketAddr>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.nodes {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn free_addrs(n: usize) -> Vec<String> {
    // Bind-then-drop: the OS hands out distinct free ports. (A small
    // reuse race is possible but harmless at test scale.)
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

fn boot_fleet(n: usize) -> Fleet {
    let peers = free_addrs(n).join(",");
    let mut nodes = Vec::new();
    let mut http = Vec::new();
    for node in 0..n {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pi2-node"))
            .args([
                "--node",
                &node.to_string(),
                "--peers",
                &peers,
                "--workload",
                "covid",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn pi2-node");
        let stdout = child.stdout.take().unwrap();
        nodes.push(child);
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("node announces READY");
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("READY"), "node {node} said {line:?}");
        http.push(parts.next().unwrap().parse().unwrap());
    }
    Fleet { nodes, http }
}

/// The identical interface every node generated (quick config is
/// deterministic), probed for a sequence of dispatchable events.
fn covid_events() -> Vec<Event> {
    let generation = Pi2::new(pi2_workloads::catalog())
        .generate_with(
            &pi2_workloads::log(pi2_workloads::LogKind::Covid)
                .queries
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
            &GenerationConfig::quick(),
        )
        .expect("covid generates");
    let mut probe = generation.session().unwrap();
    let mut events = Vec::new();
    for (ix, inst) in generation.interface.interactions.iter().enumerate() {
        let candidates = match &inst.choice {
            InteractionChoice::Widget { kind, domain, .. } => match kind {
                WidgetKind::Toggle => vec![
                    Event::Toggle {
                        interaction: ix,
                        on: false,
                    },
                    Event::Toggle {
                        interaction: ix,
                        on: true,
                    },
                ],
                _ if domain.size() >= 2 => vec![
                    Event::Select {
                        interaction: ix,
                        option: 0,
                    },
                    Event::Select {
                        interaction: ix,
                        option: 1,
                    },
                ],
                _ => vec![
                    Event::SetValues {
                        interaction: ix,
                        values: vec![Value::Int(10)],
                    },
                    Event::SetValues {
                        interaction: ix,
                        values: vec![Value::Int(20)],
                    },
                ],
            },
            InteractionChoice::Vis { .. } => vec![
                Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(20), Value::Int(40)],
                },
                Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(0), Value::Int(70)],
                },
            ],
        };
        for event in candidates {
            if probe.dispatch(&event).is_ok() {
                events.push(event);
            }
        }
    }
    assert!(
        !events.is_empty(),
        "the covid interface must expose dispatchable interactions"
    );
    events
}

fn open_session(client: &mut Http1Client, workload: &str) -> u64 {
    let resp = client
        .post(
            "/v1",
            &format!("{{\"v\":1,\"type\":\"open\",\"workload\":\"{workload}\"}}"),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let at = resp.body.find("\"session\":").expect("opened has session");
    resp.body[at + 10..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

fn dispatch(client: &mut Http1Client, session: u64, event: &Event) -> (u16, String) {
    let body = request_to_json(&Request::Event {
        session,
        event: event.clone(),
    });
    let resp = client.post("/v1", &body).unwrap();
    (resp.status, resp.body)
}

fn live_counter(client: &mut Http1Client, name: &str) -> i64 {
    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    Json::parse(&resp.body)
        .expect("metrics parse")
        .get("service")
        .and_then(|s| s.get("live"))
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_i64())
        .unwrap_or_else(|| panic!("no live.{name} in {}", resp.body))
}

fn cluster_counter(client: &mut Http1Client, name: &str) -> i64 {
    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    Json::parse(&resp.body)
        .expect("metrics parse")
        .get("service")
        .and_then(|s| s.get("cluster"))
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_i64())
        .unwrap_or_else(|| panic!("no cluster.{name} in {}", resp.body))
}

#[test]
fn appends_forward_to_their_owner_and_replicate_fleet_wide() {
    let fleet = boot_fleet(2);
    std::thread::sleep(Duration::from_millis(700));

    // Every node computes the same rendezvous owner for the pair; drive
    // the append through the OTHER node so the proxy path is exercised.
    let owner = Ring::new(2).append_owner("covid", "covid") as usize;
    let front = 1 - owner;
    let delta = pi2_workloads::catalog()
        .table("covid")
        .expect("covid registered")
        .table
        .slice_rows(0, 1);
    let body = request_to_json(&Request::Append {
        workload: "covid".into(),
        table: "covid".into(),
        rows: delta,
    });

    let mut f = Http1Client::connect(fleet.http[front]).unwrap();
    let proxied_before = cluster_counter(&mut f, "proxiedDispatches");
    let resp = f.post("/v1", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"type\":\"appended\""), "{}", resp.body);
    assert!(resp.body.contains("\"epoch\":1"), "{}", resp.body);
    assert!(
        cluster_counter(&mut f, "proxiedDispatches") > proxied_before,
        "the non-owner must forward appends to the owner"
    );

    // The owner committed synchronously before answering; the broadcast
    // back to the front node is one-way and asynchronous — poll briefly.
    let mut o = Http1Client::connect(fleet.http[owner]).unwrap();
    assert_eq!(live_counter(&mut o, "appendRows"), 1);
    assert_eq!(live_counter(&mut o, "epochBumps"), 1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while live_counter(&mut f, "appendRows") < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "replica never applied the broadcast append"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(live_counter(&mut f, "epochBumps"), 1);
}

#[test]
fn three_process_fleet_shares_caches_proxies_and_survives_a_kill() {
    let mut fleet = boot_fleet(3);
    let (addr_a, addr_b) = (fleet.http[0], fleet.http[1]);
    let events = covid_events();

    // Give registration-time breaker trips time to cool down (peers
    // come up in sequence, so early cross-node dials may have failed).
    std::thread::sleep(Duration::from_millis(700));

    // --- negotiate advertises the fleet -------------------------------
    let mut a = Http1Client::connect(addr_a).unwrap();
    let resp = a.post("/v1", "{\"v\":2,\"type\":\"negotiate\"}").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let caps = Json::parse(&resp.body)
        .unwrap()
        .get("capabilities")
        .cloned()
        .expect("negotiate has capabilities");
    assert_eq!(caps.get("cluster").and_then(Json::as_bool), Some(true));

    // --- proxied dispatch is byte-identical to owner-local ------------
    // Both sessions are owned by node B; s1 is driven through B itself,
    // s2 through A (which must forward every event to B). The patch
    // bodies carry no session id, so the responses must match exactly.
    let mut b = Http1Client::connect(addr_b).unwrap();
    let s1 = open_session(&mut b, "covid");
    let s2 = open_session(&mut b, "covid");
    assert_eq!(s1 >> 48, 1, "node B stamps its ring index into ids");
    assert_eq!(s2 >> 48, 1);
    let proxied_before = cluster_counter(&mut a, "proxiedDispatches");
    for event in &events {
        let direct = dispatch(&mut b, s1, event);
        let proxied = dispatch(&mut a, s2, event);
        assert_eq!(proxied, direct, "proxy must relay the owner verbatim");
    }
    let proxied_after = cluster_counter(&mut a, "proxiedDispatches");
    assert!(
        proxied_after - proxied_before >= events.len() as i64,
        "every event through A was a proxy ({proxied_before} -> {proxied_after})"
    );

    // --- warm cross-node hits: computed on B, served to A -------------
    // B's dispatches above computed the event-state results; the ring
    // owners now hold them. A's *own* session dispatching the same
    // events misses locally and reads through to the owners.
    let s3 = open_session(&mut a, "covid");
    assert_eq!(s3 >> 48, 0, "node A stamps its ring index into ids");
    for event in &events {
        let (status, body) = dispatch(&mut a, s3, event);
        assert_eq!(status, 200, "{body}");
    }
    let hits = cluster_counter(&mut a, "clusterHits");
    assert!(hits > 0, "A must serve some results computed on B");

    // --- kill a peer: local fallback, zero client-visible errors ------
    fleet.nodes[2].kill().unwrap();
    fleet.nodes[2].wait().unwrap();
    let s4 = open_session(&mut a, "covid");
    // A fresh session replaying the events in reverse order walks new
    // cumulative states, forcing fresh lookups (some owned by dead C).
    for event in events.iter().rev() {
        let (status, body) = dispatch(&mut a, s4, event);
        assert_eq!(status, 200, "killed peer must not surface: {body}");
    }
    // Proxying to the dead owner is the one path that *requires* C: it
    // answers the structured 503 rather than hanging or guessing.
    let fake_c_session = (2u64 << 48) | 12345;
    let (status, body) = dispatch(&mut a, fake_c_session, &Event::Clear { interaction: 0 });
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"code\":\"peer_unavailable\""), "{body}");
    let timeouts = cluster_counter(&mut a, "peerTimeouts");
    assert!(timeouts > 0, "failed dials to C must be counted");
}
