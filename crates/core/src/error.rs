//! Top-level error type.

use std::fmt;

/// Errors surfaced by the end-to-end API.
#[derive(Debug, Clone, PartialEq)]
pub enum Pi2Error {
    /// A query failed to parse.
    Parse(String),
    /// No input queries were provided.
    EmptyWorkload,
    /// The search could not produce a mappable interface.
    NoInterface,
    /// Runtime interaction errors (bad event payloads etc.).
    Runtime(String),
    /// Query execution failed.
    Execution(String),
}

impl fmt::Display for Pi2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pi2Error::Parse(m) => write!(f, "parse error: {m}"),
            Pi2Error::EmptyWorkload => write!(f, "no input queries"),
            Pi2Error::NoInterface => write!(f, "no valid interface mapping found"),
            Pi2Error::Runtime(m) => write!(f, "runtime error: {m}"),
            Pi2Error::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for Pi2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Pi2Error::Parse("x".into()).to_string().contains("parse"));
        assert!(Pi2Error::EmptyWorkload.to_string().contains("queries"));
        assert!(Pi2Error::NoInterface.to_string().contains("interface"));
    }
}
