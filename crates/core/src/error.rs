//! Top-level error type.
//!
//! Dispatch errors are *structured* (not stringly) so the session service
//! can map them to stable wire-protocol error codes ([`Pi2Error::code`])
//! without parsing messages.

use std::fmt;

/// Errors surfaced by the end-to-end API.
#[derive(Debug, Clone, PartialEq)]
pub enum Pi2Error {
    /// A query failed to parse.
    Parse(String),
    /// No input queries were provided.
    EmptyWorkload,
    /// The search could not produce a mappable interface.
    NoInterface,
    /// An event referenced an interaction index the interface doesn't have.
    UnknownInteraction {
        /// The out-of-range interaction index the event carried.
        interaction: usize,
    },
    /// An interaction's target node no longer exists in the forest (the
    /// interface and the forest disagree — a stale generation artifact).
    StaleNode,
    /// An event was well-addressed but its payload cannot apply: wrong
    /// payload shape for the target, an out-of-range option, a value that
    /// is not expressible, or a rebinding that resolves to an invalid
    /// query. The state is left unchanged.
    InvalidEvent {
        /// Why the event was rejected.
        reason: String,
    },
    /// A session or protocol request referenced a workload name the
    /// service has no registration for.
    UnknownWorkload(String),
    /// A protocol request referenced a wire-session id the service does
    /// not hold (never opened, or already closed).
    UnknownSession(u64),
    /// A protocol message failed to parse or violated the versioned spec.
    Protocol(String),
    /// Other runtime failures (e.g. a generation whose forest no longer
    /// expresses its workload).
    Runtime(String),
    /// Query execution failed.
    Execution(String),
}

impl Pi2Error {
    /// Shorthand for an [`Pi2Error::InvalidEvent`].
    pub fn invalid(reason: impl Into<String>) -> Pi2Error {
        Pi2Error::InvalidEvent {
            reason: reason.into(),
        }
    }

    /// The stable wire-protocol error code of this error (see the protocol
    /// spec in README.md): front-ends switch on this, never on messages.
    pub fn code(&self) -> &'static str {
        match self {
            Pi2Error::Parse(_) => "parse",
            Pi2Error::EmptyWorkload => "empty_workload",
            Pi2Error::NoInterface => "no_interface",
            Pi2Error::UnknownInteraction { .. } => "unknown_interaction",
            Pi2Error::StaleNode => "stale_node",
            Pi2Error::InvalidEvent { .. } => "invalid_event",
            Pi2Error::UnknownWorkload(_) => "unknown_workload",
            Pi2Error::UnknownSession(_) => "unknown_session",
            Pi2Error::Protocol(_) => "protocol",
            Pi2Error::Runtime(_) => "runtime",
            Pi2Error::Execution(_) => "execution",
        }
    }
}

impl fmt::Display for Pi2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pi2Error::Parse(m) => write!(f, "parse error: {m}"),
            Pi2Error::EmptyWorkload => write!(f, "no input queries"),
            Pi2Error::NoInterface => write!(f, "no valid interface mapping found"),
            Pi2Error::UnknownInteraction { interaction } => {
                write!(f, "no interaction #{interaction}")
            }
            Pi2Error::StaleNode => write!(f, "stale target node"),
            Pi2Error::InvalidEvent { reason } => write!(f, "invalid event: {reason}"),
            Pi2Error::UnknownWorkload(name) => write!(f, "unknown workload '{name}'"),
            Pi2Error::UnknownSession(id) => write!(f, "unknown session #{id}"),
            Pi2Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Pi2Error::Runtime(m) => write!(f, "runtime error: {m}"),
            Pi2Error::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for Pi2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Pi2Error::Parse("x".into()).to_string().contains("parse"));
        assert!(Pi2Error::EmptyWorkload.to_string().contains("queries"));
        assert!(Pi2Error::NoInterface.to_string().contains("interface"));
        assert!(Pi2Error::UnknownInteraction { interaction: 7 }
            .to_string()
            .contains("#7"));
        assert!(Pi2Error::invalid("bad payload")
            .to_string()
            .contains("bad payload"));
        assert!(Pi2Error::UnknownWorkload("covid".into())
            .to_string()
            .contains("covid"));
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let errors = [
            Pi2Error::Parse("x".into()),
            Pi2Error::EmptyWorkload,
            Pi2Error::NoInterface,
            Pi2Error::UnknownInteraction { interaction: 0 },
            Pi2Error::StaleNode,
            Pi2Error::invalid("r"),
            Pi2Error::UnknownWorkload("w".into()),
            Pi2Error::UnknownSession(1),
            Pi2Error::Protocol("p".into()),
            Pi2Error::Runtime("r".into()),
            Pi2Error::Execution("e".into()),
        ];
        let codes: std::collections::HashSet<&str> = errors.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errors.len(), "codes must be distinct");
        assert_eq!(Pi2Error::StaleNode.code(), "stale_node");
    }
}
