//! Top-level error type.
//!
//! Dispatch errors are *structured* (not stringly) so the session service
//! can map them to stable wire-protocol error codes ([`Pi2Error::code`])
//! without parsing messages.

use std::fmt;

/// Errors surfaced by the end-to-end API.
#[derive(Debug, Clone, PartialEq)]
pub enum Pi2Error {
    /// A query failed to parse.
    Parse(String),
    /// No input queries were provided.
    EmptyWorkload,
    /// The search could not produce a mappable interface.
    NoInterface,
    /// An event referenced an interaction index the interface doesn't have.
    UnknownInteraction {
        /// The out-of-range interaction index the event carried.
        interaction: usize,
    },
    /// An interaction's target node no longer exists in the forest (the
    /// interface and the forest disagree — a stale generation artifact).
    StaleNode,
    /// An event was well-addressed but its payload cannot apply: wrong
    /// payload shape for the target, an out-of-range option, a value that
    /// is not expressible, or a rebinding that resolves to an invalid
    /// query. The state is left unchanged.
    InvalidEvent {
        /// Why the event was rejected.
        reason: String,
    },
    /// A session or protocol request referenced a workload name the
    /// service has no registration for.
    UnknownWorkload(String),
    /// A protocol request referenced a wire-session id the service does
    /// not hold (never opened, or already closed).
    UnknownSession(u64),
    /// A protocol message failed to parse or violated the versioned spec.
    Protocol(String),
    /// The server refused an event because the target session's mailbox
    /// is full: the client is producing events faster than the session
    /// dispatches them. Retry after draining in-flight responses.
    Backpressure {
        /// The wire session whose mailbox was full.
        session: u64,
    },
    /// The server refused new work entirely: over the connection admission
    /// limit, or draining for shutdown.
    Overloaded(String),
    /// Other runtime failures (e.g. a generation whose forest no longer
    /// expresses its workload).
    Runtime(String),
    /// Query execution failed.
    Execution(String),
    /// A live-data append was rejected by the catalogue: unknown table,
    /// arity mismatch, or rows the target schema cannot hold. The
    /// catalogue version is unchanged.
    Append(String),
    /// A cluster peer that a request *requires* (the owner of a proxied
    /// session) could not be reached: connection refused, timed out, or
    /// its circuit breaker is open. Shared-cache misses never surface
    /// this — they fall back to local computation.
    PeerUnavailable(String),
    /// The request addressed a session another node owns; retry against
    /// that node. The status is a 307-style redirect hint, not a failure.
    WrongShard {
        /// Ring index of the owning node.
        owner: u16,
    },
}

impl Pi2Error {
    /// Shorthand for an [`Pi2Error::InvalidEvent`].
    pub fn invalid(reason: impl Into<String>) -> Pi2Error {
        Pi2Error::InvalidEvent {
            reason: reason.into(),
        }
    }

    /// The stable wire-protocol error code of this error (see the protocol
    /// spec in README.md): front-ends switch on this, never on messages.
    pub fn code(&self) -> &'static str {
        match self {
            Pi2Error::Parse(_) => "parse",
            Pi2Error::EmptyWorkload => "empty_workload",
            Pi2Error::NoInterface => "no_interface",
            Pi2Error::UnknownInteraction { .. } => "unknown_interaction",
            Pi2Error::StaleNode => "stale_node",
            Pi2Error::InvalidEvent { .. } => "invalid_event",
            Pi2Error::UnknownWorkload(_) => "unknown_workload",
            Pi2Error::UnknownSession(_) => "unknown_session",
            Pi2Error::Protocol(_) => "protocol",
            Pi2Error::Backpressure { .. } => "backpressure",
            Pi2Error::Overloaded(_) => "overloaded",
            Pi2Error::Runtime(_) => "runtime",
            Pi2Error::Execution(_) => "execution",
            Pi2Error::Append(_) => "append",
            Pi2Error::PeerUnavailable(_) => "peer_unavailable",
            Pi2Error::WrongShard { .. } => "wrong_shard",
        }
    }

    /// The HTTP status an HTTP transport reports this error under. The
    /// mapping is *total* — every variant has a pinned status (see the
    /// table-driven `codes_statuses_are_total_and_pinned` test), so
    /// transport and in-process callers classify failures identically:
    /// the wire code ([`Pi2Error::code`]) is the contract, the status is
    /// its HTTP projection.
    pub fn http_status(&self) -> u16 {
        match self {
            // The request itself was malformed.
            Pi2Error::Parse(_) | Pi2Error::EmptyWorkload | Pi2Error::Protocol(_) => 400,
            // The addressed resource does not exist.
            Pi2Error::UnknownWorkload(_) | Pi2Error::UnknownSession(_) => 404,
            // The interface and forest disagree: a stale artifact.
            Pi2Error::StaleNode => 409,
            // Well-formed but semantically unservable.
            Pi2Error::NoInterface
            | Pi2Error::UnknownInteraction { .. }
            | Pi2Error::InvalidEvent { .. }
            | Pi2Error::Append(_) => 422,
            Pi2Error::Backpressure { .. } => 429,
            Pi2Error::Runtime(_) | Pi2Error::Execution(_) => 500,
            Pi2Error::Overloaded(_) | Pi2Error::PeerUnavailable(_) => 503,
            // A redirect hint: the session lives on another node.
            Pi2Error::WrongShard { .. } => 307,
        }
    }
}

impl fmt::Display for Pi2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pi2Error::Parse(m) => write!(f, "parse error: {m}"),
            Pi2Error::EmptyWorkload => write!(f, "no input queries"),
            Pi2Error::NoInterface => write!(f, "no valid interface mapping found"),
            Pi2Error::UnknownInteraction { interaction } => {
                write!(f, "no interaction #{interaction}")
            }
            Pi2Error::StaleNode => write!(f, "stale target node"),
            Pi2Error::InvalidEvent { reason } => write!(f, "invalid event: {reason}"),
            Pi2Error::UnknownWorkload(name) => write!(f, "unknown workload '{name}'"),
            Pi2Error::UnknownSession(id) => write!(f, "unknown session #{id}"),
            Pi2Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Pi2Error::Backpressure { session } => {
                write!(
                    f,
                    "session #{session} mailbox is full; retry after draining"
                )
            }
            Pi2Error::Overloaded(m) => write!(f, "server overloaded: {m}"),
            Pi2Error::Runtime(m) => write!(f, "runtime error: {m}"),
            Pi2Error::Execution(m) => write!(f, "execution error: {m}"),
            Pi2Error::Append(m) => write!(f, "append rejected: {m}"),
            Pi2Error::PeerUnavailable(m) => write!(f, "cluster peer unavailable: {m}"),
            Pi2Error::WrongShard { owner } => {
                write!(f, "session is owned by node #{owner}; retry there")
            }
        }
    }
}

impl std::error::Error for Pi2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Pi2Error::Parse("x".into()).to_string().contains("parse"));
        assert!(Pi2Error::EmptyWorkload.to_string().contains("queries"));
        assert!(Pi2Error::NoInterface.to_string().contains("interface"));
        assert!(Pi2Error::UnknownInteraction { interaction: 7 }
            .to_string()
            .contains("#7"));
        assert!(Pi2Error::invalid("bad payload")
            .to_string()
            .contains("bad payload"));
        assert!(Pi2Error::UnknownWorkload("covid".into())
            .to_string()
            .contains("covid"));
    }

    /// One sample of every variant with its pinned wire code and HTTP
    /// status. `code()`/`http_status()` match without a wildcard arm, so a
    /// new variant fails to compile until it is mapped — extend THIS table
    /// in the same change, never renumber an existing row: both columns
    /// are frozen protocol surface.
    fn wire_table() -> Vec<(Pi2Error, &'static str, u16)> {
        vec![
            (Pi2Error::Parse("x".into()), "parse", 400),
            (Pi2Error::EmptyWorkload, "empty_workload", 400),
            (Pi2Error::NoInterface, "no_interface", 422),
            (
                Pi2Error::UnknownInteraction { interaction: 0 },
                "unknown_interaction",
                422,
            ),
            (Pi2Error::StaleNode, "stale_node", 409),
            (Pi2Error::invalid("r"), "invalid_event", 422),
            (
                Pi2Error::UnknownWorkload("w".into()),
                "unknown_workload",
                404,
            ),
            (Pi2Error::UnknownSession(1), "unknown_session", 404),
            (Pi2Error::Protocol("p".into()), "protocol", 400),
            (Pi2Error::Backpressure { session: 3 }, "backpressure", 429),
            (Pi2Error::Overloaded("o".into()), "overloaded", 503),
            (Pi2Error::Runtime("r".into()), "runtime", 500),
            (Pi2Error::Execution("e".into()), "execution", 500),
            (Pi2Error::Append("no such table".into()), "append", 422),
            (
                Pi2Error::PeerUnavailable("node 2".into()),
                "peer_unavailable",
                503,
            ),
            (Pi2Error::WrongShard { owner: 2 }, "wrong_shard", 307),
        ]
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let table = wire_table();
        let codes: std::collections::HashSet<&str> =
            table.iter().map(|(e, _, _)| e.code()).collect();
        assert_eq!(codes.len(), table.len(), "codes must be distinct");
        assert_eq!(Pi2Error::StaleNode.code(), "stale_node");
    }

    #[test]
    fn codes_statuses_are_total_and_pinned() {
        for (error, code, status) in wire_table() {
            assert_eq!(error.code(), code, "{error:?}");
            assert_eq!(error.http_status(), status, "{error:?}");
        }
        // Every status the table uses must be a real, intentional class.
        for (error, _, status) in wire_table() {
            assert!(
                matches!(status, 307 | 400 | 404 | 409 | 422 | 429 | 500 | 503),
                "{error:?} maps to unexpected status {status}"
            );
        }
    }
}
