//! The end-to-end generation pipeline (paper Figure 6).

use crate::error::Pi2Error;
use crate::service::Session;
use pi2_data::{Catalog, LiveCatalog};
use pi2_difftree::{Forest, Workload};
use pi2_interface::{InteractionChoice, Interface, MappingContext};
use pi2_search::{best_interface, mcts_search, MappingOptions, MctsConfig, SearchStats};
use pi2_sql::parse_query;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for one generation run: the MCTS parameters (§6.2) and the
/// final mapping options (§6.2.2).
#[derive(Debug, Clone, Default)]
pub struct GenerationConfig {
    /// §6.2 search parameters (workers, budgets, UCT constants).
    pub mcts: MctsConfig,
    /// §6.2.2 final-mapping options (top-k, pruning, layout budget).
    pub mapping: MappingOptions,
}

impl GenerationConfig {
    /// A faster configuration for tests and examples: single worker, small
    /// iteration budget.
    pub fn quick() -> GenerationConfig {
        GenerationConfig {
            mcts: MctsConfig {
                workers: 1,
                max_iterations: 60,
                early_stop: 20,
                sync_interval: 5,
                ..MctsConfig::default()
            },
            mapping: MappingOptions::default(),
        }
    }

    /// Constrain the interface to a maximum screen size (§5's optional
    /// `CL` penalty): interfaces larger than `width × height` pixels pay
    /// `α · (overflow_w + overflow_h)` in both search and final mapping.
    pub fn with_max_size(mut self, width: f64, height: f64) -> GenerationConfig {
        self.mcts.params.max_size = Some((width, height));
        self.mapping.params.max_size = Some((width, height));
        self
    }
}

/// The PI2 system: a catalogue plus generation entry points.
pub struct Pi2 {
    /// The database catalogue queries are parsed and executed against.
    pub catalog: Catalog,
}

impl Pi2 {
    /// A PI2 instance over one catalogue.
    pub fn new(catalog: Catalog) -> Pi2 {
        Pi2 { catalog }
    }

    /// Generate with explicit configuration.
    pub fn generate_with(
        &self,
        sqls: &[&str],
        config: &GenerationConfig,
    ) -> Result<Generation, Pi2Error> {
        if sqls.is_empty() {
            return Err(Pi2Error::EmptyWorkload);
        }
        let queries = sqls
            .iter()
            .map(|s| parse_query(s).map_err(|e| Pi2Error::Parse(format!("{s}: {e}"))))
            .collect::<Result<Vec<_>, _>>()?;
        let workload = Workload::new(queries, self.catalog.clone());

        // 1. MCTS over Difftree structures.
        let (forest, mcts_stats) = mcts_search(&workload, &config.mcts);

        // 2. Final exhaustive V/M mapping + layout optimisation on the best
        //    state (with a fallback to the initial state if mapping fails).
        let t0 = Instant::now();
        let mapped = map_state(&forest, &workload, config)
            .or_else(|| {
                let initial = Forest::from_workload(&workload);
                map_state(&initial, &workload, config)
            })
            .ok_or(Pi2Error::NoInterface)?;
        let mapping_time = t0.elapsed();
        let (interface, cost) = mapped;

        let live = Arc::new(LiveCatalog::new(workload.catalog.clone()));
        Ok(Generation {
            interface: Arc::new(interface),
            cost,
            forest: Arc::new(forest),
            workload: Arc::new(workload),
            live,
            mcts_stats,
            mapping_time,
        })
    }
}

fn map_state(
    forest: &Forest,
    workload: &Workload,
    config: &GenerationConfig,
) -> Option<(Interface, f64)> {
    let mut ctx = MappingContext::build(forest, workload)?;
    ctx.check_safety = config.mcts.check_safety;
    best_interface(&ctx, &config.mapping)
}

/// The result of a generation run.
///
/// Cheaply shareable: the interface, forest, and workload live behind
/// `Arc`s, so cloning a generation (e.g. to open another [`Session`], or
/// to register it with a [`crate::Pi2Service`]) copies three pointers, not
/// the artifacts. Field access is unchanged — the `Arc`s deref.
#[derive(Debug, Clone)]
pub struct Generation {
    /// The generated interface `I = (V, M, L)` (shared).
    pub interface: Arc<Interface>,
    /// Full §5 cost of the returned interface.
    pub cost: f64,
    /// The Difftree state the interface was mapped from (shared).
    pub forest: Arc<Forest>,
    /// The parsed input queries plus catalogue (shared).
    pub workload: Arc<Workload>,
    /// The live (appendable) catalogue: starts at the workload's base
    /// catalogue and advances one epoch per append. Shared by every
    /// session over this generation — sessions fetch results against
    /// [`LiveCatalog::snapshot`], so an append is visible to all of them.
    pub live: Arc<LiveCatalog>,
    /// Search statistics (iterations, duration, best reward).
    pub mcts_stats: SearchStats,
    /// Wall-clock time of the final §6.2.2 mapping phase.
    pub mapping_time: Duration,
}

impl Generation {
    /// Total wall-clock generation time (search + mapping).
    pub fn total_time(&self) -> Duration {
        self.mcts_stats.duration + self.mapping_time
    }

    /// Open a delta-dispatch session over this (shared) generation.
    pub fn session(&self) -> Result<Session, Pi2Error> {
        Session::open(self)
    }

    /// A human-readable interface summary (views, interactions, layout).
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "interface: {} view(s), {} widget(s), {} visualization interaction(s), cost {:.1}",
            self.interface.views.len(),
            self.interface.widget_count(),
            self.interface.vis_interaction_count(),
            self.cost
        );
        let _ = writeln!(
            out,
            "generated in {:.2?} (search {:.2?} / {} iterations, mapping {:.2?})",
            self.total_time(),
            self.mcts_stats.duration,
            self.mcts_stats.iterations,
            self.mapping_time
        );
        let _ = write!(out, "{}", self.interface);
        out
    }

    /// Whether some interaction is a visualization interaction of the given
    /// kind (used by taxonomy tests).
    pub fn has_vis_interaction(&self, kind: pi2_interface::InteractionKind) -> bool {
        self.interface
            .interactions
            .iter()
            .any(|i| matches!(&i.choice, InteractionChoice::Vis { kind: k, .. } if *k == kind))
    }

    /// Whether some interaction is a widget of the given kind.
    pub fn has_widget(&self, kind: pi2_interface::WidgetKind) -> bool {
        self.interface
            .interactions
            .iter()
            .any(|i| matches!(&i.choice, InteractionChoice::Widget { kind: k, .. } if *k == kind))
    }

    /// Whether a visualization interaction on one view targets a *different*
    /// tree (multi-view linking, Figure 5).
    pub fn has_cross_view_link(&self) -> bool {
        self.interface.interactions.iter().any(|i| match &i.choice {
            InteractionChoice::Vis { view, .. } => {
                self.interface.views[*view].tree != i.target_tree
            }
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_data::{DataType, Table, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let rows: Vec<Vec<Value>> = (0..24)
            .map(|i| vec![Value::Int(i % 4), Value::Int(10 * (i % 6))])
            .collect();
        let t = Table::from_rows(vec![("a", DataType::Int), ("b", DataType::Int)], rows).unwrap();
        c.add_table("T", t, vec![]);
        c
    }

    #[test]
    fn end_to_end_generation() {
        let pi2 = Pi2::new(catalog());
        let g = pi2
            .generate_with(
                &[
                    "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
                    "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
                ],
                &GenerationConfig::quick(),
            )
            .unwrap();
        assert!(!g.interface.views.is_empty());
        assert!(g.cost.is_finite());
        // The interface must cover every choice node of the final forest.
        let total: usize = g.interface.interactions.iter().map(|i| i.cover.len()).sum();
        assert_eq!(total, g.forest.choice_count());
        let desc = g.describe();
        assert!(desc.contains("interface:"));
    }

    #[test]
    fn empty_workload_is_an_error() {
        let pi2 = Pi2::new(catalog());
        assert_eq!(
            pi2.generate_with(&[], &GenerationConfig::quick())
                .unwrap_err(),
            Pi2Error::EmptyWorkload
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        let pi2 = Pi2::new(catalog());
        let err = pi2
            .generate_with(&["SELECT FROM"], &GenerationConfig::quick())
            .unwrap_err();
        assert!(matches!(err, Pi2Error::Parse(_)));
    }

    #[test]
    fn max_size_penalty_is_plumbed_through() {
        let pi2 = Pi2::new(catalog());
        let tight = GenerationConfig::quick().with_max_size(200.0, 100.0);
        let g_tight = pi2
            .generate_with(
                &[
                    "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
                    "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
                ],
                &tight,
            )
            .unwrap();
        let g_free = pi2
            .generate_with(
                &[
                    "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
                    "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
                ],
                &GenerationConfig::quick(),
            )
            .unwrap();
        // Any interface overflows a 200×100 screen, so the constrained run
        // must carry a strictly higher cost.
        assert!(g_tight.cost > g_free.cost);
    }

    #[test]
    fn static_single_query_yields_static_chart() {
        let pi2 = Pi2::new(catalog());
        let g = pi2
            .generate_with(
                &["SELECT a, count(*) FROM T GROUP BY a"],
                &GenerationConfig::quick(),
            )
            .unwrap();
        assert_eq!(g.interface.views.len(), 1);
        assert!(g.interface.interactions.is_empty(), "static interface");
    }
}
