//! A compact JSON emitter for interface specifications.
//!
//! Deliberately dependency-free (≈150 lines instead of pulling in
//! `serde_json`, see DESIGN.md §2): interfaces serialise to a stable spec a
//! front-end could consume.

use pi2_interface::{InteractionChoice, Interface, WidgetDomain};
use std::fmt::Write;

/// Escape a string for JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Serialise an interface to a JSON specification.
pub fn interface_to_json(iface: &Interface) -> String {
    let mut out = String::new();
    out.push_str("{\"views\":[");
    for (i, v) in iface.views.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let assignments: Vec<String> = v
            .vis
            .assignments
            .iter()
            .map(|(c, var)| format!("{{\"column\":{c},\"channel\":\"{var}\"}}"))
            .collect();
        let bbox = iface.layout.vis_boxes.get(i).copied().unwrap_or_default();
        let _ = write!(
            out,
            "{{\"tree\":{},\"mark\":\"{}\",\"encoding\":[{}],\"box\":[{},{},{},{}]}}",
            v.tree,
            v.vis.kind,
            assignments.join(","),
            fmt_f64(bbox.x),
            fmt_f64(bbox.y),
            fmt_f64(bbox.w),
            fmt_f64(bbox.h),
        );
    }
    out.push_str("],\"interactions\":[");
    for (i, m) in iface.interactions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cover: Vec<String> = m.cover.iter().map(|c| c.to_string()).collect();
        match &m.choice {
            InteractionChoice::Widget {
                kind,
                domain,
                label,
            } => {
                let bbox = iface
                    .layout
                    .widget_boxes
                    .get(i)
                    .copied()
                    .unwrap_or_default();
                let domain_json = match domain {
                    WidgetDomain::Options(opts) => {
                        let opts: Vec<String> =
                            opts.iter().map(|o| format!("\"{}\"", escape(o))).collect();
                        format!("{{\"options\":[{}]}}", opts.join(","))
                    }
                    WidgetDomain::Range { min, max } => {
                        format!("{{\"min\":{},\"max\":{}}}", fmt_f64(*min), fmt_f64(*max))
                    }
                    WidgetDomain::Free => "{\"free\":true}".to_string(),
                    WidgetDomain::Binary => "{\"binary\":true}".to_string(),
                };
                let _ = write!(
                    out,
                    "{{\"type\":\"widget\",\"widget\":\"{}\",\"label\":\"{}\",\
                     \"domain\":{},\"tree\":{},\"node\":{},\"cover\":[{}],\
                     \"box\":[{},{},{},{}]}}",
                    kind,
                    escape(label),
                    domain_json,
                    m.target_tree,
                    m.target_node,
                    cover.join(","),
                    fmt_f64(bbox.x),
                    fmt_f64(bbox.y),
                    fmt_f64(bbox.w),
                    fmt_f64(bbox.h),
                );
            }
            InteractionChoice::Vis {
                view,
                kind,
                event_cols,
            } => {
                let cols: Vec<String> = event_cols.iter().map(|c| c.to_string()).collect();
                let _ = write!(
                    out,
                    "{{\"type\":\"vis\",\"interaction\":\"{}\",\"view\":{},\
                     \"eventColumns\":[{}],\"tree\":{},\"node\":{},\"cover\":[{}]}}",
                    kind,
                    view,
                    cols.join(","),
                    m.target_tree,
                    m.target_node,
                    cover.join(","),
                );
            }
        }
    }
    let _ = write!(
        out,
        "],\"size\":[{},{}]}}",
        fmt_f64(iface.layout.size.0),
        fmt_f64(iface.layout.size.1)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_interface::{
        InteractionInstance, LayoutNode, LayoutTree, Orientation, View, VisKind, VisMapping,
        WidgetKind,
    };

    fn sample() -> Interface {
        let interactions = vec![InteractionInstance {
            target_tree: 0,
            target_node: 7,
            cover: vec![7],
            extra_targets: vec![],
            choice: InteractionChoice::Widget {
                kind: WidgetKind::Radio,
                domain: WidgetDomain::Options(vec!["a \"x\"".into(), "b".into()]),
                label: "pick".into(),
            },
        }];
        let root = LayoutNode::Group {
            orientation: Orientation::Vertical,
            children: vec![
                LayoutNode::Vis {
                    view: 0,
                    size: (320.0, 240.0),
                },
                LayoutNode::Widget {
                    interaction: 0,
                    size: (100.0, 40.0),
                },
            ],
        };
        Interface {
            views: vec![View {
                tree: 0,
                vis: VisMapping {
                    kind: VisKind::Bar,
                    assignments: vec![(0, pi2_interface::VisVar::X)],
                },
            }],
            interactions,
            layout: LayoutTree::place(root, 1, 1),
        }
    }

    #[test]
    fn emits_valid_looking_json() {
        let j = interface_to_json(&sample());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"mark\":\"bar chart\""));
        assert!(j.contains("\"widget\":\"radio\""));
        assert!(j.contains("\\\"x\\\""), "quotes escaped: {j}");
        assert!(j.contains("\"cover\":[7]"));
        // Balanced braces and brackets.
        let braces =
            j.chars().filter(|&c| c == '{').count() - j.chars().filter(|&c| c == '}').count();
        assert_eq!(braces, 0);
        let brackets =
            j.chars().filter(|&c| c == '[').count() - j.chars().filter(|&c| c == ']').count();
        assert_eq!(brackets, 0);
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
