//! A compact, dependency-free JSON layer: the interface-spec emitter plus a
//! small parser.
//!
//! Deliberately dependency-free (≈350 lines instead of pulling in
//! `serde_json`, see README.md): interfaces and protocol messages serialise
//! to a stable spec a front-end can consume, and inbound protocol requests
//! parse into [`Json`] values. Numbers keep integer precision: a literal
//! without `.`/exponent that fits `i64` parses as [`Json::Int`], so table
//! cells and event payloads round-trip exactly.

use crate::error::Pi2Error;
use pi2_interface::{InteractionChoice, Interface, WidgetDomain};
use std::fmt::Write;

// One escaper serves the whole workspace: `pi2_data::wire` owns it (the
// columnar table encoding lives there), this module re-uses it.
pub(crate) use pi2_data::wire::json_escape as escape;

pub(crate) fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Parsed JSON values
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object fields keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional part that fits `i64` (exact).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs; duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, Pi2Error> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// The value of an object field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer content ([`Json::Int`] only — floats don't silently
    /// truncate).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Non-negative integer content.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as usize),
            _ => None,
        }
    }

    /// Numeric content (integers widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(v) => {
                if !v.is_finite() {
                    // JSON has no non-finite numbers; `null` keeps the
                    // emitted document parseable (protocol value encoding
                    // tags floats instead, so nothing is lost there).
                    write!(f, "null")
                } else if v.fract() == 0.0 {
                    // Keep the float type through a re-parse: "1" would
                    // come back as Int(1).
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> Pi2Error {
        Pi2Error::Protocol(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Pi2Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, Pi2Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, Pi2Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, Pi2Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Pi2Error> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if !fields.iter().any(|(k, _)| *k == key) {
                fields.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Pi2Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` always sits on a char
                    // boundary (the scanner only ever advances by whole
                    // chars or ASCII), so slicing the source &str here is
                    // valid — and decodes just the next scalar, not the
                    // whole remainder.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Pi2Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, Pi2Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

// ---------------------------------------------------------------------------
// Interface-spec emission (part of the versioned protocol: the `spec` body
// of `interface` responses — see README.md for the message envelope).
// ---------------------------------------------------------------------------

/// Serialise an interface to its JSON specification (the `spec` body of the
/// protocol's `interface` message; the `v`ersion lives on the envelope).
pub fn interface_to_json(iface: &Interface) -> String {
    let mut out = String::new();
    out.push_str("{\"views\":[");
    for (i, v) in iface.views.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let assignments: Vec<String> = v
            .vis
            .assignments
            .iter()
            .map(|(c, var)| format!("{{\"column\":{c},\"channel\":\"{var}\"}}"))
            .collect();
        let bbox = iface.layout.vis_boxes.get(i).copied().unwrap_or_default();
        let _ = write!(
            out,
            "{{\"tree\":{},\"mark\":\"{}\",\"encoding\":[{}],\"box\":[{},{},{},{}]}}",
            v.tree,
            v.vis.kind,
            assignments.join(","),
            fmt_f64(bbox.x),
            fmt_f64(bbox.y),
            fmt_f64(bbox.w),
            fmt_f64(bbox.h),
        );
    }
    out.push_str("],\"interactions\":[");
    for (i, m) in iface.interactions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cover: Vec<String> = m.cover.iter().map(|c| c.to_string()).collect();
        match &m.choice {
            InteractionChoice::Widget {
                kind,
                domain,
                label,
            } => {
                let bbox = iface
                    .layout
                    .widget_boxes
                    .get(i)
                    .copied()
                    .unwrap_or_default();
                let domain_json = match domain {
                    WidgetDomain::Options(opts) => {
                        let opts: Vec<String> =
                            opts.iter().map(|o| format!("\"{}\"", escape(o))).collect();
                        format!("{{\"options\":[{}]}}", opts.join(","))
                    }
                    WidgetDomain::Range { min, max } => {
                        format!("{{\"min\":{},\"max\":{}}}", fmt_f64(*min), fmt_f64(*max))
                    }
                    WidgetDomain::Free => "{\"free\":true}".to_string(),
                    WidgetDomain::Binary => "{\"binary\":true}".to_string(),
                };
                let _ = write!(
                    out,
                    "{{\"type\":\"widget\",\"widget\":\"{}\",\"label\":\"{}\",\
                     \"domain\":{},\"tree\":{},\"node\":{},\"cover\":[{}],\
                     \"box\":[{},{},{},{}]}}",
                    kind,
                    escape(label),
                    domain_json,
                    m.target_tree,
                    m.target_node,
                    cover.join(","),
                    fmt_f64(bbox.x),
                    fmt_f64(bbox.y),
                    fmt_f64(bbox.w),
                    fmt_f64(bbox.h),
                );
            }
            InteractionChoice::Vis {
                view,
                kind,
                event_cols,
            } => {
                let cols: Vec<String> = event_cols.iter().map(|c| c.to_string()).collect();
                let _ = write!(
                    out,
                    "{{\"type\":\"vis\",\"interaction\":\"{}\",\"view\":{},\
                     \"eventColumns\":[{}],\"tree\":{},\"node\":{},\"cover\":[{}]}}",
                    kind,
                    view,
                    cols.join(","),
                    m.target_tree,
                    m.target_node,
                    cover.join(","),
                );
            }
        }
    }
    let _ = write!(
        out,
        "],\"size\":[{},{}]}}",
        fmt_f64(iface.layout.size.0),
        fmt_f64(iface.layout.size.1)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_interface::{
        InteractionInstance, LayoutNode, LayoutTree, Orientation, View, VisKind, VisMapping,
        WidgetKind,
    };

    fn sample() -> Interface {
        let interactions = vec![InteractionInstance {
            target_tree: 0,
            target_node: 7,
            cover: vec![7],
            extra_targets: vec![],
            choice: InteractionChoice::Widget {
                kind: WidgetKind::Radio,
                domain: WidgetDomain::Options(vec!["a \"x\"".into(), "b".into()]),
                label: "pick".into(),
            },
        }];
        let root = LayoutNode::Group {
            orientation: Orientation::Vertical,
            children: vec![
                LayoutNode::Vis {
                    view: 0,
                    size: (320.0, 240.0),
                },
                LayoutNode::Widget {
                    interaction: 0,
                    size: (100.0, 40.0),
                },
            ],
        };
        Interface {
            views: vec![View {
                tree: 0,
                vis: VisMapping {
                    kind: VisKind::Bar,
                    assignments: vec![(0, pi2_interface::VisVar::X)],
                },
            }],
            interactions,
            layout: LayoutTree::place(root, 1, 1),
        }
    }

    #[test]
    fn emits_valid_looking_json() {
        let j = interface_to_json(&sample());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"mark\":\"bar chart\""));
        assert!(j.contains("\"widget\":\"radio\""));
        assert!(j.contains("\\\"x\\\""), "quotes escaped: {j}");
        assert!(j.contains("\"cover\":[7]"));
        // Balanced braces and brackets.
        let braces =
            j.chars().filter(|&c| c == '{').count() - j.chars().filter(|&c| c == '}').count();
        assert_eq!(braces, 0);
        let brackets =
            j.chars().filter(|&c| c == '[').count() - j.chars().filter(|&c| c == ']').count();
        assert_eq!(brackets, 0);
    }

    #[test]
    fn interface_spec_parses_with_own_parser() {
        let j = interface_to_json(&sample());
        let parsed = Json::parse(&j).expect("spec parses");
        let views = parsed.get("views").and_then(Json::as_arr).unwrap();
        assert_eq!(views.len(), 1);
        assert_eq!(
            views[0].get("mark").and_then(Json::as_str),
            Some("bar chart")
        );
        let interactions = parsed.get("interactions").and_then(Json::as_arr).unwrap();
        assert_eq!(
            interactions[0].get("widget").and_then(Json::as_str),
            Some("radio")
        );
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parser_round_trips_scalars() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "9007199254740993",
            "2.5",
            "-0.125",
            "\"hi \\\"there\\\"\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":{\"c\":[true,null]}}",
        ] {
            let v = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let emitted = v.to_string();
            let again = Json::parse(&emitted).unwrap();
            assert_eq!(v, again, "{text} → {emitted}");
        }
        // Integer precision beyond f64: stays exact.
        assert_eq!(
            Json::parse("9007199254740993").unwrap(),
            Json::Int(9007199254740993)
        );
    }

    #[test]
    fn display_preserves_float_typing() {
        assert_eq!(Json::Float(1.0).to_string(), "1.0");
        assert_eq!(
            Json::parse(&Json::Float(1.0).to_string()).unwrap(),
            Json::Float(1.0),
            "integral floats must re-parse as floats"
        );
        assert_eq!(Json::Float(2.5).to_string(), "2.5");
        // Non-finite floats cannot be JSON numbers; Display stays parseable.
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        assert_eq!(
            Json::parse("\"a\\u0041\\n\\t\\\\\"").unwrap(),
            Json::Str("aA\n\t\\".into())
        );
        // Surrogate pair → 🂡 (U+1F0A1).
        assert_eq!(
            Json::parse("\"\\ud83c\\udca1\"").unwrap(),
            Json::Str("\u{1F0A1}".into())
        );
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] x",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn duplicate_object_keys_keep_the_first() {
        let v = Json::parse("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Int(1)));
    }
}
