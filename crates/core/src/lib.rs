#![warn(missing_docs)]
//! # PI2: end-to-end interactive visualization interface generation from queries
//!
//! A Rust reproduction of *PI2: End-to-end Interactive Visualization
//! Interface Generation from Queries* (Chen & Wu, SIGMOD 2022). Given a
//! small sequence of example analysis queries, PI2 generates a fully
//! functional multi-view visual analysis interface: visualizations for each
//! query cluster, widgets and in-visualization interactions (pan, zoom,
//! brush, click) that transform the underlying queries, and a layout.
//!
//! ```no_run
//! use pi2::{Event, Pi2Service, GenerationConfig};
//! use pi2_data::Catalog;
//!
//! let catalog = Catalog::new(); // add tables first
//! let service = Pi2Service::new();
//! let generation = service
//!     .register(
//!         "cars",
//!         catalog,
//!         &[
//!             "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60",
//!             "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90",
//!         ],
//!         &GenerationConfig::default(),
//!     )
//!     .unwrap();
//! println!("{}", generation.describe());
//! // Drive the interface programmatically: dispatch returns a delta
//! // patch — only the views whose resolved query changed.
//! let mut session = service.open("cars").unwrap();
//! let _patch = session.dispatch(&Event::Select { interaction: 0, option: 1 });
//! ```
//!
//! The pipeline (paper Figure 6): parse queries into Difftrees
//! (`pi2-difftree`), search the space of Difftree structures with MCTS
//! (`pi2-search`), map the best structure to an interface — visualizations,
//! interactions, layout (`pi2-interface`) — and return the lowest-cost
//! interface under the §5 cost model.
//!
//! ## Serving many analysts: the session service
//!
//! The scalable surface is [`Pi2Service`]: register a workload once
//! (generation + cache pre-warm), then open any number of [`Session`]s
//! over the shared [`Generation`]. `Session::dispatch` returns a delta
//! [`Patch`] — only the views whose resolved query changed — and the
//! versioned JSON wire protocol in [`protocol`]
//! ([`Pi2Service::handle_json`]) lets any HTTP/WebSocket front-end drive
//! the system. (The pre-session `Pi2::generate`/`Runtime` shims are gone;
//! [`Pi2::generate_with`] remains the config-explicit pipeline entry for
//! callers that don't need a service.)
//!
//! The bundled HTTP front-end is [`server`] (the `pi2-server` crate):
//! [`serve`] boots a dependency-free concurrent HTTP/1.1 server — per-
//! session mailboxes keep one session's events ordered while sessions
//! dispatch in parallel, bounded queues answer `429 backpressure`, and an
//! admission gate answers `503 overloaded` — speaking the same protocol,
//! byte for byte, as the in-process entry point.

pub mod error;
pub mod generation;
pub mod json;
pub mod protocol;
pub mod push;
pub mod registry;
pub mod render;
pub mod runtime;
pub mod service;
pub mod serving;

pub use error::Pi2Error;
pub use generation::{Generation, GenerationConfig, Pi2};
pub use json::Json;
pub use protocol::{
    event_from_json, event_to_json, patch_from_json, patch_to_json, request_from_json,
    request_to_json, Request, PROTOCOL_VERSION, PROTOCOL_VERSION_V2,
};
pub use push::{PushHub, PushStats};
pub use registry::SessionRegistry;
pub use runtime::Event;
pub use service::ClusterStats;
pub use service::{
    AppendOutcome, Patch, PatchView, Pi2Service, ServiceMetrics, Session, WorkloadMetrics,
};
pub use serving::serve;

/// The HTTP transport layer (the `pi2-server` crate re-exported): the
/// concurrent wire-protocol server, its configuration, and the minimal
/// blocking client used by tests and the load generator. See
/// [`crate::serving`] for the glue that makes [`Pi2Service`] servable.
pub use pi2_server as server;

// Re-export the sub-crates' key types so downstream users need one import.
pub use pi2_data::memo;
pub use pi2_data::{Catalog, ColumnData, DataType, LiveCatalog, ShardedMemo, Table, Value};
pub use pi2_difftree::{Forest, Workload};
pub use pi2_engine::{engine_config, set_engine_config, EngineConfig};
pub use pi2_interface::{
    global_eval_cache, CacheStats, InteractionChoice, InteractionKind, Interface, VisKind,
    WidgetKind,
};
pub use pi2_search::{MctsConfig, SearchStats};
