//! The versioned two-way JSON wire protocol over the session service.
//!
//! Any HTTP/WebSocket front-end can drive the system through
//! [`Pi2Service::handle_json`]: requests decode into [`Event`]s and
//! service operations, responses encode [`Patch`]es (result tables
//! columnar-encoded via `pi2_data::wire`), interface specs
//! ([`crate::json::interface_to_json`]), errors (stable codes from
//! [`Pi2Error::code`]), and metrics. Every message carries the protocol
//! version in `"v"`; see README.md for the full spec with a worked
//! request/response example.
//!
//! The codec is *two-way* end to end — `Event → JSON → Event` and
//! `Patch → JSON → Patch` both round-trip exactly (pinned by the proptests
//! in `crates/core/tests/proptest_protocol.rs`), so the same module serves
//! the backend and a Rust client.

use crate::error::Pi2Error;
use crate::json::{escape, fmt_f64, interface_to_json, Json};
use crate::runtime::Event;
use crate::service::{Patch, PatchView, Pi2Service, ServiceMetrics, Session};
use pi2_data::date::{format_iso_date, parse_iso_date};
use pi2_data::wire::{dtype_from_name, table_to_json};
use pi2_data::{DataType, Table, Value};
use pi2_interface::Interface;
use pi2_server::PushLink;
use std::fmt::Write;
use std::sync::Arc;

/// The wire-protocol version of the core request/response message set
/// (`open`, `describe`, `event`, `close`, `metrics`, and their
/// responses).
pub const PROTOCOL_VERSION: i64 = 1;

/// The protocol version of the streaming extension: `subscribe` /
/// `unsubscribe` / `negotiate` requests and server-initiated pushed
/// patches. Each message *type* belongs to exactly one version — a v1
/// type sent with `"v":2` is a protocol error, and vice versa — so a v1
/// client can never observe v2 behaviour by accident.
pub const PROTOCOL_VERSION_V2: i64 = 2;

fn proto_err(msg: impl Into<String>) -> Pi2Error {
    Pi2Error::Protocol(msg.into())
}

/// Check a message's `"v"` field against [`PROTOCOL_VERSION`].
fn check_version(j: &Json) -> Result<(), Pi2Error> {
    match j.get("v") {
        None => Err(proto_err("missing protocol version field 'v'")),
        Some(v) if v.as_i64() == Some(PROTOCOL_VERSION) => Ok(()),
        Some(v) => Err(proto_err(format!(
            "unsupported protocol version {v} (this backend speaks {PROTOCOL_VERSION})"
        ))),
    }
}

/// Check a request's `"v"` field against the one version its type
/// belongs to.
fn check_request_version(j: &Json, ty: &str, want: i64) -> Result<(), Pi2Error> {
    match j.get("v").map(Json::as_i64) {
        None => Err(proto_err("missing protocol version field 'v'")),
        Some(Some(got)) if got == want => Ok(()),
        Some(Some(got)) if got == PROTOCOL_VERSION || got == PROTOCOL_VERSION_V2 => Err(proto_err(
            format!("message type {ty:?} is a protocol v{want} message (got v={got})"),
        )),
        Some(_) => Err(proto_err(format!(
            "unsupported protocol version {} (this backend speaks \
             {PROTOCOL_VERSION} and {PROTOCOL_VERSION_V2})",
            j.get("v").expect("checked above")
        ))),
    }
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, Pi2Error> {
    j.get(key)
        .ok_or_else(|| proto_err(format!("missing field '{key}'")))
}

fn usize_field(j: &Json, key: &str) -> Result<usize, Pi2Error> {
    field(j, key)?
        .as_usize()
        .ok_or_else(|| proto_err(format!("field '{key}' must be a non-negative integer")))
}

// ---------------------------------------------------------------------------
// Scalar values (event payloads)
// ---------------------------------------------------------------------------

/// Encode one event-payload scalar. Integers, strings, booleans, and null
/// use the natural JSON scalar; floats and dates are tagged (`{"f":…}`,
/// `{"d":"YYYY-MM-DD"}`) so decoding never guesses a type.
fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                let _ = write!(out, "{{\"f\":{x}}}");
            } else if x.is_nan() {
                out.push_str("{\"f\":\"nan\"}");
            } else if *x > 0.0 {
                out.push_str("{\"f\":\"inf\"}");
            } else {
                out.push_str("{\"f\":\"-inf\"}");
            }
        }
        Value::Str(s) => {
            let _ = write!(out, "\"{}\"", escape(s));
        }
        Value::Date(d) => {
            let _ = write!(out, "{{\"d\":\"{}\"}}", format_iso_date(*d));
        }
    }
}

fn tagged_float(j: &Json) -> Result<f64, Pi2Error> {
    match j {
        Json::Str(s) => match s.as_str() {
            "nan" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            _ => Err(proto_err(format!("bad float tag value {s:?}"))),
        },
        _ => j.as_f64().ok_or_else(|| proto_err("bad float tag value")),
    }
}

/// Decode one event-payload scalar (inverse of [`push_value`]).
fn value_from_json(j: &Json) -> Result<Value, Pi2Error> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(x) => Ok(Value::Float(*x)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Obj(_) => {
            if let Some(f) = j.get("f") {
                Ok(Value::Float(tagged_float(f)?))
            } else if let Some(d) = j.get("d") {
                let s = d
                    .as_str()
                    .ok_or_else(|| proto_err("'d' must be a string"))?;
                parse_iso_date(s)
                    .map(Value::Date)
                    .ok_or_else(|| proto_err(format!("bad date {s:?}")))
            } else if let Some(i) = j.get("i") {
                i.as_i64()
                    .map(Value::Int)
                    .ok_or_else(|| proto_err("'i' must be an integer"))
            } else if let Some(s) = j.get("s") {
                s.as_str()
                    .map(|s| Value::Str(s.to_string()))
                    .ok_or_else(|| proto_err("'s' must be a string"))
            } else if let Some(b) = j.get("b") {
                b.as_bool()
                    .map(Value::Bool)
                    .ok_or_else(|| proto_err("'b' must be a boolean"))
            } else {
                Err(proto_err("unknown value tag"))
            }
        }
        Json::Arr(_) => Err(proto_err("a scalar value cannot be an array")),
    }
}

fn push_values(out: &mut String, values: &[Value]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_value(out, v);
    }
    out.push(']');
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Encode an event as a versioned `event` message (no session id — the
/// request envelope adds one; see [`request_to_json`]).
pub fn event_to_json(event: &Event) -> String {
    let mut out = format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"event\"");
    let _ = write!(out, ",\"interaction\":{}", event.interaction());
    match event {
        Event::Select { option, .. } => {
            let _ = write!(out, ",\"kind\":\"select\",\"option\":{option}");
        }
        Event::Toggle { on, .. } => {
            let _ = write!(out, ",\"kind\":\"toggle\",\"on\":{on}");
        }
        Event::SetValues { values, .. } => {
            out.push_str(",\"kind\":\"set_values\",\"values\":");
            push_values(&mut out, values);
        }
        Event::SetSet { values, .. } => {
            out.push_str(",\"kind\":\"set_set\",\"values\":");
            push_values(&mut out, values);
        }
        Event::SelectMany { options, .. } => {
            let opts: Vec<String> = options.iter().map(|o| o.to_string()).collect();
            let _ = write!(
                out,
                ",\"kind\":\"select_many\",\"options\":[{}]",
                opts.join(",")
            );
        }
        Event::Clear { .. } => {
            out.push_str(",\"kind\":\"clear\"");
        }
    }
    out.push('}');
    out
}

/// Decode an event from a parsed message body (the envelope's `v`/`type`
/// are the caller's concern).
fn event_from_value(j: &Json) -> Result<Event, Pi2Error> {
    let interaction = usize_field(j, "interaction")?;
    let kind = field(j, "kind")?
        .as_str()
        .ok_or_else(|| proto_err("field 'kind' must be a string"))?;
    let values_of = |key: &str| -> Result<Vec<Value>, Pi2Error> {
        field(j, key)?
            .as_arr()
            .ok_or_else(|| proto_err(format!("field '{key}' must be an array")))?
            .iter()
            .map(value_from_json)
            .collect()
    };
    match kind {
        "select" => Ok(Event::Select {
            interaction,
            option: usize_field(j, "option")?,
        }),
        "toggle" => Ok(Event::Toggle {
            interaction,
            on: field(j, "on")?
                .as_bool()
                .ok_or_else(|| proto_err("field 'on' must be a boolean"))?,
        }),
        "set_values" => Ok(Event::SetValues {
            interaction,
            values: values_of("values")?,
        }),
        "set_set" => Ok(Event::SetSet {
            interaction,
            values: values_of("values")?,
        }),
        "select_many" => {
            let options = field(j, "options")?
                .as_arr()
                .ok_or_else(|| proto_err("field 'options' must be an array"))?
                .iter()
                .map(|o| {
                    o.as_usize()
                        .ok_or_else(|| proto_err("options must be non-negative integers"))
                })
                .collect::<Result<Vec<usize>, _>>()?;
            Ok(Event::SelectMany {
                interaction,
                options,
            })
        }
        "clear" => Ok(Event::Clear { interaction }),
        other => Err(proto_err(format!("unknown event kind {other:?}"))),
    }
}

/// Decode a versioned `event` message.
pub fn event_from_json(text: &str) -> Result<Event, Pi2Error> {
    let j = Json::parse(text)?;
    check_version(&j)?;
    match j.get("type").and_then(Json::as_str) {
        Some("event") => event_from_value(&j),
        other => Err(proto_err(format!("expected type \"event\", got {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Patches and tables
// ---------------------------------------------------------------------------

fn push_patch_body(out: &mut String, patch: &Patch) {
    let _ = write!(out, "\"seq\":{},\"views\":[", patch.seq);
    for (i, pv) in patch.views.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"view\":{},\"tree\":{},\"sql\":\"{}\",\"table\":{}}}",
            pv.view,
            pv.tree,
            escape(&pv.sql),
            table_to_json(&pv.table)
        );
    }
    out.push(']');
}

/// Encode a patch as a versioned `patch` message.
pub fn patch_to_json(patch: &Patch) -> String {
    let mut out = format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"patch\",");
    push_patch_body(&mut out, patch);
    out.push('}');
    out
}

/// Decode a columnar-encoded table (the inverse of
/// `pi2_data::wire::table_to_json`). Each column carries either the plain
/// `"values"` array or the dictionary form `"dict"` + `"codes"`; the
/// latter rebuilds a dictionary-encoded column, so encode → decode →
/// encode is byte-identical for both forms.
pub fn table_from_json(j: &Json) -> Result<Table, Pi2Error> {
    use pi2_data::{Column, ColumnData, Schema};
    let rows = usize_field(j, "rows")?;
    let columns = field(j, "columns")?
        .as_arr()
        .ok_or_else(|| proto_err("field 'columns' must be an array"))?;
    let mut schema: Vec<Column> = Vec::with_capacity(columns.len());
    let mut data: Vec<ColumnData> = Vec::with_capacity(columns.len());
    for col in columns {
        let name = field(col, "name")?
            .as_str()
            .ok_or_else(|| proto_err("column 'name' must be a string"))?
            .to_string();
        let tname = field(col, "type")?
            .as_str()
            .ok_or_else(|| proto_err("column 'type' must be a string"))?;
        let dtype = dtype_from_name(tname)
            .ok_or_else(|| proto_err(format!("unknown column type {tname:?}")))?;
        let decoded = if let Some(dict) = col.get("dict") {
            if dtype != DataType::Str {
                return Err(proto_err(format!(
                    "column '{name}': dictionary encoding requires type \"str\", got {tname:?}"
                )));
            }
            let dict = dict
                .as_arr()
                .ok_or_else(|| proto_err("column 'dict' must be an array"))?
                .iter()
                .map(|d| {
                    d.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| proto_err("'dict' entries must be strings"))
                })
                .collect::<Result<Vec<String>, _>>()?;
            let codes = field(col, "codes")?
                .as_arr()
                .ok_or_else(|| proto_err("column 'codes' must be an array"))?;
            if codes.len() != rows {
                return Err(proto_err(format!(
                    "column '{name}' has {} codes, table declares {rows} rows",
                    codes.len()
                )));
            }
            let codes = codes
                .iter()
                .map(|c| match c {
                    Json::Null => Ok(None),
                    _ => c
                        .as_usize()
                        .and_then(|c| u32::try_from(c).ok())
                        .map(Some)
                        .ok_or_else(|| proto_err("'codes' entries must be u32 indices or null")),
                })
                .collect::<Result<Vec<Option<u32>>, _>>()?;
            ColumnData::dict_from_parts(dict, codes).ok_or_else(|| {
                proto_err(format!(
                    "column '{name}': bad dictionary (code out of range or duplicate entry)"
                ))
            })?
        } else {
            let values = field(col, "values")?
                .as_arr()
                .ok_or_else(|| proto_err("column 'values' must be an array"))?;
            if values.len() != rows {
                return Err(proto_err(format!(
                    "column '{name}' has {} values, table declares {rows} rows",
                    values.len()
                )));
            }
            // Replicate `Table::push_row`: start typed per the declared
            // dtype, demote to `Mixed` on the first mismatched cell.
            let mut out = ColumnData::new_typed(dtype);
            for v in values {
                out.push(cell_from_json(v, dtype)?);
            }
            out
        };
        schema.push(Column::new(name, dtype));
        data.push(decoded);
    }
    if schema.is_empty() {
        // A zero-column table still declares a row count.
        let mut t = Table::new(Schema::default());
        for _ in 0..rows {
            t.push_row(Vec::new())
                .map_err(|e| proto_err(format!("bad table: {e}")))?;
        }
        return Ok(t);
    }
    Table::from_columns(Schema::new(schema), data).map_err(|e| proto_err(format!("bad table: {e}")))
}

/// Decode one table cell under its column's declared type (the inverse of
/// the cell encoding in `pi2_data::wire`).
fn cell_from_json(j: &Json, dtype: DataType) -> Result<Value, Pi2Error> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => {
            if dtype == DataType::Float {
                Ok(Value::Float(*i as f64))
            } else {
                Ok(Value::Int(*i))
            }
        }
        Json::Float(x) => Ok(Value::Float(*x)),
        Json::Str(s) => {
            if dtype == DataType::Date {
                parse_iso_date(s)
                    .map(Value::Date)
                    .ok_or_else(|| proto_err(format!("bad date cell {s:?}")))
            } else {
                Ok(Value::Str(s.clone()))
            }
        }
        Json::Obj(_) => value_from_json(j),
        Json::Arr(_) => Err(proto_err("a table cell cannot be an array")),
    }
}

/// Decode a patch from a parsed message body.
fn patch_from_value(j: &Json) -> Result<Patch, Pi2Error> {
    let seq = field(j, "seq")?
        .as_i64()
        .filter(|s| *s >= 0)
        .ok_or_else(|| proto_err("field 'seq' must be a non-negative integer"))?
        as u64;
    let views = field(j, "views")?
        .as_arr()
        .ok_or_else(|| proto_err("field 'views' must be an array"))?
        .iter()
        .map(|pv| {
            Ok(PatchView {
                view: usize_field(pv, "view")?,
                tree: usize_field(pv, "tree")?,
                sql: field(pv, "sql")?
                    .as_str()
                    .ok_or_else(|| proto_err("field 'sql' must be a string"))?
                    .to_string(),
                table: Arc::new(table_from_json(field(pv, "table")?)?),
            })
        })
        .collect::<Result<Vec<PatchView>, Pi2Error>>()?;
    Ok(Patch { seq, views })
}

/// Decode a versioned `patch` message.
pub fn patch_from_json(text: &str) -> Result<Patch, Pi2Error> {
    let j = Json::parse(text)?;
    check_version(&j)?;
    match j.get("type").and_then(Json::as_str) {
        Some("patch") => patch_from_value(&j),
        other => Err(proto_err(format!("expected type \"patch\", got {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A decoded protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a wire session over a registered workload.
    Open {
        /// Registration name.
        workload: String,
    },
    /// Fetch the interface spec of a registered workload.
    Describe {
        /// Registration name.
        workload: String,
    },
    /// Dispatch an event on an open wire session.
    Event {
        /// Wire-session id from an `opened` response.
        session: u64,
        /// The event.
        event: Event,
    },
    /// Close a wire session.
    Close {
        /// Wire-session id.
        session: u64,
    },
    /// Fetch service metrics.
    Metrics,
    /// Subscribe a session's patch stream to the requesting connection
    /// (protocol v2; requires a push-capable transport — WebSocket).
    /// Events dispatched by *other* sessions sharing the workload channel
    /// replay on this session, and each resulting patch is pushed.
    Subscribe {
        /// Wire-session id to subscribe.
        session: u64,
    },
    /// Drop a subscription previously made over this connection
    /// (protocol v2).
    Unsubscribe {
        /// Wire-session id to unsubscribe.
        session: u64,
    },
    /// Ask which protocol versions and streaming features this backend
    /// (and this connection) supports (protocol v2).
    Negotiate,
    /// Append rows to a registered workload's live table (protocol v2).
    /// The rows travel in the same columnar table encoding patches use.
    /// On success the catalogue epoch advances and every subscriber of
    /// the workload channel is pushed a data patch covering the views the
    /// append affected.
    Append {
        /// Registration name.
        workload: String,
        /// Target table (case-insensitive, as registered).
        table: String,
        /// The rows to append, columnar-encoded.
        rows: Table,
    },
}

/// Encode a request (the client half of the two-way protocol).
pub fn request_to_json(request: &Request) -> String {
    match request {
        Request::Open { workload } => format!(
            "{{\"v\":{PROTOCOL_VERSION},\"type\":\"open\",\"workload\":\"{}\"}}",
            escape(workload)
        ),
        Request::Describe { workload } => format!(
            "{{\"v\":{PROTOCOL_VERSION},\"type\":\"describe\",\"workload\":\"{}\"}}",
            escape(workload)
        ),
        Request::Event { session, event } => {
            // Splice the session id into the event message's envelope.
            let body = event_to_json(event);
            let rest = body
                .strip_prefix(&format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"event\""))
                .expect("event_to_json envelope");
            format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"event\",\"session\":{session}{rest}")
        }
        Request::Close { session } => {
            format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"close\",\"session\":{session}}}")
        }
        Request::Metrics => format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"metrics\"}}"),
        Request::Subscribe { session } => {
            format!("{{\"v\":{PROTOCOL_VERSION_V2},\"type\":\"subscribe\",\"session\":{session}}}")
        }
        Request::Unsubscribe { session } => format!(
            "{{\"v\":{PROTOCOL_VERSION_V2},\"type\":\"unsubscribe\",\"session\":{session}}}"
        ),
        Request::Negotiate => format!("{{\"v\":{PROTOCOL_VERSION_V2},\"type\":\"negotiate\"}}"),
        Request::Append {
            workload,
            table,
            rows,
        } => format!(
            "{{\"v\":{PROTOCOL_VERSION_V2},\"type\":\"append\",\"workload\":\"{}\",\
             \"table\":\"{}\",\"rows\":{}}}",
            escape(workload),
            escape(table),
            table_to_json(rows)
        ),
    }
}

/// Decode a request (the backend half; [`Pi2Service::handle_json`] calls
/// this).
pub fn request_from_json(text: &str) -> Result<Request, Pi2Error> {
    let j = Json::parse(text)?;
    let workload_of = |j: &Json| -> Result<String, Pi2Error> {
        Ok(field(j, "workload")?
            .as_str()
            .ok_or_else(|| proto_err("field 'workload' must be a string"))?
            .to_string())
    };
    let session_of = |j: &Json| -> Result<u64, Pi2Error> {
        field(j, "session")?
            .as_i64()
            .filter(|s| *s >= 0)
            .map(|s| s as u64)
            .ok_or_else(|| proto_err("field 'session' must be a non-negative integer"))
    };
    // The version check is per *type*: every message type belongs to
    // exactly one protocol version (see [`PROTOCOL_VERSION_V2`]).
    let ty = field(&j, "type")?.as_str();
    let v1 = |ty: &str| check_request_version(&j, ty, PROTOCOL_VERSION);
    let v2 = |ty: &str| check_request_version(&j, ty, PROTOCOL_VERSION_V2);
    match ty {
        Some("open") => {
            v1("open")?;
            Ok(Request::Open {
                workload: workload_of(&j)?,
            })
        }
        Some("describe") => {
            v1("describe")?;
            Ok(Request::Describe {
                workload: workload_of(&j)?,
            })
        }
        Some("event") => {
            v1("event")?;
            Ok(Request::Event {
                session: session_of(&j)?,
                event: event_from_value(&j)?,
            })
        }
        Some("close") => {
            v1("close")?;
            Ok(Request::Close {
                session: session_of(&j)?,
            })
        }
        Some("metrics") => {
            v1("metrics")?;
            Ok(Request::Metrics)
        }
        Some("subscribe") => {
            v2("subscribe")?;
            Ok(Request::Subscribe {
                session: session_of(&j)?,
            })
        }
        Some("unsubscribe") => {
            v2("unsubscribe")?;
            Ok(Request::Unsubscribe {
                session: session_of(&j)?,
            })
        }
        Some("negotiate") => {
            v2("negotiate")?;
            Ok(Request::Negotiate)
        }
        Some("append") => {
            v2("append")?;
            Ok(Request::Append {
                workload: workload_of(&j)?,
                table: field(&j, "table")?
                    .as_str()
                    .ok_or_else(|| proto_err("field 'table' must be a string"))?
                    .to_string(),
                rows: table_from_json(field(&j, "rows")?)?,
            })
        }
        other => Err(proto_err(format!("unknown request type {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Encode an error as a versioned `error` response with its stable code.
pub fn error_to_json(error: &Pi2Error) -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"type\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
        error.code(),
        escape(&error.to_string())
    )
}

fn interface_response(workload: &str, interface: &Interface) -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"type\":\"interface\",\"workload\":\"{}\",\"spec\":{}}}",
        escape(workload),
        interface_to_json(interface)
    )
}

fn opened_response(id: u64, workload: &str, session: &Session, patch: &Patch) -> String {
    let mut out = format!(
        "{{\"v\":{PROTOCOL_VERSION},\"type\":\"opened\",\"session\":{id},\
         \"workload\":\"{}\",\"spec\":{},\"patch\":{{",
        escape(workload),
        interface_to_json(session.interface())
    );
    push_patch_body(&mut out, patch);
    out.push_str("}}");
    out
}

pub(crate) fn metrics_response(m: &ServiceMetrics) -> String {
    let mut out = format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"metrics\",\"workloads\":[");
    for (i, w) in m.workloads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"views\":{},\"interactions\":{},\"cost\":{},\
             \"searchIterations\":{},\"searchMillis\":{},\"warmedQueries\":{}}}",
            escape(&w.name),
            w.views,
            w.interactions,
            fmt_f64(w.cost),
            w.search.iterations,
            w.search.duration.as_millis(),
            w.warmed_queries,
        );
    }
    let _ = write!(
        out,
        "],\"sessionsOpened\":{},\"openWireSessions\":{},\
         \"resultCache\":{{\"hits\":{},\"misses\":{}}},\
         \"rewardTableEntries\":{},\"actionTableEntries\":{},\
         \"push\":{{\"subscriptions\":{},\"delivered\":{},\"evicted\":{}}}",
        m.sessions_opened,
        m.open_wire_sessions,
        m.result_cache.hits,
        m.result_cache.misses,
        m.reward_table_entries,
        m.action_table_entries,
        m.push.subscriptions,
        m.push.delivered,
        m.push.evicted,
    );
    let _ = write!(
        out,
        ",\"live\":{{\"appendRows\":{},\"epochBumps\":{},\"ivmHits\":{},\
         \"ivmFallbacks\":{},\"invalidatedViews\":{}}}",
        m.live.append_rows,
        m.live.epoch_bumps,
        m.live.ivm_hits,
        m.live.ivm_fallbacks,
        m.live.invalidated_views,
    );
    if let Some(c) = &m.cluster {
        let _ = write!(
            out,
            ",\"cluster\":{{\"node\":{},\"nodes\":{},\"clusterHits\":{},\
             \"clusterMisses\":{},\"peerTimeouts\":{},\"proxiedDispatches\":{}}}",
            c.node,
            c.nodes,
            c.cluster_hits,
            c.cluster_misses,
            c.peer_timeouts,
            c.proxied_dispatches,
        );
    }
    out.push('}');
    out
}

impl Pi2Service {
    /// Serve one JSON request (the wire entry point an HTTP/WebSocket
    /// front-end calls per message). Never panics on malformed input —
    /// every failure encodes as a versioned `error` response with a stable
    /// code.
    pub fn handle_json(&self, request: &str) -> String {
        match request_from_json(request).and_then(|r| self.handle_request(r)) {
            Ok(response) => response,
            Err(e) => error_to_json(&e),
        }
    }

    /// Serve one already-decoded request, returning the JSON response body
    /// or the structured error. This is the transport-agnostic core of
    /// [`Pi2Service::handle_json`]; the HTTP server (`pi2::server`) decodes
    /// on a worker and dispatches here — responses are byte-identical
    /// across both entry points by construction. Equivalent to
    /// [`Pi2Service::handle_request_link`] with no transport context, so
    /// v2 `subscribe` requests report the push-capability error.
    pub fn handle_request(&self, request: Request) -> Result<String, Pi2Error> {
        self.handle_request_link(request, None)
    }

    /// [`Pi2Service::handle_request`] with the transport context of the
    /// connection the request arrived on: `Some` for push-capable
    /// (WebSocket) connections, `None` for HTTP and in-process callers.
    /// The context gates the v2 subscription requests and tells
    /// `negotiate` whether pushes can actually be delivered.
    pub fn handle_request_link(
        &self,
        request: Request,
        link: Option<&PushLink>,
    ) -> Result<String, Pi2Error> {
        match request {
            Request::Open { workload } => {
                let (id, slot) = self.open_wire(&workload)?;
                let session = slot.lock();
                let patch = session.refresh()?;
                Ok(opened_response(id, &workload, &session, &patch))
            }
            Request::Describe { workload } => {
                let generation = self
                    .generation(&workload)
                    .ok_or_else(|| Pi2Error::UnknownWorkload(workload.clone()))?;
                Ok(interface_response(&workload, &generation.interface))
            }
            Request::Event { session, event } => {
                let slot = self
                    .wire_session(session)
                    .ok_or(Pi2Error::UnknownSession(session))?;
                let patch = slot.lock().dispatch(&event)?;
                // The originating dispatch succeeded: replay the event on
                // subscribed peers sharing the workload channel and push
                // each peer its own patch (their lock is released before
                // this; fan-out never nests session locks).
                self.fanout_event(session, &event);
                Ok(patch_to_json(&patch))
            }
            Request::Close { session } => {
                if self.close_wire(session) {
                    Ok(format!(
                        "{{\"v\":{PROTOCOL_VERSION},\"type\":\"closed\",\"session\":{session}}}"
                    ))
                } else {
                    Err(Pi2Error::UnknownSession(session))
                }
            }
            Request::Metrics => Ok(metrics_response(&self.metrics())),
            Request::Subscribe { session } => {
                let link = link.ok_or_else(|| {
                    proto_err("subscribe requires a push-capable (WebSocket) connection")
                })?;
                let slot = self
                    .wire_session(session)
                    .ok_or(Pi2Error::UnknownSession(session))?;
                // Snapshot the seq under the session lock so the client
                // knows exactly which state its push stream starts after.
                let seq = slot.lock().seq();
                if !self
                    .push_hub()
                    .subscribe(session, link.conn, Arc::clone(&link.sender))
                {
                    return Err(Pi2Error::UnknownSession(session));
                }
                Ok(format!(
                    "{{\"v\":{PROTOCOL_VERSION_V2},\"type\":\"subscribed\",\
                     \"session\":{session},\"seq\":{seq}}}"
                ))
            }
            Request::Unsubscribe { session } => {
                let link = link.ok_or_else(|| {
                    proto_err("unsubscribe requires a push-capable (WebSocket) connection")
                })?;
                if self.wire_session(session).is_none() {
                    return Err(Pi2Error::UnknownSession(session));
                }
                // Idempotent: unsubscribing a session that was never
                // subscribed (or subscribed elsewhere) is not an error.
                let dropped = self.push_hub().unsubscribe(session, link.conn);
                Ok(format!(
                    "{{\"v\":{PROTOCOL_VERSION_V2},\"type\":\"unsubscribed\",\
                     \"session\":{session},\"dropped\":{dropped}}}"
                ))
            }
            Request::Negotiate => {
                // The structured capability object replaces endpoint
                // probing: `versions` lists every protocol version this
                // server speaks, `ws_push` reports whether *this
                // connection* can deliver pushes, `cluster` whether the
                // process is part of a fleet, and `live` the append
                // endpoint plus the query shapes served incrementally.
                // The legacy top-level `push` flag is kept for v2 clients
                // that predate capabilities.
                Ok(format!(
                    "{{\"v\":{PROTOCOL_VERSION_V2},\"type\":\"protocols\",\
                     \"versions\":[{PROTOCOL_VERSION},{PROTOCOL_VERSION_V2}],\"push\":{push},\
                     \"capabilities\":{{\"versions\":[{PROTOCOL_VERSION},{PROTOCOL_VERSION_V2}],\
                     \"ws_push\":{push},\"cluster\":{cluster},\
                     \"live\":{{\"append\":true,\
                     \"ivm\":[\"filter\",\"group\",\"aggregate\",\"project\"]}}}}}}",
                    push = link.is_some(),
                    cluster = self.cluster_stats().is_some(),
                ))
            }
            Request::Append {
                workload,
                table,
                rows,
            } => {
                let outcome = self.append(&workload, &table, rows)?;
                // The append is committed: push every subscriber of the
                // workload channel its own data patch (the views whose
                // query references the appended table — untouched views
                // produce no entry).
                self.fanout_append(&workload, &outcome.table);
                Ok(format!(
                    "{{\"v\":{PROTOCOL_VERSION_V2},\"type\":\"appended\",\
                     \"workload\":\"{}\",\"table\":\"{}\",\"epoch\":{},\
                     \"rows\":{},\"totalRows\":{}}}",
                    escape(&workload),
                    escape(&outcome.table),
                    outcome.epoch,
                    outcome.rows,
                    outcome.total_rows,
                ))
            }
        }
    }

    /// Replay `event` on every subscribed peer of `origin`'s workload
    /// channel and push each peer its own resulting patch (or error) —
    /// exactly the bytes that peer's `handle_json` would return for the
    /// same event. The send happens under the peer's session lock, so
    /// push order matches that peer's sequence numbers.
    fn fanout_event(&self, origin: u64, event: &Event) {
        for (session, conn, sender) in self.push_hub().peers_of(origin) {
            let Some(slot) = self.wire_session(session) else {
                // Closed since the snapshot; drop the stale subscription.
                self.push_hub().drop_session(session);
                continue;
            };
            let mut peer = slot.lock();
            let body = match peer.dispatch(event) {
                Ok(patch) => patch_to_json(&patch),
                Err(e) => error_to_json(&e),
            };
            if sender(conn, body) {
                self.push_hub().note_delivered();
            } else {
                self.push_hub().evict(session, conn);
            }
        }
    }

    /// Push every subscriber of `workload`'s channel the data patch a
    /// committed append produced for *its own* session — exactly the bytes
    /// that session's next refresh would carry for the affected views.
    /// Sessions whose current queries don't reference the appended table
    /// get nothing (their patch would be empty).
    fn fanout_append(&self, workload: &str, table: &str) {
        for (session, conn, sender) in self.push_hub().subscribers_of(workload) {
            let Some(slot) = self.wire_session(session) else {
                self.push_hub().drop_session(session);
                continue;
            };
            let peer = slot.lock();
            let body = match peer.data_patch(table) {
                Ok(patch) if patch.is_empty() => continue,
                Ok(patch) => patch_to_json(&patch),
                Err(e) => error_to_json(&e),
            };
            if sender(conn, body) {
                self.push_hub().note_delivered();
            } else {
                self.push_hub().evict(session, conn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_codec_round_trips_every_kind() {
        let events = [
            Event::Select {
                interaction: 3,
                option: 1,
            },
            Event::Toggle {
                interaction: 0,
                on: true,
            },
            Event::SetValues {
                interaction: 2,
                values: vec![
                    Value::Int(7),
                    Value::Float(2.5),
                    Value::Str("CA".into()),
                    Value::Date(0),
                    Value::Bool(false),
                    Value::Null,
                ],
            },
            Event::SetSet {
                interaction: 1,
                values: vec![Value::Int(5), Value::Int(6)],
            },
            Event::SelectMany {
                interaction: 4,
                options: vec![0, 2, 3],
            },
            Event::Clear { interaction: 9 },
        ];
        for e in events {
            let json = event_to_json(&e);
            let back = event_from_json(&json).unwrap_or_else(|err| panic!("{json}: {err}"));
            assert_eq!(e, back, "{json}");
        }
    }

    #[test]
    fn version_mismatches_are_rejected() {
        assert!(
            event_from_json("{\"type\":\"event\",\"kind\":\"clear\",\"interaction\":0}")
                .unwrap_err()
                .to_string()
                .contains("version")
        );
        let wrong = "{\"v\":2,\"type\":\"event\",\"kind\":\"clear\",\"interaction\":0}";
        assert!(matches!(event_from_json(wrong), Err(Pi2Error::Protocol(_))));
    }

    #[test]
    fn request_codec_round_trips() {
        let requests = [
            Request::Open {
                workload: "covid".into(),
            },
            Request::Describe {
                workload: "a \"b\"".into(),
            },
            Request::Event {
                session: 12,
                event: Event::Select {
                    interaction: 0,
                    option: 2,
                },
            },
            Request::Close { session: 12 },
            Request::Metrics,
        ];
        for r in requests {
            let json = request_to_json(&r);
            let back = request_from_json(&json).unwrap_or_else(|err| panic!("{json}: {err}"));
            assert_eq!(r, back, "{json}");
        }
    }

    #[test]
    fn patch_codec_round_trips_tables() {
        let table = Table::from_rows(
            vec![
                ("a", DataType::Int),
                ("f", DataType::Float),
                ("s", DataType::Str),
                ("d", DataType::Date),
            ],
            vec![
                vec![
                    Value::Int(1),
                    Value::Float(0.5),
                    Value::Str("x".into()),
                    Value::Date(19000),
                ],
                vec![
                    Value::Null,
                    Value::Int(2),
                    Value::Null,
                    Value::Str("not a date".into()),
                ],
            ],
        )
        .unwrap();
        let patch = Patch {
            seq: 5,
            views: vec![PatchView {
                view: 0,
                tree: 0,
                sql: "SELECT \"a\" FROM T".into(),
                table: Arc::new(table),
            }],
        };
        let json = patch_to_json(&patch);
        let back = patch_from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        assert_eq!(back.seq, 5);
        assert_eq!(back.views.len(), 1);
        assert_eq!(back.views[0].sql, patch.views[0].sql);
        // Byte-identical re-encoding is the canonical equality check.
        assert_eq!(patch_to_json(&back), json);
    }

    #[test]
    fn malformed_requests_become_error_responses() {
        let service = Pi2Service::new();
        let resp = service.handle_json("not json at all");
        assert!(resp.contains("\"type\":\"error\""), "{resp}");
        assert!(resp.contains("\"code\":\"protocol\""), "{resp}");
        let resp = service.handle_json("{\"v\":1,\"type\":\"open\",\"workload\":\"nope\"}");
        assert!(resp.contains("\"code\":\"unknown_workload\""), "{resp}");
        let resp = service.handle_json("{\"v\":1,\"type\":\"close\",\"session\":99}");
        assert!(resp.contains("\"code\":\"unknown_session\""), "{resp}");
    }
}
