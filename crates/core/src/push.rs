//! Shared-session subscriptions: the fan-out registry behind protocol v2.
//!
//! Every wire session belongs to the *workload channel* it was opened
//! over (bound in [`Pi2Service::open_wire`](crate::service::Pi2Service)).
//! A v2 `subscribe` request joins a session — together with the
//! push-capable connection the request arrived on — to its channel. When
//! any session in a channel dispatches an event, the service replays that
//! event on every *other* subscribed session in the channel and pushes
//! each peer's own resulting patch (or error) down that peer's
//! connection: each subscriber sees exactly the bytes its own
//! `handle_json` would have produced, sequence numbers included.
//!
//! The hub itself is bookkeeping only — channel membership, the
//! connection each subscription is bound to, and delivery counters. The
//! replay-and-push loop lives in `crate::protocol` (it needs the patch
//! codec); connection buffering and slow-consumer *transport* eviction
//! live in `pi2-server`. A subscription whose connection reports dead
//! (send returns `false`, or the server calls `connection_closed`) is
//! dropped here so fan-out never accumulates dead peers.

use pi2_server::PushSender;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One live subscription: which connection a session's patch stream is
/// bound to, and how to reach it.
struct Subscription {
    conn: u64,
    sender: PushSender,
}

#[derive(Default)]
struct HubInner {
    /// Session → the workload channel it was opened over.
    channel_of: HashMap<u64, String>,
    /// Channel → subscribed sessions (each bound to one connection).
    subscribers: HashMap<String, HashMap<u64, Subscription>>,
    /// Connection → sessions subscribed through it (disconnect cleanup).
    by_conn: HashMap<u64, HashSet<u64>>,
}

impl HubInner {
    fn remove_subscription(&mut self, session: u64) -> bool {
        let Some(channel) = self.channel_of.get(&session) else {
            return false;
        };
        let Some(subs) = self.subscribers.get_mut(channel) else {
            return false;
        };
        let Some(sub) = subs.remove(&session) else {
            return false;
        };
        if subs.is_empty() {
            self.subscribers.remove(channel);
        }
        if let Some(sessions) = self.by_conn.get_mut(&sub.conn) {
            sessions.remove(&session);
            if sessions.is_empty() {
                self.by_conn.remove(&sub.conn);
            }
        }
        true
    }
}

/// Counters snapshot of a [`PushHub`] (embedded in service metrics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PushStats {
    /// Live subscriptions across every channel.
    pub subscriptions: usize,
    /// Patches (or replay errors) successfully handed to a connection.
    pub delivered: u64,
    /// Subscriptions dropped because their connection reported dead
    /// mid-push.
    pub evicted: u64,
}

/// The subscription registry (see the module docs). All operations are
/// O(1)-ish map updates behind one short-held lock; the expensive part of
/// fan-out — per-peer event replay — happens outside the hub.
#[derive(Default)]
pub struct PushHub {
    inner: Mutex<HubInner>,
    delivered: AtomicU64,
    evicted: AtomicU64,
}

fn lock(m: &Mutex<HubInner>) -> std::sync::MutexGuard<'_, HubInner> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl PushHub {
    /// An empty hub.
    pub fn new() -> PushHub {
        PushHub::default()
    }

    /// Bind a freshly-opened wire session to its workload channel.
    pub fn bind(&self, session: u64, channel: &str) {
        lock(&self.inner)
            .channel_of
            .insert(session, channel.to_string());
    }

    /// Subscribe a session's patch stream to a connection. Re-subscribing
    /// moves the stream to the new connection. `false` when the session
    /// was never bound to a channel (unknown to the hub).
    pub fn subscribe(&self, session: u64, conn: u64, sender: PushSender) -> bool {
        let mut inner = lock(&self.inner);
        let Some(channel) = inner.channel_of.get(&session).cloned() else {
            return false;
        };
        inner.remove_subscription(session);
        inner
            .subscribers
            .entry(channel)
            .or_default()
            .insert(session, Subscription { conn, sender });
        inner.by_conn.entry(conn).or_default().insert(session);
        true
    }

    /// Drop a session's subscription if it is bound to `conn`. `true` if
    /// a subscription was removed.
    pub fn unsubscribe(&self, session: u64, conn: u64) -> bool {
        let mut inner = lock(&self.inner);
        let bound = inner
            .channel_of
            .get(&session)
            .and_then(|ch| inner.subscribers.get(ch))
            .and_then(|subs| subs.get(&session))
            .is_some_and(|sub| sub.conn == conn);
        bound && inner.remove_subscription(session)
    }

    /// A session closed: drop its channel binding and any subscription.
    pub fn drop_session(&self, session: u64) {
        let mut inner = lock(&self.inner);
        inner.remove_subscription(session);
        inner.channel_of.remove(&session);
    }

    /// A connection closed (or was evicted by the transport): drop every
    /// subscription bound through it.
    pub fn drop_conn(&self, conn: u64) {
        let mut inner = lock(&self.inner);
        let sessions = inner.by_conn.remove(&conn).unwrap_or_default();
        for session in sessions {
            inner.remove_subscription(session);
        }
    }

    /// The subscribed peers sharing `origin`'s channel, excluding
    /// `origin` itself: `(session, conn, sender)` snapshots. Empty when
    /// the origin is unknown or nobody subscribed.
    pub fn peers_of(&self, origin: u64) -> Vec<(u64, u64, PushSender)> {
        let inner = lock(&self.inner);
        let Some(channel) = inner.channel_of.get(&origin) else {
            return Vec::new();
        };
        let Some(subs) = inner.subscribers.get(channel) else {
            return Vec::new();
        };
        let mut peers: Vec<(u64, u64, PushSender)> = subs
            .iter()
            .filter(|(session, _)| **session != origin)
            .map(|(session, sub)| (*session, sub.conn, sub.sender.clone()))
            .collect();
        peers.sort_by_key(|(session, ..)| *session);
        peers
    }

    /// Every subscription in `channel`: `(session, conn, sender)`
    /// snapshots sorted by session id. The live-append fan-out pushes
    /// each subscriber its own data patch through these — unlike
    /// [`PushHub::peers_of`] there is no originating session to exclude;
    /// the data changed underneath everyone.
    pub fn subscribers_of(&self, channel: &str) -> Vec<(u64, u64, PushSender)> {
        let inner = lock(&self.inner);
        let Some(subs) = inner.subscribers.get(channel) else {
            return Vec::new();
        };
        let mut peers: Vec<(u64, u64, PushSender)> = subs
            .iter()
            .map(|(session, sub)| (*session, sub.conn, sub.sender.clone()))
            .collect();
        peers.sort_by_key(|(session, ..)| *session);
        peers
    }

    /// Record one successful delivery.
    pub fn note_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// A push found the connection dead: drop the subscription and count
    /// the eviction.
    pub fn evict(&self, session: u64, conn: u64) {
        if self.unsubscribe(session, conn) {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counters snapshot.
    pub fn stats(&self) -> PushStats {
        let inner = lock(&self.inner);
        PushStats {
            subscriptions: inner.subscribers.values().map(HashMap::len).sum(),
            delivered: self.delivered.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn counting_sender(hits: &Arc<AtomicUsize>, alive: bool) -> PushSender {
        let hits = Arc::clone(hits);
        Arc::new(move |_conn, _text| {
            hits.fetch_add(1, Ordering::SeqCst);
            alive
        })
    }

    #[test]
    fn subscriptions_fan_out_within_a_channel_only() {
        let hub = PushHub::new();
        let hits = Arc::new(AtomicUsize::new(0));
        hub.bind(1, "covid");
        hub.bind(2, "covid");
        hub.bind(3, "flights");
        for s in [1, 2, 3] {
            assert!(hub.subscribe(s, 100 + s, counting_sender(&hits, true)));
        }
        let peers = hub.peers_of(1);
        assert_eq!(
            peers.iter().map(|(s, c, _)| (*s, *c)).collect::<Vec<_>>(),
            vec![(2, 102)],
            "same channel, origin excluded, other channels invisible"
        );
        assert!(hub.peers_of(3).is_empty());
        assert_eq!(hub.stats().subscriptions, 3);
    }

    #[test]
    fn unknown_sessions_cannot_subscribe() {
        let hub = PushHub::new();
        let hits = Arc::new(AtomicUsize::new(0));
        assert!(!hub.subscribe(9, 1, counting_sender(&hits, true)));
        assert_eq!(hub.stats().subscriptions, 0);
    }

    #[test]
    fn resubscribing_moves_the_stream_to_the_new_connection() {
        let hub = PushHub::new();
        let hits = Arc::new(AtomicUsize::new(0));
        hub.bind(1, "w");
        hub.bind(2, "w");
        assert!(hub.subscribe(2, 50, counting_sender(&hits, true)));
        assert!(hub.subscribe(2, 51, counting_sender(&hits, true)));
        assert_eq!(hub.stats().subscriptions, 1);
        assert_eq!(hub.peers_of(1)[0].1, 51);
        // The stale connection no longer unsubscribes it…
        assert!(!hub.unsubscribe(2, 50));
        // …and dropping the stale connection leaves it subscribed.
        hub.drop_conn(50);
        assert_eq!(hub.stats().subscriptions, 1);
        hub.drop_conn(51);
        assert_eq!(hub.stats().subscriptions, 0);
    }

    #[test]
    fn session_and_connection_teardown_unsubscribe() {
        let hub = PushHub::new();
        let hits = Arc::new(AtomicUsize::new(0));
        for s in [1, 2, 3] {
            hub.bind(s, "w");
            assert!(hub.subscribe(s, 7, counting_sender(&hits, true)));
        }
        hub.drop_session(2);
        assert_eq!(hub.stats().subscriptions, 2);
        assert!(
            !hub.subscribe(2, 7, counting_sender(&hits, true)),
            "unbound"
        );
        hub.drop_conn(7);
        assert_eq!(hub.stats().subscriptions, 0);
        // Channel bindings survive drop_conn: the sessions are still open.
        assert!(hub.subscribe(1, 8, counting_sender(&hits, true)));
    }

    #[test]
    fn evictions_are_counted_and_idempotent() {
        let hub = PushHub::new();
        let hits = Arc::new(AtomicUsize::new(0));
        hub.bind(1, "w");
        assert!(hub.subscribe(1, 4, counting_sender(&hits, false)));
        hub.evict(1, 4);
        hub.evict(1, 4);
        let stats = hub.stats();
        assert_eq!((stats.subscriptions, stats.evicted), (0, 1));
    }
}
