//! The sharded wire-session registry.
//!
//! Extracted from `Pi2Service` (which used to hold one `Mutex<HashMap>`
//! over every wire session — a global map lock every request crossed, the
//! contention point the ROADMAP called out). The registry shards sessions
//! across independently-locked maps in the style of
//! [`pi2_data::ShardedMemo`]: two requests for different sessions touch
//! different locks with probability `1 − 1/shards`, and the lock is held
//! only for the id lookup — never across a dispatch.
//!
//! Both serving paths go through it: the in-process path
//! (`Pi2Service::handle_json`) and the HTTP server (`pi2::server`), whose
//! per-session mailboxes additionally guarantee that only one worker
//! drives a session at a time — the per-session mutex then never blocks,
//! it only guards against *mixed* deployments driving one session from
//! both paths at once.

use crate::service::Session;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shard count (matches `pi2_data::memo::DEFAULT_SHARDS`).
const SHARDS: usize = 16;

/// A sharded `wire id → session` map. Ids are assigned once, never reused,
/// and start at 1 (0 reads as "no session" in logs and tests).
pub struct SessionRegistry {
    shards: Vec<Mutex<HashMap<u64, Arc<Mutex<Session>>>>>,
    next: AtomicU64,
    /// OR-ed into every minted id. Zero outside a cluster; a cluster node
    /// sets its ring index into the high bits ([`SessionRegistry::set_id_prefix`])
    /// so ids stay fleet-unique and encode their owner.
    prefix: AtomicU64,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next: AtomicU64::new(0),
            prefix: AtomicU64::new(0),
        }
    }

    /// Namespace all future ids: every minted id is `prefix | seq`. A
    /// cluster node passes `(ring index) << 48`, making the owning node
    /// recoverable from any session id (`id >> 48`); the default prefix of
    /// zero preserves the dense 1, 2, 3… ids of a standalone process.
    pub fn set_id_prefix(&self, prefix: u64) {
        self.prefix.store(prefix, Ordering::Relaxed);
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<Mutex<Session>>>> {
        // Ids are dense (sequential), so the modulus alone spreads them
        // uniformly; no hashing needed.
        &self.shards[(id as usize) % self.shards.len()]
    }

    /// Register a session under a fresh wire id.
    pub fn insert(&self, session: Session) -> (u64, Arc<Mutex<Session>>) {
        let id =
            self.prefix.load(Ordering::Relaxed) | (self.next.fetch_add(1, Ordering::Relaxed) + 1);
        let slot = Arc::new(Mutex::new(session));
        self.shard(id).lock().insert(id, Arc::clone(&slot));
        (id, slot)
    }

    /// The session registered under `id`.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.shard(id).lock().get(&id).cloned()
    }

    /// Remove `id`; returns whether it was registered.
    pub fn remove(&self, id: u64) -> bool {
        self.shard(id).lock().remove(&id).is_some()
    }

    /// Registered sessions across all shards (approximate under
    /// concurrency).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SessionRegistry {
    fn default() -> SessionRegistry {
        SessionRegistry::new()
    }
}

impl std::fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("sessions", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::{GenerationConfig, Pi2};
    use pi2_data::{Catalog, DataType, Table, Value};

    fn sample_session() -> Session {
        let mut c = Catalog::new();
        let rows: Vec<Vec<Value>> = (0..12)
            .map(|i| vec![Value::Int(i % 3), Value::Int(10 * (i % 4))])
            .collect();
        let t = Table::from_rows(vec![("a", DataType::Int), ("b", DataType::Int)], rows).unwrap();
        c.add_table("T", t, vec![]);
        let g = Pi2::new(c)
            .generate_with(
                &["SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a"],
                &GenerationConfig::quick(),
            )
            .unwrap();
        g.session().unwrap()
    }

    #[test]
    fn ids_are_unique_and_start_at_one() {
        let registry = SessionRegistry::new();
        let (a, _) = registry.insert(sample_session());
        let (b, _) = registry.insert(sample_session());
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(registry.len(), 2);
        assert!(registry.get(a).is_some());
        assert!(registry.get(99).is_none());
        assert!(registry.remove(a));
        assert!(!registry.remove(a), "double close reports absence");
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn concurrent_inserts_never_collide() {
        let registry = SessionRegistry::new();
        let session = sample_session();
        let ids: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let registry = &registry;
                    let session = &session;
                    scope.spawn(move || {
                        (0..16)
                            .map(|_| {
                                // Sessions over one generation are cheap to
                                // reopen; clone-by-reopen keeps this test
                                // focused on the registry.
                                let (id, _) =
                                    registry.insert(session.generation().session().unwrap());
                                id
                            })
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "ids must never be reused");
        assert_eq!(registry.len(), ids.len());
    }

    #[test]
    fn id_prefix_namespaces_new_ids() {
        let registry = SessionRegistry::new();
        registry.set_id_prefix(2u64 << 48);
        let (a, _) = registry.insert(sample_session());
        let (b, _) = registry.insert(sample_session());
        assert_eq!(a, (2u64 << 48) | 1);
        assert_eq!(b, (2u64 << 48) | 2);
        assert_eq!(a >> 48, 2, "the owning node is recoverable");
        assert!(registry.get(a).is_some());
        assert!(registry.remove(b));
    }
}
