//! ASCII interface rendering.
//!
//! The paper renders interfaces in a browser; our reproduction renders the
//! same structure — charts, widgets, layout boxes — as text, which keeps
//! the generated interfaces inspectable in tests, examples, and logs.

use pi2_interface::{InteractionChoice, Interface, Rect};

/// Character-cell scale: one column ≈ 8 px, one row ≈ 18 px.
const PX_PER_COL: f64 = 8.0;
const PX_PER_ROW: f64 = 18.0;

/// Render the interface's layout as an ASCII box drawing.
pub fn render_ascii(iface: &Interface) -> String {
    let (w_px, h_px) = iface.layout.size;
    let cols = ((w_px / PX_PER_COL).ceil() as usize + 2).clamp(10, 240);
    let rows = ((h_px / PX_PER_ROW).ceil() as usize + 2).clamp(4, 120);
    let mut grid = vec![vec![' '; cols]; rows];

    let draw_box = |r: &Rect, label: &str, grid: &mut Vec<Vec<char>>| {
        let x0 = (r.x / PX_PER_COL) as usize;
        let y0 = (r.y / PX_PER_ROW) as usize;
        let x1 = (((r.x + r.w) / PX_PER_COL) as usize)
            .min(cols - 1)
            .max(x0 + 2);
        let y1 = (((r.y + r.h) / PX_PER_ROW) as usize)
            .min(rows - 1)
            .max(y0 + 1);
        #[allow(clippy::needless_range_loop)]
        for x in x0..=x1 {
            if y0 < rows {
                grid[y0][x] = if x == x0 || x == x1 { '+' } else { '-' };
            }
            if y1 < rows {
                grid[y1][x] = if x == x0 || x == x1 { '+' } else { '-' };
            }
        }
        for row in grid.iter_mut().take(y1).skip(y0 + 1) {
            row[x0] = '|';
            row[x1] = '|';
        }
        // Label inside the box.
        let ly = y0 + 1;
        if ly < y1 {
            for (i, ch) in label.chars().enumerate() {
                let lx = x0 + 1 + i;
                if lx >= x1 {
                    break;
                }
                grid[ly][lx] = ch;
            }
        }
    };

    for (i, view) in iface.views.iter().enumerate() {
        if let Some(r) = iface.layout.vis_boxes.get(i) {
            draw_box(r, &format!("[{}]", view.vis.kind), &mut grid);
        }
    }
    for (i, inst) in iface.interactions.iter().enumerate() {
        if let InteractionChoice::Widget { kind, label, .. } = &inst.choice {
            if let Some(r) = iface.layout.widget_boxes.get(i) {
                draw_box(r, &format!("{kind}: {label}"), &mut grid);
            }
        }
    }

    let mut out = String::with_capacity(rows * (cols + 1));
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    // Trim trailing blank lines.
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

/// Render one view's result table as an ASCII chart with actual data marks
/// (bars, points, or a line), using the view's visualization mapping.
/// Tables render through [`pi2_data::Table`]'s own formatter.
pub fn render_view(table: &pi2_data::Table, vis: &pi2_interface::VisMapping) -> String {
    use pi2_interface::{VisKind, VisVar};
    match vis.kind {
        VisKind::Table => {
            let mut t = table.clone();
            t.truncate(12);
            let mut s = t.to_string();
            if table.num_rows() > 12 {
                s.push_str(&format!("… ({} more rows)\n", table.num_rows() - 12));
            }
            s
        }
        kind => {
            let Some(x) = vis.column_for(VisVar::X) else {
                return "(unmapped chart)\n".into();
            };
            let Some(y) = vis.column_for(VisVar::Y) else {
                return "(unmapped chart)\n".into();
            };
            match kind {
                VisKind::Bar => render_bars(table, x, y),
                _ => render_points(table, x, y, kind == VisKind::Line),
            }
        }
    }
}

/// Horizontal ASCII bars, one per (x, y) row.
fn render_bars(table: &pi2_data::Table, x: usize, y: usize) -> String {
    let mut rows: Vec<(String, f64)> = table
        .iter_rows()
        .filter_map(|r| Some((r.get(x)?.to_string(), r.get(y)?.as_f64()?)))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows.truncate(20);
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(1);
    let mut out = String::new();
    for (label, v) in &rows {
        let n = ((v / max) * 40.0).round().max(0.0) as usize;
        out.push_str(&format!("{label:>label_w$} | {} {v}\n", "█".repeat(n)));
    }
    out
}

/// A character-grid scatterplot / line chart.
fn render_points(table: &pi2_data::Table, x: usize, y: usize, connect: bool) -> String {
    const W: usize = 56;
    const H: usize = 14;
    let pts: Vec<(f64, f64)> = table
        .iter_rows()
        .filter_map(|r| Some((r.get(x)?.as_f64()?, r.get(y)?.as_f64()?)))
        .collect();
    if pts.is_empty() {
        return "(no data)\n".into();
    }
    let (x0, x1) = pts.iter().fold((f64::MAX, f64::MIN), |(a, b), (v, _)| {
        (a.min(*v), b.max(*v))
    });
    let (y0, y1) = pts.iter().fold((f64::MAX, f64::MIN), |(a, b), (_, v)| {
        (a.min(*v), b.max(*v))
    });
    let sx = |v: f64| (((v - x0) / (x1 - x0).max(1e-9)) * (W - 1) as f64).round() as usize;
    let sy = |v: f64| H - 1 - (((v - y0) / (y1 - y0).max(1e-9)) * (H - 1) as f64).round() as usize;
    let mut grid = vec![vec![' '; W]; H];
    let mut sorted = pts.clone();
    if connect {
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in sorted.windows(2) {
            // Sparse linear interpolation between consecutive points.
            let (ax, ay) = (sx(pair[0].0) as f64, sy(pair[0].1) as f64);
            let (bx, by) = (sx(pair[1].0) as f64, sy(pair[1].1) as f64);
            let steps = ((bx - ax).abs().max((by - ay).abs()) as usize).max(1);
            for s in 0..=steps {
                let t = s as f64 / steps as f64;
                let gx = (ax + (bx - ax) * t).round() as usize;
                let gy = (ay + (by - ay) * t).round() as usize;
                if gy < H && gx < W {
                    grid[gy][gx] = '·';
                }
            }
        }
    }
    for (px, py) in &pts {
        let (gx, gy) = (sx(*px), sy(*py));
        if gy < H && gx < W {
            grid[gy][gx] = '●';
        }
    }
    let mut out = String::new();
    out.push_str(&format!("y: {y0:.1} – {y1:.1}\n"));
    for row in grid {
        out.push('|');
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(W));
    out.push('\n');
    out.push_str(&format!(" x: {x0:.1} – {x1:.1}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_interface::{
        LayoutNode, LayoutTree, Orientation, View, VisKind, VisMapping, WidgetDomain, WidgetKind,
    };

    fn sample_interface() -> Interface {
        let interactions = vec![pi2_interface::InteractionInstance {
            target_tree: 0,
            target_node: 1,
            cover: vec![1],
            extra_targets: vec![],
            choice: InteractionChoice::Widget {
                kind: WidgetKind::Slider,
                domain: WidgetDomain::Range {
                    min: 0.0,
                    max: 10.0,
                },
                label: "hp".into(),
            },
        }];
        let root = LayoutNode::Group {
            orientation: Orientation::Vertical,
            children: vec![
                LayoutNode::Vis {
                    view: 0,
                    size: (320.0, 240.0),
                },
                LayoutNode::Widget {
                    interaction: 0,
                    size: (160.0, 30.0),
                },
            ],
        };
        Interface {
            views: vec![View {
                tree: 0,
                vis: VisMapping {
                    kind: VisKind::Point,
                    assignments: vec![],
                },
            }],
            interactions,
            layout: LayoutTree::place(root, 1, 1),
        }
    }

    #[test]
    fn ascii_contains_chart_and_widget_labels() {
        let s = render_ascii(&sample_interface());
        assert!(s.contains("[scatterplot]"), "{s}");
        assert!(s.contains("slider: hp"), "{s}");
        assert!(s.contains('+'));
    }

    #[test]
    fn render_view_bars() {
        use pi2_data::{DataType, Table, Value};
        let t = Table::from_rows(
            vec![("a", DataType::Int), ("count", DataType::Int)],
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(40)],
                vec![Value::Int(3), Value::Int(20)],
            ],
        )
        .unwrap();
        let vis = VisMapping {
            kind: VisKind::Bar,
            assignments: vec![(0, pi2_interface::VisVar::X), (1, pi2_interface::VisVar::Y)],
        };
        let s = render_view(&t, &vis);
        assert_eq!(s.lines().count(), 3);
        // The largest bar belongs to x = 2.
        let bar_len = |line: &str| line.chars().filter(|&c| c == '█').count();
        let lines: Vec<&str> = s.lines().collect();
        assert!(bar_len(lines[1]) > bar_len(lines[0]));
        assert!(bar_len(lines[1]) > bar_len(lines[2]));
    }

    #[test]
    fn render_view_scatter_and_table() {
        use pi2_data::{DataType, Table, Value};
        let t = Table::from_rows(
            vec![("x", DataType::Int), ("y", DataType::Int)],
            (0..30)
                .map(|i| vec![Value::Int(i), Value::Int(i * i)])
                .collect(),
        )
        .unwrap();
        let scatter = VisMapping {
            kind: VisKind::Point,
            assignments: vec![(0, pi2_interface::VisVar::X), (1, pi2_interface::VisVar::Y)],
        };
        let s = render_view(&t, &scatter);
        assert!(s.contains('●'));
        assert!(s.contains("x: 0.0 – 29.0"), "{s}");
        let line = VisMapping {
            kind: VisKind::Line,
            assignments: scatter.assignments.clone(),
        };
        assert!(render_view(&t, &line).contains('·'));
        let table = VisMapping {
            kind: VisKind::Table,
            assignments: vec![],
        };
        let s = render_view(&t, &table);
        assert!(s.contains("more rows"), "long tables truncate: {s}");
    }

    #[test]
    fn ascii_is_bounded() {
        let s = render_ascii(&sample_interface());
        assert!(s.lines().count() <= 120);
        assert!(s.lines().all(|l| l.len() <= 240));
    }
}
