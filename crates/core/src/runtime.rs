//! Events and the event-application engine: what makes a generated
//! interface "fully functional".
//!
//! Every interaction instance binds one or more choice nodes. Applying an
//! event re-binds those nodes and re-resolves the owning Difftree(s) to
//! SQL — exactly the query-level semantics the paper's browser front-end
//! implements. The engine (`EventEngine`) is pure staging: it returns the
//! validated per-tree binding maps and raised queries an event produces,
//! and *never* mutates state, so [`crate::Session`] can commit the change,
//! diff resolved-query fingerprints, and emit a delta patch.

use crate::error::Pi2Error;
use pi2_data::{date::format_iso_date, Value};
use pi2_difftree::{Assignment, Binding, BindingMap, DNode, Forest, NodeKind, SyntaxKind, TypeMap};
use pi2_interface::{flatten_node, FlatSchema, Interface};
use pi2_sql::ast::Literal;
use std::sync::Arc;

/// A user interaction event.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum Event {
    /// Choose option `option` of an enumerating widget (radio / dropdown /
    /// buttons) or click the `option`-th alternative.
    Select { interaction: usize, option: usize },
    /// Turn a toggle on or off.
    Toggle { interaction: usize, on: bool },
    /// Set scalar values aligned with the interaction's flattened elements:
    /// a slider sends one value, a range slider or brush two, a pan/zoom on
    /// a scatterplot four (x-lo, x-hi, y-lo, y-hi), a click one per event
    /// column.
    SetValues {
        interaction: usize,
        values: Vec<Value>,
    },
    /// Set the value set of a repeated element (checkbox over MULTI,
    /// multi-click, adder).
    SetSet {
        interaction: usize,
        values: Vec<Value>,
    },
    /// Choose a subset of options (checkbox over SUBSET).
    SelectMany {
        interaction: usize,
        options: Vec<usize>,
    },
    /// Clear an optional interaction (e.g. clear a brush), removing the
    /// controlled subtree from the query.
    Clear { interaction: usize },
}

impl Event {
    /// Index of the interaction instance this event targets.
    pub fn interaction(&self) -> usize {
        match self {
            Event::Select { interaction, .. }
            | Event::Toggle { interaction, .. }
            | Event::SetValues { interaction, .. }
            | Event::SetSet { interaction, .. }
            | Event::SelectMany { interaction, .. }
            | Event::Clear { interaction } => *interaction,
        }
    }
}

/// The pure event-application engine: borrows one session's state, stages
/// the trees an event touches. Staging is *syntactic* — the session
/// validates each staged binding by resolution (or a resolved-binding
/// cache hit) before committing anything, all-or-nothing.
pub(crate) struct EventEngine<'a> {
    pub forest: &'a Forest,
    /// The workload's input-query assignments over this forest, computed
    /// once at session open (they are a pure function of (forest,
    /// workload) — re-binding per dispatch would repeat that work).
    pub assignments: &'a [Assignment],
    pub interface: &'a Interface,
    pub types: &'a [Arc<TypeMap>],
    pub option_maps: &'a [Vec<usize>],
    pub bindings: &'a [BindingMap],
}

impl EventEngine<'_> {
    /// Stage one event: the per-tree binding maps it produces. Trees the
    /// event does not touch are absent.
    pub fn apply(&self, event: &Event) -> Result<Vec<(usize, BindingMap)>, Pi2Error> {
        let ix = event.interaction();
        let inst = self
            .interface
            .interactions
            .get(ix)
            .ok_or(Pi2Error::UnknownInteraction { interaction: ix })?
            .clone();
        let tree = inst.target_tree;
        let node = self
            .forest
            .node_in_tree(tree, inst.target_node)
            .ok_or(Pi2Error::StaleNode)?
            .clone();

        // Per-tree staged maps; same-tree targets accumulate into one map.
        let mut staged: Vec<(usize, BindingMap)> = Vec::new();
        let staged_map = |staged: &Vec<(usize, BindingMap)>, t: usize| -> BindingMap {
            staged
                .iter()
                .find(|(st, _)| *st == t)
                .map(|(_, m)| m.clone())
                .unwrap_or_else(|| self.bindings[t].clone())
        };
        let commit = |staged: &mut Vec<(usize, BindingMap)>, t: usize, map: BindingMap| {
            if let Some(slot) = staged.iter_mut().find(|(st, _)| *st == t) {
                slot.1 = map;
            } else {
                staged.push((t, map));
            }
        };

        match event {
            Event::Select { option, .. } => {
                let child = self.option_maps[ix]
                    .get(*option)
                    .copied()
                    .ok_or_else(|| Pi2Error::invalid(format!("no option {option}")))?;
                if node.kind != NodeKind::Any {
                    return Err(Pi2Error::invalid("Select targets an ANY node"));
                }
                let mut next = staged_map(&mut staged, tree);
                next.insert(node.id, Binding::Index(child));
                // Nested choices of the newly chosen branch may be unbound;
                // initialise them from any input query using that branch.
                self.fill_missing(tree, &mut next);
                commit(&mut staged, tree, next);
            }
            Event::Toggle { on, .. } => {
                let (present_idx, empty_idx) = opt_indices(&node)
                    .ok_or_else(|| Pi2Error::invalid("Toggle targets an OPT node"))?;
                let mut next = staged_map(&mut staged, tree);
                next.insert(
                    node.id,
                    Binding::Index(if *on { present_idx } else { empty_idx }),
                );
                if *on {
                    self.fill_missing(tree, &mut next);
                }
                commit(&mut staged, tree, next);
            }
            Event::SetValues { values, .. } => {
                // Apply to every target (cross-filter brushes bind nodes in
                // several trees); values tile over longer flat schemas (one
                // (lo, hi) pair can drive co-varying range pairs).
                for (t_tree, t_node) in inst.all_targets() {
                    let t_node = self
                        .forest
                        .node_in_tree(t_tree, t_node)
                        .ok_or(Pi2Error::StaleNode)?
                        .clone();
                    let flat = flatten_node(&t_node, &self.types[t_tree]).ok_or_else(|| {
                        Pi2Error::invalid("interaction target does not accept values")
                    })?;
                    if values.is_empty()
                        || (values.len() != flat.len() && !flat.len().is_multiple_of(values.len()))
                    {
                        return Err(Pi2Error::invalid(format!(
                            "expected {} values, got {}",
                            flat.len(),
                            values.len()
                        )));
                    }
                    // Tile the payload over co-varying pairs, snapping each
                    // position against the first enumerable element so every
                    // pair binds the same (expressible) value.
                    let stride = values.len();
                    let mut harmonised: Vec<Value> = values.clone();
                    for (r, slot) in harmonised.iter_mut().enumerate() {
                        for (j, elem) in flat.elems.iter().enumerate() {
                            if j % stride != r {
                                continue;
                            }
                            let Some(n) = t_node.find(elem.node_id) else {
                                continue;
                            };
                            if n.kind == NodeKind::Any {
                                if let Some(v) = nearest_option_value(n, slot) {
                                    *slot = v;
                                    break;
                                }
                            }
                        }
                    }
                    let tiled: Vec<Value> = harmonised
                        .iter()
                        .cycle()
                        .take(flat.len())
                        .cloned()
                        .collect();
                    let mut t_next = staged_map(&mut staged, t_tree);
                    bind_values(&t_node, &flat, &tiled, &mut t_next)?;
                    commit(&mut staged, t_tree, t_next);
                }
            }
            Event::SetSet { values, .. } => {
                let multi = find_multi(&node)
                    .ok_or_else(|| Pi2Error::invalid("SetSet targets a MULTI node"))?;
                let template = &multi.children[0];
                let mut params = Vec::with_capacity(values.len());
                for v in values {
                    let mut sub = BindingMap::new();
                    bind_template(template, v, &mut sub)?;
                    params.push(sub);
                }
                let mut next = staged_map(&mut staged, tree);
                next.insert(multi.id, Binding::List(params));
                commit(&mut staged, tree, next);
            }
            Event::SelectMany { options, .. } => {
                if node.kind != NodeKind::Subset {
                    return Err(Pi2Error::invalid("SelectMany targets a SUBSET node"));
                }
                let mut sorted = options.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.iter().any(|&o| o >= node.children.len()) {
                    return Err(Pi2Error::invalid("option out of range"));
                }
                let mut next = staged_map(&mut staged, tree);
                next.insert(node.id, Binding::Indices(sorted));
                commit(&mut staged, tree, next);
            }
            Event::Clear { .. } => {
                // Clear every target's optional subtree(s).
                for (t_tree, t_node_id) in inst.all_targets() {
                    let t_node = self
                        .forest
                        .node_in_tree(t_tree, t_node_id)
                        .ok_or(Pi2Error::StaleNode)?
                        .clone();
                    let flat = flatten_node(&t_node, &self.types[t_tree]);
                    let controllers: Vec<u32> = match (&t_node.kind, flat) {
                        (NodeKind::Any, _) if t_node.is_opt() => vec![t_node.id],
                        (_, Some(flat)) => {
                            let mut c: Vec<u32> =
                                flat.elems.iter().filter_map(|e| e.opt_controller).collect();
                            c.dedup();
                            if c.is_empty() {
                                return Err(Pi2Error::invalid("interaction is not clearable"));
                            }
                            c
                        }
                        _ => return Err(Pi2Error::invalid("interaction is not clearable")),
                    };
                    let mut t_next = staged_map(&mut staged, t_tree);
                    for id in controllers {
                        let opt = self.forest.trees[t_tree]
                            .find(id)
                            .ok_or(Pi2Error::StaleNode)?;
                        let (_, empty_idx) =
                            opt_indices(opt).ok_or_else(|| Pi2Error::invalid("not an OPT"))?;
                        t_next.insert(id, Binding::Index(empty_idx));
                    }
                    commit(&mut staged, t_tree, t_next);
                }
            }
        }

        Ok(staged)
    }

    /// Ensure every choice node of the tree has a binding, borrowing from
    /// input-query assignments where the current state is missing one.
    fn fill_missing(&self, tree: usize, map: &mut BindingMap) {
        for a in self.assignments {
            if a.tree != tree {
                continue;
            }
            for (id, b) in &a.binding {
                map.entry(*id).or_insert_with(|| b.clone());
            }
        }
    }
}

/// The displayed options of an ANY node (skipping Empty alternatives and
/// CO-OPT group markers), as child indices.
pub(crate) fn displayed_options(node: &DNode) -> Vec<usize> {
    match node.kind {
        NodeKind::Any => node
            .children
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                !(c.is_empty_node()
                    || matches!(c.kind, NodeKind::CoOpt { .. }) && c.children.is_empty())
            })
            .map(|(i, _)| i)
            .collect(),
        _ => vec![],
    }
}

/// (present child index, empty child index) of an OPT node.
fn opt_indices(node: &DNode) -> Option<(usize, usize)> {
    if node.kind != NodeKind::Any {
        return None;
    }
    let empty = node.children.iter().position(|c| c.is_empty_node())?;
    let present = node.children.iter().position(|c| {
        !(c.is_empty_node() || matches!(c.kind, NodeKind::CoOpt { .. }) && c.children.is_empty())
    })?;
    Some((present, empty))
}

/// Convert a runtime value to an AST literal for VAL bindings.
pub fn value_to_literal(v: &Value) -> Literal {
    match v {
        Value::Int(i) => Literal::Int(*i),
        Value::Float(f) => Literal::Float(*f),
        Value::Str(s) => Literal::Str(s.clone()),
        Value::Bool(b) => Literal::Bool(*b),
        Value::Date(d) => Literal::Str(format_iso_date(*d)),
        Value::Null => Literal::Null,
    }
}

/// Bind scalar values to the flattened elements of a target node.
fn bind_values(
    root: &DNode,
    flat: &FlatSchema,
    values: &[Value],
    map: &mut BindingMap,
) -> Result<(), Pi2Error> {
    for (elem, value) in flat.elems.iter().zip(values.iter()) {
        let node = root.find(elem.node_id).ok_or(Pi2Error::StaleNode)?;
        match &node.kind {
            NodeKind::Val => {
                map.insert(node.id, Binding::Value(value_to_literal(value)));
            }
            NodeKind::Any => {
                // Enumerable ANY: choose the child literal equal to the
                // value, or — for continuous events such as brushes — snap
                // to the nearest expressible option (interfaces express a
                // finite set of queries; the UI snaps to it).
                let exact = node.children.iter().position(|c| match &c.kind {
                    NodeKind::Syntax(SyntaxKind::Lit(l)) => {
                        pi2_interface::literal_to_value(&l.0).sql_eq(value) == Some(true)
                    }
                    _ => false,
                });
                let pos = match exact {
                    Some(p) => p,
                    None => nearest_option(node, value).ok_or_else(|| {
                        Pi2Error::invalid(format!("value {value} is not an option"))
                    })?,
                };
                map.insert(node.id, Binding::Index(pos));
            }
            other => {
                return Err(Pi2Error::invalid(format!(
                    "cannot bind a value to {other:?}"
                )))
            }
        }
        // Setting a value implies presence for optional elements.
        if let Some(ctrl) = elem.opt_controller {
            let opt = root.find(ctrl).ok_or(Pi2Error::StaleNode)?;
            let (present, _) =
                opt_indices(opt).ok_or_else(|| Pi2Error::invalid("controller is not an OPT"))?;
            map.insert(ctrl, Binding::Index(present));
        }
    }
    Ok(())
}

/// The value of the enumerable ANY option closest to `value`.
fn nearest_option_value(node: &DNode, value: &Value) -> Option<Value> {
    let i = nearest_option(node, value)?;
    match &node.children[i].kind {
        NodeKind::Syntax(SyntaxKind::Lit(l)) => Some(pi2_interface::literal_to_value(&l.0)),
        _ => None,
    }
}

/// The option of an enumerable ANY closest to `value` (numeric or date
/// distance); `None` when the children aren't comparable literals.
fn nearest_option(node: &DNode, value: &Value) -> Option<usize> {
    let target = value
        .coerce_to_date()
        .and_then(|v| v.as_f64())
        .or_else(|| value.as_f64())?;
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in node.children.iter().enumerate() {
        let NodeKind::Syntax(SyntaxKind::Lit(l)) = &c.kind else {
            continue;
        };
        let v = pi2_interface::literal_to_value(&l.0);
        let v = v
            .coerce_to_date()
            .and_then(|v| v.as_f64())
            .or_else(|| v.as_f64())?;
        let d = (v - target).abs();
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best.map(|(i, _)| i)
}

/// Bind one repetition of a MULTI template to a value.
fn bind_template(template: &DNode, value: &Value, map: &mut BindingMap) -> Result<(), Pi2Error> {
    match &template.kind {
        NodeKind::Val => {
            map.insert(template.id, Binding::Value(value_to_literal(value)));
            Ok(())
        }
        NodeKind::Any => {
            let pos = template.children.iter().position(|c| match &c.kind {
                NodeKind::Syntax(SyntaxKind::Lit(l)) => {
                    pi2_interface::literal_to_value(&l.0).sql_eq(value) == Some(true)
                }
                _ => pi2_difftree::sql_snippet(c) == value.to_string(),
            });
            let pos = pos.ok_or_else(|| {
                Pi2Error::invalid(format!("value {value} is not a template option"))
            })?;
            map.insert(template.id, Binding::Index(pos));
            Ok(())
        }
        NodeKind::Syntax(_) if template.is_dynamic() => {
            // Single dynamic descendant: bind through it.
            let choices = template.choice_nodes();
            if choices.len() == 1 {
                bind_template(choices[0], value, map)
            } else {
                Err(Pi2Error::invalid("ambiguous MULTI template"))
            }
        }
        _ => Ok(()),
    }
}

/// Find the MULTI node at-or-below a target node.
fn find_multi(node: &DNode) -> Option<&DNode> {
    if node.kind == NodeKind::Multi {
        return Some(node);
    }
    node.children.iter().find_map(find_multi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::{Generation, GenerationConfig, Pi2};
    use pi2_data::{Catalog, DataType, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let rows: Vec<Vec<Value>> = (0..24)
            .map(|i| vec![Value::Int(i % 4), Value::Int(10 * (i % 6))])
            .collect();
        let t = Table::from_rows(vec![("a", DataType::Int), ("b", DataType::Int)], rows).unwrap();
        c.add_table("T", t, vec![]);
        c
    }

    fn generation() -> Generation {
        Pi2::new(catalog())
            .generate_with(
                &[
                    "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
                    "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
                ],
                &GenerationConfig::quick(),
            )
            .unwrap()
    }

    #[test]
    fn session_starts_at_first_query() {
        let g = generation();
        let rt = g.session().unwrap();
        let queries = rt.queries();
        // One of the current queries equals the first input query.
        assert!(queries.iter().any(|q| q == &g.workload.queries[0]));
        let results = rt.execute().unwrap();
        assert_eq!(results.len(), g.interface.views.len());
    }

    #[test]
    fn dispatch_changes_the_query_and_result() {
        let g = generation();
        let mut rt = g.session().unwrap();
        let before = rt.queries();
        // Drive whatever interaction the generator picked: enumerating
        // widgets via Select, value-bearing interactions via SetValues.
        let mut changed = false;
        for (ix, inst) in g.interface.interactions.iter().enumerate() {
            use pi2_interface::InteractionChoice;
            let events: Vec<Event> = match &inst.choice {
                InteractionChoice::Widget { kind, domain, .. } => match kind {
                    pi2_interface::WidgetKind::Radio
                    | pi2_interface::WidgetKind::Dropdown
                    | pi2_interface::WidgetKind::Button
                        if domain.size() >= 2 =>
                    {
                        vec![Event::Select {
                            interaction: ix,
                            option: 1,
                        }]
                    }
                    pi2_interface::WidgetKind::Slider | pi2_interface::WidgetKind::Textbox => {
                        vec![Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(30)],
                        }]
                    }
                    pi2_interface::WidgetKind::Toggle => {
                        vec![
                            Event::Toggle {
                                interaction: ix,
                                on: false,
                            },
                            Event::Toggle {
                                interaction: ix,
                                on: true,
                            },
                        ]
                    }
                    _ => continue,
                },
                InteractionChoice::Vis { .. } => {
                    // Try a 1/2/4-value payload (slider/brush/pan shapes).
                    vec![
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(30)],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![Value::Int(20), Value::Int(40)],
                        },
                        Event::SetValues {
                            interaction: ix,
                            values: vec![
                                Value::Int(20),
                                Value::Int(40),
                                Value::Int(1),
                                Value::Int(3),
                            ],
                        },
                    ]
                }
            };
            for event in events {
                if rt.dispatch(&event).is_ok() && rt.queries() != before {
                    changed = true;
                    break;
                }
            }
            if changed {
                break;
            }
        }
        assert!(
            changed,
            "no dispatchable interaction found:\n{}",
            g.describe()
        );
        let after = rt.queries();
        assert_ne!(before, after, "dispatch must change some query");
        rt.execute().unwrap();
    }

    #[test]
    fn invalid_events_are_rejected_without_state_change() {
        let g = generation();
        let mut rt = g.session().unwrap();
        let before = rt.queries();
        assert_eq!(
            rt.dispatch(&Event::Select {
                interaction: 999,
                option: 0
            })
            .unwrap_err(),
            Pi2Error::UnknownInteraction { interaction: 999 }
        );
        // Wrong payload arity → structured InvalidEvent.
        for ix in 0..g.interface.interactions.len() {
            let err = rt
                .dispatch(&Event::SetValues {
                    interaction: ix,
                    values: vec![],
                })
                .unwrap_err();
            assert!(
                matches!(err, Pi2Error::InvalidEvent { .. }),
                "expected InvalidEvent, got {err:?}"
            );
        }
        assert_eq!(rt.queries(), before);
    }

    #[test]
    fn value_literal_round_trip() {
        assert_eq!(value_to_literal(&Value::Int(3)), Literal::Int(3));
        assert_eq!(value_to_literal(&Value::Float(2.5)), Literal::Float(2.5));
        assert_eq!(
            value_to_literal(&Value::Str("CA".into())),
            Literal::Str("CA".into())
        );
        assert_eq!(
            value_to_literal(&Value::Date(0)),
            Literal::Str("1970-01-01".into())
        );
    }
}
