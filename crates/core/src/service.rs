//! The session service: registered workloads, shared generations, and
//! delta-dispatch sessions.
//!
//! PR 1/2 made search and execution fast; this layer makes the result
//! *servable*. A [`Pi2Service`] owns any number of registered workloads —
//! registration parses, generates, and pre-warms the process-wide
//! [`pi2_interface::EvalCache`] once — and any number of [`Session`]s open
//! concurrently over one shared [`Generation`] (its internals are `Arc`s,
//! so opening a session never copies the forest, workload, or interface).
//!
//! Dispatch is a *delta*: [`Session::dispatch`] stages an event through the
//! pure `EventEngine` (see `crate::runtime`), commits only the trees whose
//! binding actually changed, diffs resolved-SQL fingerprints, and returns a
//! [`Patch`] containing only the views whose query changed — with result
//! tables fetched through the per-(catalogue, resolved-SQL fingerprint)
//! memo, so identical interaction states across sessions (and repeat
//! events within one) share a single execution.
//!
//! The JSON wire protocol over this layer lives in [`crate::protocol`].

use crate::error::Pi2Error;
use crate::generation::{Generation, GenerationConfig, Pi2};
use crate::push::{PushHub, PushStats};
use crate::registry::SessionRegistry;
use crate::runtime::{displayed_options, Event, EventEngine};
use parking_lot::{Mutex, RwLock};
use pi2_data::hash::fnv1a_64;
use pi2_data::{Catalog, Table};
use pi2_difftree::{infer_types_cached, raise_query, resolve, Assignment, BindingMap, TypeMap};
use pi2_engine::{execute, ExecContext};
use pi2_interface::{global_eval_cache, CacheStats, Interface, LiveStats};
use pi2_search::SearchStats;
use pi2_sql::ast::Query;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// One view's update inside a [`Patch`]: the view's new resolved SQL and
/// its result table (shared out of the process-wide memo).
#[derive(Debug, Clone)]
pub struct PatchView {
    /// Index into `interface.views`.
    pub view: usize,
    /// The Difftree the view renders.
    pub tree: usize,
    /// The view's new resolved SQL text.
    pub sql: String,
    /// The executed result (memo-shared; cloning is cheap).
    pub table: Arc<Table>,
}

/// The delta a dispatch produces: only the views whose resolved query
/// actually changed. An event that re-binds nodes without changing any
/// resolved query yields an empty patch.
#[derive(Debug, Clone)]
pub struct Patch {
    /// Session-local sequence number (increments per successful dispatch).
    pub seq: u64,
    /// Updated views, in view order.
    pub views: Vec<PatchView>,
}

impl Patch {
    /// Whether the patch carries no view updates.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

fn sql_fingerprint(sql: &str) -> u64 {
    fnv1a_64(sql.as_bytes())
}

/// Per-tree cap on the session's resolved-binding cache: a session cycling
/// through widget states revisits bindings constantly; unbounded growth is
/// only possible with continuous payloads, which snap to finite option
/// sets anyway.
const RESOLVED_CACHE_CAP: usize = 64;

/// One resolved binding of a tree: the raised query, its SQL text, and the
/// text fingerprint (the dirty-diff and memo key).
type ResolvedBinding = (BindingMap, Arc<Query>, Arc<str>, u64);

/// A validated per-tree commit staged by a dispatch.
type StagedCommit = (usize, BindingMap, Arc<Query>, Arc<str>, u64);

/// One analyst's interactive state over a shared [`Generation`].
///
/// Sessions are cheap: per-tree binding maps, resolved queries, and
/// fingerprints. Everything heavy (forest, interface, type maps, executed
/// results, mapping artifacts) is shared — across sessions, threads, and
/// with the search phase that produced the generation.
#[derive(Debug)]
pub struct Session {
    generation: Generation,
    /// Input-query assignments over the shared forest (computed once at
    /// open; dispatch borrows missing nested bindings from these).
    assignments: Arc<Vec<Assignment>>,
    types: Vec<Arc<TypeMap>>,
    /// Per-interaction: displayed-option index → ANY child index.
    option_maps: Vec<Vec<usize>>,
    /// Per-tree current bindings (the UI state).
    bindings: Vec<BindingMap>,
    /// Per-tree current resolved query, its SQL text, and text fingerprint.
    queries: Vec<Arc<Query>>,
    sqls: Vec<Arc<str>>,
    fps: Vec<u64>,
    /// Per-tree memo of resolved bindings: revisited states (widget
    /// toggles, brush snap-backs) skip resolve/raise entirely.
    resolved: Vec<Vec<ResolvedBinding>>,
    seq: u64,
}

impl Session {
    /// Open a session: every tree starts at the first input query it
    /// expresses (the same initial state for every session, so patch
    /// streams are a pure function of the event sequence).
    pub fn open(generation: &Generation) -> Result<Session, Pi2Error> {
        let generation = generation.clone(); // Arc-backed, cheap
        let forest = &generation.forest;
        let workload = &generation.workload;
        let assignments = forest
            .bind_all(workload)
            .ok_or_else(|| Pi2Error::Runtime("forest no longer expresses workload".into()))?;
        let mut first: Vec<Option<BindingMap>> = vec![None; forest.trees.len()];
        for a in &assignments {
            if first[a.tree].is_none() {
                first[a.tree] = Some(a.binding.clone());
            }
        }
        let bindings: Vec<BindingMap> = first.into_iter().map(|b| b.unwrap_or_default()).collect();
        let types: Vec<Arc<TypeMap>> = forest
            .trees
            .iter()
            .map(|t| infer_types_cached(t, &workload.catalog))
            .collect();
        let option_maps: Vec<Vec<usize>> = generation
            .interface
            .interactions
            .iter()
            .map(|inst| {
                forest
                    .node_in_tree(inst.target_tree, inst.target_node)
                    .map(displayed_options)
                    .unwrap_or_default()
            })
            .collect();
        let mut session = Session {
            generation,
            assignments: Arc::new(assignments),
            types,
            option_maps,
            queries: Vec::with_capacity(bindings.len()),
            sqls: Vec::with_capacity(bindings.len()),
            fps: Vec::with_capacity(bindings.len()),
            resolved: vec![Vec::new(); bindings.len()],
            bindings,
            seq: 0,
        };
        for t in 0..session.bindings.len() {
            let map = session.bindings[t].clone();
            let (query, sql, fp) = session
                .resolve_binding(t, &map)
                .map_err(|e| Pi2Error::Runtime(format!("initial state is invalid: {e}")))?;
            session.queries.push(query);
            session.sqls.push(sql);
            session.fps.push(fp);
        }
        Ok(session)
    }

    /// The shared generation this session drives.
    pub fn generation(&self) -> &Generation {
        &self.generation
    }

    /// The interface this session drives.
    pub fn interface(&self) -> &Interface {
        &self.generation.interface
    }

    /// The current resolved query of every tree.
    pub fn queries(&self) -> Vec<Query> {
        self.queries.iter().map(|q| (**q).clone()).collect()
    }

    /// The current resolved query of one tree.
    pub fn query_for_tree(&self, tree: usize) -> Option<&Query> {
        self.queries.get(tree).map(|q| q.as_ref())
    }

    /// The current resolved SQL text of one tree.
    pub fn sql_for_tree(&self, tree: usize) -> Option<&str> {
        self.sqls.get(tree).map(|s| s.as_ref())
    }

    /// The sequence number of the last dispatched event.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Apply one event and return the delta: only views whose resolved
    /// query changed, with results served through the shared memo. Invalid
    /// events leave the state unchanged and report a structured error.
    pub fn dispatch(&mut self, event: &Event) -> Result<Patch, Pi2Error> {
        let staged = EventEngine {
            forest: &self.generation.forest,
            assignments: &self.assignments,
            interface: &self.generation.interface,
            types: &self.types,
            option_maps: &self.option_maps,
            bindings: &self.bindings,
        }
        .apply(event)?;

        // Validate every staged tree (resolved-binding cache hit, or
        // resolve + raise on first visit) before committing anything.
        let mut commits: Vec<StagedCommit> = Vec::new();
        for (tree, map) in staged {
            if self.bindings[tree] == map {
                continue; // event re-bound to the identical state
            }
            let (query, sql, fp) = self.resolve_binding(tree, &map)?;
            commits.push((tree, map, query, sql, fp));
        }

        // Fill the patch for the dirty trees (resolved SQL changed) from
        // the staged state, *before* committing: a failed event — however
        // it fails — leaves the whole session unchanged. Results come from
        // the *live* catalogue snapshot, so appended rows are visible.
        let cache = global_eval_cache();
        let catalog = self.generation.live.snapshot();
        let mut views = Vec::new();
        for (v, view) in self.generation.interface.views.iter().enumerate() {
            let staged_for_view = commits
                .iter()
                .find(|(tree, _, _, _, fp)| *tree == view.tree && *fp != self.fps[*tree]);
            if let Some((tree, _, query, sql, fp)) = staged_for_view {
                let table = cache
                    .resolved_result_fp(&catalog, *fp, query)
                    .ok_or_else(|| self.execution_error(*tree, query))?;
                views.push(PatchView {
                    view: v,
                    tree: *tree,
                    sql: sql.to_string(),
                    table,
                });
            }
        }

        // All fallible work done — commit.
        for (tree, map, query, sql, fp) in commits {
            self.bindings[tree] = map;
            if fp != self.fps[tree] {
                self.fps[tree] = fp;
                self.queries[tree] = query;
                self.sqls[tree] = sql;
            }
        }
        self.seq += 1;
        Ok(Patch {
            seq: self.seq,
            views,
        })
    }

    /// A full-state patch (every view, current results) — what a front-end
    /// renders on connect. Does not advance the sequence number.
    pub fn refresh(&self) -> Result<Patch, Pi2Error> {
        Ok(Patch {
            seq: self.seq,
            views: self.patch_views(|_| true)?,
        })
    }

    /// The patch a live append produces for this session: every view whose
    /// *current* query references the appended table, freshly fetched
    /// against the live catalogue (the memo's IVM path serves supported
    /// shapes from the delta alone). Views over other tables are omitted
    /// — untouched views produce no patch entry. The sequence number does
    /// not advance: no event was dispatched; the data moved underneath
    /// the same interaction state.
    pub fn data_patch(&self, changed: &str) -> Result<Patch, Pi2Error> {
        let changed = changed.to_lowercase();
        let affected: Vec<bool> = self
            .queries
            .iter()
            .map(|q| pi2_engine::referenced_tables(q).contains(&changed))
            .collect();
        Ok(Patch {
            seq: self.seq,
            views: self.patch_views(|tree| affected[tree])?,
        })
    }

    /// Execute the current query of every tree (one result table per view),
    /// served through the shared result memo — unchanged queries never
    /// re-execute.
    pub fn execute(&self) -> Result<Vec<Table>, Pi2Error> {
        let cache = global_eval_cache();
        let catalog = self.generation.live.snapshot();
        (0..self.queries.len())
            .map(|t| {
                cache
                    .resolved_result_fp(&catalog, self.fps[t], &self.queries[t])
                    .map(|table| (*table).clone())
                    .ok_or_else(|| self.execution_error(t, &self.queries[t]))
            })
            .collect()
    }

    /// Resolve one tree's binding to (query, SQL, fingerprint), through
    /// the session's resolved-binding memo. A miss resolves and raises —
    /// which *is* the validation — and caches the result; a hit skips both
    /// (revisited interaction states are the common case in a session).
    fn resolve_binding(
        &mut self,
        tree: usize,
        map: &BindingMap,
    ) -> Result<(Arc<Query>, Arc<str>, u64), Pi2Error> {
        if let Some((_, query, sql, fp)) = self.resolved[tree].iter().find(|(m, ..)| m == map) {
            return Ok((Arc::clone(query), Arc::clone(sql), *fp));
        }
        let node = resolve(&self.generation.forest.trees[tree], map)
            .map_err(|e| Pi2Error::invalid(format!("event produced invalid state: {e}")))?;
        let query = raise_query(&node)
            .map_err(|e| Pi2Error::invalid(format!("event produced invalid query: {e}")))?;
        let sql: Arc<str> = query.to_string().into();
        let fp = sql_fingerprint(&sql);
        let query = Arc::new(query);
        let cache = &mut self.resolved[tree];
        if cache.len() >= RESOLVED_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((map.clone(), Arc::clone(&query), Arc::clone(&sql), fp));
        Ok((query, sql, fp))
    }

    fn patch_views(
        &self,
        mut include: impl FnMut(usize) -> bool,
    ) -> Result<Vec<PatchView>, Pi2Error> {
        let cache = global_eval_cache();
        let catalog = self.generation.live.snapshot();
        let mut out = Vec::new();
        for (v, view) in self.generation.interface.views.iter().enumerate() {
            if !include(view.tree) {
                continue;
            }
            let table = cache
                .resolved_result_fp(&catalog, self.fps[view.tree], &self.queries[view.tree])
                .ok_or_else(|| self.execution_error(view.tree, &self.queries[view.tree]))?;
            out.push(PatchView {
                view: v,
                tree: view.tree,
                sql: self.sqls[view.tree].to_string(),
                table,
            });
        }
        Ok(out)
    }

    /// The memo caches failures as `None`; re-run uncached to surface the
    /// engine's actual message (rare path).
    fn execution_error(&self, tree: usize, query: &Query) -> Pi2Error {
        let catalog = self.generation.live.snapshot();
        let ctx = ExecContext::new(&catalog);
        match execute(query, &ctx) {
            Err(e) => Pi2Error::Execution(format!("view over tree {tree}: {e}")),
            Ok(_) => Pi2Error::Execution("cached execution failed".into()),
        }
    }
}

/// Per-workload registration record.
struct Registered {
    generation: Generation,
    warmed_queries: usize,
}

/// The session service: catalogs and registered workloads behind a stable
/// serving surface. Registration runs the full generation pipeline once
/// and pre-warms the shared caches; any number of sessions then open over
/// the shared generation, locally or through the JSON wire protocol
/// ([`Pi2Service::handle_json`] in [`crate::protocol`]).
#[derive(Default)]
pub struct Pi2Service {
    workloads: RwLock<HashMap<String, Registered>>,
    /// Wire sessions, sharded (see [`SessionRegistry`]): the id lookup
    /// never crosses a global map lock.
    sessions: SessionRegistry,
    sessions_opened: AtomicU64,
    /// Protocol-v2 shared-session subscriptions (see [`crate::push`]).
    push: PushHub,
    /// Cluster-layer stats provider, installed once by `pi2-cluster` when
    /// this process joins a fleet. Core never depends on the cluster crate;
    /// the closure inverts the dependency.
    cluster: OnceLock<ClusterStatsFn>,
}

/// Snapshot provider a cluster layer installs via
/// [`Pi2Service::set_cluster_stats`].
pub type ClusterStatsFn = Box<dyn Fn() -> ClusterStats + Send + Sync>;

/// Counters the cluster cache/routing layer exposes through `/metrics`
/// and the v2 `negotiate` capability object.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// This process's ring index.
    pub node: u16,
    /// Fleet size (peer count including this node).
    pub nodes: usize,
    /// Shared-cache lookups served by a remote peer.
    pub cluster_hits: u64,
    /// Shared-cache lookups the owning peer missed (or the peer was
    /// skipped by its circuit breaker) — computed locally instead.
    pub cluster_misses: u64,
    /// Peer requests that timed out or failed to connect.
    pub peer_timeouts: u64,
    /// Session requests proxied to their owning node.
    pub proxied_dispatches: u64,
}

impl Pi2Service {
    /// An empty service.
    pub fn new() -> Pi2Service {
        Pi2Service::default()
    }

    /// Set the engine's intra-query worker width for every query this
    /// process executes (`0` = one worker per available core, `1` =
    /// single-threaded). The other parallel-execution knobs (row
    /// threshold, morsel size) keep their current values; use
    /// [`pi2_engine::set_engine_config`] directly to change them too.
    /// Queries over inputs below the row threshold stay on the
    /// single-threaded path regardless, so µs-scale warm dispatch over the
    /// paper-scale tables is unaffected.
    pub fn set_parallelism(&self, width: usize) {
        pi2_engine::set_engine_config(pi2_engine::EngineConfig {
            parallelism: width,
            ..pi2_engine::engine_config()
        });
    }

    /// Register a workload: parse the queries, run generation, pre-warm
    /// the shared caches (input-query results + per-tree mapping
    /// artifacts), and store the generation under `name` (replacing any
    /// previous registration). Returns the shared generation.
    pub fn register(
        &self,
        name: &str,
        catalog: Catalog,
        sqls: &[&str],
        config: &GenerationConfig,
    ) -> Result<Generation, Pi2Error> {
        let generation = Pi2::new(catalog).generate_with(sqls, config)?;
        self.register_generation(name, generation)
    }

    /// Register an already-generated interface (e.g. re-serving a stored
    /// generation without re-searching). Pre-warms the shared caches.
    pub fn register_generation(
        &self,
        name: &str,
        generation: Generation,
    ) -> Result<Generation, Pi2Error> {
        let cache = global_eval_cache();
        let warmed_queries = cache.warm_workload(&generation.workload);
        cache.warm_forest(&generation.forest, &generation.workload);
        self.workloads.write().insert(
            name.to_string(),
            Registered {
                generation: generation.clone(),
                warmed_queries,
            },
        );
        Ok(generation)
    }

    /// The shared generation registered under `name`.
    pub fn generation(&self, name: &str) -> Option<Generation> {
        self.workloads
            .read()
            .get(name)
            .map(|r| r.generation.clone())
    }

    /// Registered workload names, sorted.
    pub fn workload_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.workloads.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Open a session over a registered workload.
    pub fn open(&self, name: &str) -> Result<Session, Pi2Error> {
        let generation = self
            .generation(name)
            .ok_or_else(|| Pi2Error::UnknownWorkload(name.to_string()))?;
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Session::open(&generation)
    }

    /// Open a service-held session and return its wire id (the protocol's
    /// `open` request). The session lives until [`Pi2Service::close_wire`].
    /// The session is bound to its workload's push channel, so a later v2
    /// `subscribe` can join it to the shared patch stream.
    pub fn open_wire(&self, name: &str) -> Result<(u64, Arc<Mutex<Session>>), Pi2Error> {
        let session = self.open(name)?;
        let (id, slot) = self.sessions.insert(session);
        self.push.bind(id, name);
        Ok((id, slot))
    }

    /// The service-held session with the given wire id.
    pub fn wire_session(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.sessions.get(id)
    }

    /// Close a service-held session; returns whether it existed. Any
    /// subscription the session held is dropped with it.
    pub fn close_wire(&self, id: u64) -> bool {
        self.push.drop_session(id);
        self.sessions.remove(id)
    }

    /// The shared-session subscription registry (protocol v2; see
    /// [`crate::push`]).
    pub fn push_hub(&self) -> &PushHub {
        &self.push
    }

    /// Join a fleet: namespace future wire-session ids under this node's
    /// ring index (`id >> 48` recovers the owner) and install the cluster
    /// stats provider surfaced in `/metrics` and `negotiate`. One-shot;
    /// a second install is ignored.
    pub fn set_cluster_stats(&self, node: u16, stats: ClusterStatsFn) {
        self.sessions.set_id_prefix((node as u64) << 48);
        let _ = self.cluster.set(stats);
    }

    /// The cluster layer's counters, if this process is part of a fleet.
    pub fn cluster_stats(&self) -> Option<ClusterStats> {
        self.cluster.get().map(|f| f())
    }

    /// Append rows to a registered workload's live catalogue: advance the
    /// epoch, fold the append into the catalogue fingerprint, record the
    /// live counters, and sweep memo entries keyed to the fingerprint the
    /// append retired (two epochs old — in-flight dispatches and IVM
    /// prev-state reads get one epoch of grace). Open sessions see the
    /// new rows on their next result fetch; pushing data patches to
    /// subscribers is the protocol layer's job
    /// (`handle_request_link` fans out after a wire append succeeds).
    pub fn append(
        &self,
        workload: &str,
        table: &str,
        rows: Table,
    ) -> Result<AppendOutcome, Pi2Error> {
        let generation = self
            .generation(workload)
            .ok_or_else(|| Pi2Error::UnknownWorkload(workload.to_string()))?;
        let receipt = generation
            .live
            .append(table, rows)
            .map_err(|e| Pi2Error::Append(e.to_string()))?;
        let cache = global_eval_cache();
        cache.note_append(receipt.rows);
        if let Some(fp) = receipt.evict_fingerprint {
            cache.evict_catalog(fp);
        }
        let total_rows = receipt
            .catalog
            .table(&receipt.table)
            .map(|m| m.table.num_rows())
            .unwrap_or(0);
        Ok(AppendOutcome {
            table: receipt.table,
            epoch: receipt.epoch,
            rows: receipt.rows,
            total_rows,
        })
    }

    /// Service-wide metrics: per-workload search/cost/warm stats plus the
    /// shared-cache counters session traffic exercises.
    pub fn metrics(&self) -> ServiceMetrics {
        let workloads = {
            let guard = self.workloads.read();
            let mut ws: Vec<WorkloadMetrics> = guard
                .iter()
                .map(|(name, r)| WorkloadMetrics {
                    name: name.clone(),
                    views: r.generation.interface.views.len(),
                    interactions: r.generation.interface.interactions.len(),
                    cost: r.generation.cost,
                    search: r.generation.mcts_stats.clone(),
                    warmed_queries: r.warmed_queries,
                })
                .collect();
            ws.sort_by(|a, b| a.name.cmp(&b.name));
            ws
        };
        let (reward_entries, action_entries) = pi2_search::transposition_table_sizes();
        ServiceMetrics {
            workloads,
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            open_wire_sessions: self.sessions.len(),
            result_cache: global_eval_cache().result_stats(),
            reward_table_entries: reward_entries,
            action_table_entries: action_entries,
            push: self.push.stats(),
            live: global_eval_cache().live_stats(),
            cluster: self.cluster_stats(),
        }
    }
}

/// What a successful [`Pi2Service::append`] did, echoed in the protocol's
/// `appended` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendOutcome {
    /// The table appended to, in its registered case.
    pub table: String,
    /// The catalogue epoch the append produced.
    pub epoch: u64,
    /// Rows appended.
    pub rows: usize,
    /// The table's total row count after the append.
    pub total_rows: usize,
}

/// Snapshot of one registered workload for [`ServiceMetrics`].
#[derive(Debug, Clone)]
pub struct WorkloadMetrics {
    /// Registration name.
    pub name: String,
    /// Number of views in the generated interface.
    pub views: usize,
    /// Number of interactions in the generated interface.
    pub interactions: usize,
    /// Full §5 cost of the served interface.
    pub cost: f64,
    /// Search statistics of the generation run.
    pub search: SearchStats,
    /// Input queries whose results were pre-warmed at registration.
    pub warmed_queries: usize,
}

/// Service-wide metrics snapshot (see [`Pi2Service::metrics`]).
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Per-workload metrics, sorted by name.
    pub workloads: Vec<WorkloadMetrics>,
    /// Sessions opened over the service's lifetime (local + wire).
    pub sessions_opened: u64,
    /// Service-held wire sessions currently open.
    pub open_wire_sessions: usize,
    /// Hit/miss counters of the shared executed-result memo.
    pub result_cache: CacheStats,
    /// Entries in the process-global MCTS reward transposition table.
    pub reward_table_entries: usize,
    /// Entries in the process-global validated-action table.
    pub action_table_entries: usize,
    /// Shared-session subscription counters (protocol v2 push).
    pub push: PushStats,
    /// Live-data counters (appends, epoch bumps, IVM hits/fallbacks,
    /// invalidated views).
    pub live: LiveStats,
    /// Cluster counters, when this process is part of a fleet.
    pub cluster: Option<ClusterStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::GenerationConfig;
    use pi2_data::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let rows: Vec<Vec<Value>> = (0..24)
            .map(|i| vec![Value::Int(i % 4), Value::Int(10 * (i % 6))])
            .collect();
        let t = Table::from_rows(vec![("a", DataType::Int), ("b", DataType::Int)], rows).unwrap();
        c.add_table("T", t, vec![]);
        c
    }

    const SQLS: [&str; 2] = [
        "SELECT a, count(*) FROM T WHERE b = 10 GROUP BY a",
        "SELECT a, count(*) FROM T WHERE b = 20 GROUP BY a",
    ];

    #[test]
    fn parallelism_knob_reaches_engine_config() {
        let before = pi2_engine::engine_config();
        let service = Pi2Service::new();
        service.set_parallelism(3);
        let cfg = pi2_engine::engine_config();
        assert_eq!(cfg.parallelism, 3);
        // The other knobs are left alone.
        assert_eq!(cfg.parallel_row_threshold, before.parallel_row_threshold);
        assert_eq!(cfg.morsel_rows, before.morsel_rows);
        service.set_parallelism(before.parallelism);
        assert_eq!(pi2_engine::engine_config(), before);
    }

    #[test]
    fn register_open_dispatch_delta() {
        let service = Pi2Service::new();
        let g = service
            .register("t", catalog(), &SQLS, &GenerationConfig::quick())
            .unwrap();
        assert_eq!(service.workload_names(), vec!["t".to_string()]);

        let mut session = service.open("t").unwrap();
        let full = session.refresh().unwrap();
        assert_eq!(full.views.len(), g.interface.views.len());
        assert_eq!(full.seq, 0);

        // Find an event that changes some query; its patch must be a
        // non-empty delta, and repeating it must be an empty delta.
        let mut driven = None;
        for ix in 0..g.interface.interactions.len() {
            for event in [
                Event::Select {
                    interaction: ix,
                    option: 1,
                },
                Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(30)],
                },
                Event::SetValues {
                    interaction: ix,
                    values: vec![Value::Int(20), Value::Int(40)],
                },
            ] {
                if let Ok(patch) = session.dispatch(&event) {
                    if !patch.is_empty() {
                        driven = Some((event, patch));
                        break;
                    }
                }
            }
            if driven.is_some() {
                break;
            }
        }
        let (event, patch) = driven.expect("some event changes a query");
        assert!(patch.seq > 0);
        // Re-dispatching the identical event changes nothing → empty patch.
        let repeat = session.dispatch(&event).unwrap();
        assert!(
            repeat.is_empty(),
            "repeat of an identical event must be an empty delta"
        );
        assert_eq!(repeat.seq, patch.seq + 1);
    }

    #[test]
    fn unknown_workload_is_structured() {
        let service = Pi2Service::new();
        match service.open("nope") {
            Err(Pi2Error::UnknownWorkload(name)) => assert_eq!(name, "nope"),
            other => panic!("expected UnknownWorkload, got {other:?}"),
        }
    }

    #[test]
    fn sessions_share_memoised_results() {
        let service = Pi2Service::new();
        let g = service
            .register("t", catalog(), &SQLS, &GenerationConfig::quick())
            .unwrap();
        let a = Session::open(&g).unwrap().refresh().unwrap();
        let b = Session::open(&g).unwrap().refresh().unwrap();
        for (va, vb) in a.views.iter().zip(b.views.iter()) {
            assert!(
                Arc::ptr_eq(&va.table, &vb.table),
                "identical states must share one executed table"
            );
        }
    }

    #[test]
    fn metrics_reflect_registrations() {
        let service = Pi2Service::new();
        service
            .register("m", catalog(), &SQLS, &GenerationConfig::quick())
            .unwrap();
        let _ = service.open("m").unwrap();
        let m = service.metrics();
        assert_eq!(m.workloads.len(), 1);
        assert_eq!(m.workloads[0].name, "m");
        assert_eq!(m.workloads[0].warmed_queries, 2);
        assert!(m.sessions_opened >= 1);
        assert!(m.result_cache.hits + m.result_cache.misses > 0);
    }
}
