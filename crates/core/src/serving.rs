//! Serving glue: [`Pi2Service`] as the protocol backend of the HTTP
//! server.
//!
//! `pi2-server` is protocol-blind — it parses HTTP, orders requests
//! through per-session mailboxes, and applies backpressure; everything it
//! needs to know about the v1 JSON protocol it asks through
//! [`pi2_server::WireService`], implemented here. The response body for a
//! `POST /v1` is exactly what [`Pi2Service::handle_json`] would return for
//! the same message (the server goes through
//! [`Pi2Service::handle_request`], the shared core), and every
//! transport-generated rejection — unknown path, oversized body,
//! backpressure, overload — is phrased as a standard protocol `error`
//! message with a stable code, so clients never need a second error
//! vocabulary.
//!
//! ```no_run
//! use pi2::{serve, Pi2Service};
//! use pi2::server::ServerConfig;
//! use std::sync::Arc;
//!
//! let service = Arc::new(Pi2Service::new());
//! // … register workloads …
//! let server = serve(service, ServerConfig::default()).unwrap();
//! println!("serving on http://{}", server.local_addr());
//! ```

use crate::error::Pi2Error;
use crate::protocol::{error_to_json, metrics_response, request_from_json, Request};
use crate::service::Pi2Service;
use pi2_server::{PushLink, Reject, Server, ServerConfig, WireService};
use std::sync::Arc;

impl WireService for Pi2Service {
    type Request = Request;

    fn parse(&self, body: &str) -> Result<Request, (u16, String)> {
        request_from_json(body).map_err(|e| (e.http_status(), error_to_json(&e)))
    }

    fn route_key(&self, body: &str) -> Option<u64> {
        // Reactor-side routing: one substring find plus a digit scan over
        // the raw body — no JSON decode. Every session-addressed request
        // type (`event`, `close`, `subscribe`, `unsubscribe`) carries a
        // top-level `"session": <int>` member; nothing else in a request
        // uses that key. A false positive (e.g. the word in a string
        // payload) only costs mailbox placement — the worker still
        // decodes and validates the real request.
        let at = body.find("\"session\"")?;
        let rest = body[at + "\"session\"".len()..].trim_start();
        let rest = rest.strip_prefix(':')?.trim_start();
        let digits = rest.split(|c: char| !c.is_ascii_digit()).next()?;
        digits.parse().ok()
    }

    fn session_of(&self, request: &Request) -> Option<u64> {
        match request {
            // Session-addressed requests mutate or read session state:
            // they order through the session's mailbox (subscribe too, so
            // a subscription serializes against the session's own event
            // stream). Opens/describes/metrics/negotiate are session-free
            // and dispatch on any worker.
            Request::Event { session, .. }
            | Request::Close { session }
            | Request::Subscribe { session }
            | Request::Unsubscribe { session } => Some(*session),
            Request::Open { .. } | Request::Describe { .. } | Request::Metrics => None,
            // Appends address a workload's live catalogue, not a session:
            // the catalogue's own lock serializes concurrent appends, and
            // subscriber fan-out takes each session's lock as it goes.
            Request::Negotiate | Request::Append { .. } => None,
        }
    }

    fn handle(&self, request: Request) -> (u16, String) {
        match self.handle_request(request) {
            Ok(body) => (200, body),
            Err(e) => (e.http_status(), error_to_json(&e)),
        }
    }

    fn handle_link(&self, request: Request, link: Option<&PushLink>) -> (u16, String) {
        match self.handle_request_link(request, link) {
            Ok(body) => (200, body),
            Err(e) => (e.http_status(), error_to_json(&e)),
        }
    }

    fn connection_closed(&self, conn: u64) {
        self.push_hub().drop_conn(conn);
    }

    fn metrics_body(&self) -> String {
        metrics_response(&self.metrics())
    }

    fn reject_body(&self, reject: &Reject) -> String {
        error_to_json(&match reject {
            Reject::BadRequest(detail) => Pi2Error::Protocol(detail.clone()),
            Reject::NotFound(path) => Pi2Error::Protocol(format!(
                "no such endpoint {path:?} (POST /v1, GET /ws, GET /metrics, GET /healthz)"
            )),
            Reject::MethodNotAllowed(method) => {
                Pi2Error::Protocol(format!("method {method} not allowed on this endpoint"))
            }
            Reject::PayloadTooLarge { limit } => {
                Pi2Error::Protocol(format!("request body exceeds the {limit}-byte limit"))
            }
            Reject::Backpressure { session } => Pi2Error::Backpressure { session: *session },
            Reject::Overloaded(detail) => Pi2Error::Overloaded(detail.clone()),
            Reject::ShuttingDown => Pi2Error::Overloaded("server is shutting down".into()),
            Reject::Internal(detail) => Pi2Error::Runtime(detail.clone()),
        })
    }
}

/// Boot the HTTP server over a service. Equivalent to
/// [`Server::start`] — this alias just keeps the common case one import.
pub fn serve(
    service: Arc<Pi2Service>,
    config: ServerConfig,
) -> std::io::Result<Server<Pi2Service>> {
    Server::start(service, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_speak_the_protocol_error_space() {
        let service = Pi2Service::new();
        let cases: Vec<(Reject, u16, &str)> = vec![
            (Reject::BadRequest("x".into()), 400, "protocol"),
            (Reject::NotFound("/x".into()), 404, "protocol"),
            (Reject::MethodNotAllowed("PUT".into()), 405, "protocol"),
            (Reject::PayloadTooLarge { limit: 64 }, 413, "protocol"),
            (Reject::Backpressure { session: 7 }, 429, "backpressure"),
            (Reject::Overloaded("full".into()), 503, "overloaded"),
            (Reject::ShuttingDown, 503, "overloaded"),
            (Reject::Internal("boom".into()), 500, "runtime"),
        ];
        for (reject, status, code) in cases {
            assert_eq!(reject.status(), status, "{reject:?}");
            let body = service.reject_body(&reject);
            assert!(
                body.contains(&format!("\"code\":\"{code}\"")),
                "{reject:?}: {body}"
            );
            assert!(body.contains("\"type\":\"error\""), "{body}");
        }
    }

    #[test]
    fn parse_failures_match_handle_json_bytes() {
        let service = Pi2Service::new();
        for bad in ["not json", "{\"v\":1}", "{\"v\":9,\"type\":\"metrics\"}"] {
            let (status, body) = match WireService::parse(&service, bad) {
                Err(pair) => pair,
                Ok(_) => panic!("{bad:?} must not parse"),
            };
            assert_eq!(status, 400);
            assert_eq!(
                body,
                service.handle_json(bad),
                "transport and in-process bodies must agree"
            );
        }
    }

    #[test]
    fn handle_matches_handle_json_bytes() {
        let service = Pi2Service::new();
        // Unknown workload / unknown session flow through handle() with
        // the same bytes handle_json produces, plus the right status.
        let open = "{\"v\":1,\"type\":\"open\",\"workload\":\"nope\"}";
        let parsed = WireService::parse(&service, open).unwrap();
        let (status, body) = WireService::handle(&service, parsed);
        assert_eq!(status, 404);
        assert_eq!(body, service.handle_json(open));
        let event =
            "{\"v\":1,\"type\":\"event\",\"session\":5,\"kind\":\"clear\",\"interaction\":0}";
        let parsed = WireService::parse(&service, event).unwrap();
        assert_eq!(WireService::session_of(&service, &parsed), Some(5));
        let (status, body) = WireService::handle(&service, parsed);
        assert_eq!(status, 404);
        assert_eq!(body, service.handle_json(event));
    }
}
