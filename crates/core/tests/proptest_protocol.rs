//! Property tests for the versioned wire protocol: `Event → JSON → Event`
//! is the identity, and `Patch → JSON → parse` re-encodes byte-identically
//! (the canonical equality for patches, robust to value-storage coercion
//! inside columnar tables).

use pi2::{
    event_from_json, event_to_json, patch_from_json, patch_to_json, DataType, Event, Patch,
    PatchView, Table, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Scalars covering every [`Value`] variant, including integral floats
/// (exercising the `{"f":…}` tag) and strings that need escaping. NaN is
/// excluded: `Event` equality is `PartialEq` over `f64`.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1.0e9f64..1.0e9).prop_map(Value::Float),
        any::<i32>().prop_map(|i| Value::Float(i as f64)),
        "[a-zA-Z0-9 _'\"\\\\:,{}]{0,12}".prop_map(Value::Str),
        "[é☃日a-z\n\t]{0,6}".prop_map(Value::Str),
        (-100_000i64..100_000).prop_map(Value::Date),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    let ix = 0usize..64;
    prop_oneof![
        (ix.clone(), 0usize..10).prop_map(|(interaction, option)| Event::Select {
            interaction,
            option
        }),
        (ix.clone(), any::<bool>()).prop_map(|(interaction, on)| Event::Toggle { interaction, on }),
        (ix.clone(), prop::collection::vec(arb_value(), 0..6)).prop_map(|(interaction, values)| {
            Event::SetValues {
                interaction,
                values,
            }
        }),
        (ix.clone(), prop::collection::vec(arb_value(), 0..6)).prop_map(|(interaction, values)| {
            Event::SetSet {
                interaction,
                values,
            }
        }),
        (ix.clone(), prop::collection::vec(0usize..16, 0..6)).prop_map(|(interaction, options)| {
            Event::SelectMany {
                interaction,
                options,
            }
        }),
        ix.prop_map(|interaction| Event::Clear { interaction }),
    ]
}

fn arb_dtype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::Int),
        Just(DataType::Float),
        Just(DataType::Str),
        Just(DataType::Date),
    ]
}

/// A table whose cells may disagree with their column's declared type —
/// the `Mixed` escape hatch the tagged cell encoding exists for.
fn arb_table() -> impl Strategy<Value = Table> {
    (
        prop::collection::vec(("[a-z]{1,6}", arb_dtype()), 1..4),
        0usize..5,
    )
        .prop_flat_map(|(cols, nrows)| {
            let ncols = cols.len();
            prop::collection::vec(
                prop::collection::vec(arb_value(), ncols..ncols + 1),
                nrows..nrows + 1,
            )
            .prop_map(move |rows| {
                let schema: Vec<(&str, DataType)> =
                    cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                Table::from_rows(schema, rows).expect("arity matches by construction")
            })
        })
}

fn arb_patch() -> impl Strategy<Value = Patch> {
    (
        0u64..10_000,
        prop::collection::vec((0usize..8, 0usize..8, "[ -~]{0,30}", arb_table()), 0..3),
    )
        .prop_map(|(seq, views)| Patch {
            seq,
            views: views
                .into_iter()
                .map(|(view, tree, sql, table)| PatchView {
                    view,
                    tree,
                    sql,
                    table: Arc::new(table),
                })
                .collect(),
        })
}

/// A string column built from a small alphabet (so the dictionary cutoff
/// triggers), returned in both representations over identical data.
fn arb_string_column() -> impl Strategy<Value = (pi2::ColumnData, pi2::ColumnData)> {
    prop::collection::vec(
        prop_oneof![
            Just(None),
            prop_oneof![
                Just("NY"),
                Just("LA"),
                Just("SF"),
                Just("a \"b\""),
                Just("é☃")
            ]
            .prop_map(Some)
        ],
        0..24,
    )
    .prop_map(|cells| {
        let mut plain = pi2::ColumnData::new_typed(DataType::Str);
        for c in &cells {
            plain.push(match c {
                None => Value::Null,
                Some(s) => Value::Str(s.to_string()),
            });
        }
        let dict = plain.clone().dict_encode();
        (plain, dict)
    })
}

proptest! {
    /// Dictionary wire form round-trips: encoding a dict column, decoding
    /// it, and re-encoding is byte-identical — and decodes to the same
    /// *values* as the plain `Utf8` encoding of identical data.
    #[test]
    fn dict_wire_form_round_trips((plain, dict) in arb_string_column()) {
        use pi2_data::{Column, Schema};
        let schema = Schema::new(vec![Column::new("s", DataType::Str)]);
        let plain_table = Table::from_columns(schema.clone(), vec![plain]).unwrap();
        let dict_table = Table::from_columns(schema, vec![dict]).unwrap();
        let plain_json = pi2_data::wire::table_to_json(&plain_table);
        let dict_json = pi2_data::wire::table_to_json(&dict_table);
        let decode = |j: &str| {
            let parsed = pi2::Json::parse(j).unwrap();
            pi2::protocol::table_from_json(&parsed)
                .unwrap_or_else(|e| panic!("decode of {j} failed: {e}"))
        };
        // Both forms decode to value-equal tables (Table::eq is
        // representation-agnostic).
        let from_plain = decode(&plain_json);
        let from_dict = decode(&dict_json);
        prop_assert_eq!(&from_plain, &from_dict);
        prop_assert_eq!(&from_plain, &plain_table);
        // Each form re-encodes byte-identically.
        prop_assert_eq!(pi2_data::wire::table_to_json(&from_plain), plain_json);
        prop_assert_eq!(pi2_data::wire::table_to_json(&from_dict), dict_json);
    }

    #[test]
    fn event_json_round_trip(event in arb_event()) {
        let json = event_to_json(&event);
        let back = event_from_json(&json)
            .unwrap_or_else(|e| panic!("decode of {json} failed: {e}"));
        prop_assert_eq!(event, back, "wire form: {}", json);
    }

    #[test]
    fn patch_json_round_trip(patch in arb_patch()) {
        let json = patch_to_json(&patch);
        let back = patch_from_json(&json)
            .unwrap_or_else(|e| panic!("decode of {json} failed: {e}"));
        prop_assert_eq!(back.seq, patch.seq);
        prop_assert_eq!(back.views.len(), patch.views.len());
        for (a, b) in patch.views.iter().zip(back.views.iter()) {
            prop_assert_eq!(a.view, b.view);
            prop_assert_eq!(a.tree, b.tree);
            prop_assert_eq!(&a.sql, &b.sql);
            prop_assert_eq!(a.table.num_rows(), b.table.num_rows());
        }
        // Re-encoding the decoded patch is byte-identical: the codec is a
        // bijection on its own output.
        prop_assert_eq!(patch_to_json(&back), json);
    }

    /// The v2 `append` request round-trips through the codec: the rows
    /// table survives value-exactly and the re-encoded request is
    /// byte-identical (same canonical-equality contract as patches).
    #[test]
    fn append_request_round_trips(
        workload in "[a-z]{1,8}",
        table in "[a-zA-Z_]{1,8}",
        rows in arb_table(),
    ) {
        let request = pi2::Request::Append { workload, table, rows };
        let json = pi2::request_to_json(&request);
        let back = pi2::request_from_json(&json)
            .unwrap_or_else(|e| panic!("decode of {json} failed: {e}"));
        prop_assert_eq!(&back, &request, "wire form: {}", &json);
        prop_assert_eq!(pi2::request_to_json(&back), json);
    }

    #[test]
    fn patch_decode_rejects_truncations(patch in arb_patch()) {
        let json = patch_to_json(&patch);
        // Chopping the document anywhere strictly inside must fail cleanly
        // (never panic, never mis-decode).
        let chars: Vec<char> = json.chars().collect();
        for cut in [chars.len() / 3, chars.len() / 2, chars.len() - 1] {
            if cut == 0 || cut >= chars.len() {
                continue;
            }
            let truncated: String = chars[..cut].iter().collect();
            prop_assert!(patch_from_json(&truncated).is_err());
        }
    }
}

/// The v2 `negotiate` answer is a compatibility contract: clients switch
/// on the structured `capabilities` object, so its shape is pinned
/// byte-exactly. `ws_push` reflects the connection (none here) and
/// `cluster` whether the process joined a fleet (it has not); the legacy
/// top-level `push` flag stays for v2 clients that predate capabilities.
#[test]
fn negotiate_capabilities_shape_is_pinned() {
    let service = pi2::Pi2Service::new();
    let answer = service.handle_json("{\"v\":2,\"type\":\"negotiate\"}");
    assert_eq!(
        answer,
        "{\"v\":2,\"type\":\"protocols\",\"versions\":[1,2],\"push\":false,\
         \"capabilities\":{\"versions\":[1,2],\"ws_push\":false,\"cluster\":false,\
         \"live\":{\"append\":true,\"ivm\":[\"filter\",\"group\",\"aggregate\",\"project\"]}}}"
    );
    // The object stays machine-readable through the parser too.
    let caps = pi2::Json::parse(&answer)
        .unwrap()
        .get("capabilities")
        .cloned()
        .expect("capabilities present");
    assert_eq!(
        caps.get("cluster").and_then(pi2::Json::as_bool),
        Some(false)
    );
    assert_eq!(
        caps.get("ws_push").and_then(pi2::Json::as_bool),
        Some(false)
    );
    let versions: Vec<i64> = caps
        .get("versions")
        .and_then(|v| v.as_arr())
        .expect("versions array")
        .iter()
        .filter_map(pi2::Json::as_i64)
        .collect();
    assert_eq!(versions, [1, 2]);
    let live = caps.get("live").expect("live capability present");
    assert_eq!(live.get("append").and_then(pi2::Json::as_bool), Some(true));
    let ivm: Vec<&str> = live
        .get("ivm")
        .and_then(|v| v.as_arr())
        .expect("ivm shape list")
        .iter()
        .filter_map(pi2::Json::as_str)
        .collect();
    assert_eq!(ivm, ["filter", "group", "aggregate", "project"]);
}
