//! The database catalogue.
//!
//! PI2 consults the catalogue for: fully-qualified attribute resolution and
//! domains (§3.2.1 type inference), function return types, cardinality
//! statistics (§4.1), and primary keys for functional-dependency checks
//! (Table 1 constraints).

use crate::error::DataError;
use crate::stats::ColumnStats;
use crate::table::Table;
use crate::types::DataType;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Metadata + data for one base table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// The name.
    pub name: String,
    /// The table.
    pub table: Table,
    /// Column names forming the primary key (may be empty).
    pub primary_key: Vec<String>,
    /// Per-column statistics, parallel to `table.schema.columns`.
    pub stats: Vec<ColumnStats>,
}

/// Return-type signature for a SQL function known to the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionSig {
    /// Always returns the given type (e.g. `count` → int).
    Fixed(DataType),
    /// Returns the type of its first argument (e.g. `min`, `max`, `sum`).
    SameAsArg,
    /// Numeric aggregate that returns float (e.g. `avg`).
    Float,
}

/// The rows one table gained in a single append, relative to a known base.
#[derive(Debug, Clone)]
pub struct TableDelta {
    /// Row count of the table *before* the append.
    pub base_rows: usize,
    /// The appended rows as a standalone (flat) table chunk.
    pub rows: Arc<Table>,
}

/// What changed between a catalogue version and its predecessor — enough
/// for incremental view maintenance to execute only the delta and for
/// caches to carry entries forward across an append that missed them.
#[derive(Debug, Clone)]
pub struct CatalogDelta {
    /// Fingerprint of the catalogue this delta was applied to.
    pub prev_fingerprint: u64,
    /// Epoch of the catalogue carrying this delta (predecessor epoch + 1).
    pub epoch: u64,
    /// Per-table appended rows, keyed by lowercased table name.
    pub tables: BTreeMap<String, TableDelta>,
}

/// An in-memory database catalogue: tables plus function signatures.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableMeta>,
    functions: BTreeMap<String, FunctionSig>,
    /// Cheap content fingerprint (names, schemas, row counts, domains) used
    /// to key cross-catalogue caches such as the executor's result cache.
    fingerprint: u64,
    /// Monotone append counter; bumped by [`Catalog::append_rows`] and
    /// folded into the fingerprint so every memo keyed on it invalidates
    /// for free.
    epoch: u64,
    /// What the latest [`Catalog::append_rows`] changed, or `None` when
    /// this catalogue version was not produced by an append.
    delta: Option<Arc<CatalogDelta>>,
}

impl Catalog {
    /// An empty catalogue pre-populated with the standard function library.
    pub fn new() -> Self {
        let mut c = Catalog {
            tables: BTreeMap::new(),
            functions: BTreeMap::new(),
            fingerprint: 0,
            epoch: 0,
            delta: None,
        };
        c.register_function("count", FunctionSig::Fixed(DataType::Int));
        c.register_function("sum", FunctionSig::SameAsArg);
        c.register_function("min", FunctionSig::SameAsArg);
        c.register_function("max", FunctionSig::SameAsArg);
        c.register_function("avg", FunctionSig::Float);
        c.register_function("abs", FunctionSig::SameAsArg);
        c.register_function("date", FunctionSig::Fixed(DataType::Date));
        c.register_function("today", FunctionSig::Fixed(DataType::Date));
        c
    }

    /// Register (or replace) a table, computing its statistics.
    pub fn add_table(&mut self, name: impl Into<String>, table: Table, primary_key: Vec<&str>) {
        let name = name.into();
        let stats = (0..table.num_columns())
            .map(|i| ColumnStats::compute(&table, i))
            .collect();
        let meta = TableMeta {
            name: name.clone(),
            table,
            primary_key: primary_key.into_iter().map(|s| s.to_string()).collect(),
            stats,
        };
        // Update the content fingerprint. Process-global caches (executed
        // results, mapping artifacts, type inference) key on it, so it must
        // distinguish catalogues by *data*, not just by schema summaries —
        // hash every cell. add_table already scans the table for statistics,
        // so this stays a constant number of passes over the data.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint.hash(&mut h);
        meta.name.hash(&mut h);
        meta.table.num_rows().hash(&mut h);
        for (i, c) in meta.table.schema.columns.iter().enumerate() {
            c.name.hash(&mut h);
            format!("{}", c.dtype).hash(&mut h);
            if let Some(stat) = meta.stats.get(i) {
                stat.distinct_count.hash(&mut h);
                if let (Some(min), Some(max)) = (&stat.min, &stat.max) {
                    min.hash(&mut h);
                    max.hash(&mut h);
                }
            }
        }
        for i in 0..meta.table.num_columns() {
            meta.table.col(i).hash_content(&mut h);
        }
        meta.primary_key.hash(&mut h);
        self.fingerprint = h.finish();
        // A wholesale (re)registration is not an append: deltas describe a
        // single append step and this isn't one.
        self.delta = None;
        self.tables.insert(name.to_ascii_lowercase(), meta);
    }

    /// Append `delta` rows to table `name`, returning the *next* catalogue
    /// version. The receiver is untouched (readers keep scanning their
    /// snapshot); the new version shares all existing chunk storage by
    /// `Arc`, merges column statistics incrementally, and folds the delta's
    /// content into the fingerprint in O(appended rows). The fold is
    /// content-based — two catalogues that apply identical appends converge
    /// to identical fingerprints, which keeps a fleet's shared caches
    /// coherent.
    pub fn append_rows(&self, name: &str, delta: Table) -> Result<Catalog, DataError> {
        let meta = self.require_table(name)?;
        if delta.num_columns() != meta.table.num_columns() {
            return Err(DataError::ArityMismatch {
                expected: meta.table.num_columns(),
                found: delta.num_columns(),
            });
        }
        let base_rows = meta.table.num_rows();
        let appended = meta
            .table
            .append_table(&delta, crate::table::chunk_rows())?;
        // Per-column stats: one O(delta) pass over the appended rows, then
        // an O(distinct) merge — never a rescan of the base table.
        let delta_stats: Vec<ColumnStats> = (0..delta.num_columns())
            .map(|i| ColumnStats::compute(&delta, i))
            .collect();
        let stats: Vec<ColumnStats> = meta
            .stats
            .iter()
            .zip(delta_stats.iter())
            .enumerate()
            .map(|(i, (base, extra))| {
                base.merge(extra, meta.table.non_null_count(i), delta.non_null_count(i))
            })
            .collect();
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint.hash(&mut h);
        (self.epoch + 1).hash(&mut h);
        "append".hash(&mut h);
        let key = name.to_ascii_lowercase();
        key.hash(&mut h);
        appended.num_rows().hash(&mut h);
        for i in 0..delta.num_columns() {
            delta.col(i).hash_content(&mut h);
        }
        let mut next = self.clone();
        next.fingerprint = h.finish();
        next.epoch = self.epoch + 1;
        let delta = Arc::new(delta);
        next.delta = Some(Arc::new(CatalogDelta {
            prev_fingerprint: self.fingerprint,
            epoch: next.epoch,
            tables: BTreeMap::from([(
                key.clone(),
                TableDelta {
                    base_rows,
                    rows: Arc::clone(&delta),
                },
            )]),
        }));
        let slot = next.tables.get_mut(&key).expect("checked above");
        slot.table = appended;
        slot.stats = stats;
        Ok(next)
    }

    /// The catalogue's content fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The append epoch: 0 at registration, +1 per [`Catalog::append_rows`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// What the latest append changed, when this version came from one.
    pub fn delta(&self) -> Option<&Arc<CatalogDelta>> {
        self.delta.as_ref()
    }

    /// Case-insensitive table lookup.
    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Require table.
    pub fn require_table(&self, name: &str) -> Result<&TableMeta, DataError> {
        self.table(name)
            .ok_or_else(|| DataError::UnknownTable(name.to_string()))
    }

    /// Table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.values().map(|m| m.name.as_str())
    }

    /// Look up the type of `table.column`; `None` if either is unknown.
    pub fn column_type(&self, table: &str, column: &str) -> Option<DataType> {
        let meta = self.table(table)?;
        let idx = meta.table.schema.index_of(column)?;
        Some(meta.table.schema.columns[idx].dtype)
    }

    /// Statistics for `table.column`.
    pub fn column_stats(&self, table: &str, column: &str) -> Option<&ColumnStats> {
        let meta = self.table(table)?;
        let idx = meta.table.schema.index_of(column)?;
        meta.stats.get(idx)
    }

    /// Find the unique table containing an unqualified column name. Errors
    /// with `AmbiguousColumn` when several candidate tables define it.
    pub fn resolve_column(&self, column: &str) -> Result<(&TableMeta, usize), DataError> {
        let mut hit: Option<(&TableMeta, usize)> = None;
        for meta in self.tables.values() {
            if let Some(idx) = meta.table.schema.index_of(column) {
                if hit.is_some() {
                    return Err(DataError::AmbiguousColumn(column.to_string()));
                }
                hit = Some((meta, idx));
            }
        }
        hit.ok_or_else(|| DataError::UnknownColumn(column.to_string()))
    }

    /// Whether `columns` is a superset of some table's primary key — i.e.
    /// the projection is functionally determined by those columns.
    pub fn covers_primary_key(&self, table: &str, columns: &[&str]) -> bool {
        let Some(meta) = self.table(table) else {
            return false;
        };
        if meta.primary_key.is_empty() {
            return false;
        }
        meta.primary_key
            .iter()
            .all(|k| columns.iter().any(|c| c.eq_ignore_ascii_case(k)))
    }

    /// Register function.
    pub fn register_function(&mut self, name: &str, sig: FunctionSig) {
        // Function signatures feed type inference, whose results are cached
        // by catalogue fingerprint — fold registrations in too.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint.hash(&mut h);
        name.to_ascii_lowercase().hash(&mut h);
        format!("{sig:?}").hash(&mut h);
        self.fingerprint = h.finish();
        self.delta = None;
        self.functions.insert(name.to_ascii_lowercase(), sig);
    }

    /// Function.
    pub fn function(&self, name: &str) -> Option<FunctionSig> {
        self.functions.get(&name.to_ascii_lowercase()).copied()
    }

    /// Return type of `name(arg_type)` per the signature registry; `None`
    /// when the function is unknown.
    pub fn function_return_type(&self, name: &str, arg_type: Option<DataType>) -> Option<DataType> {
        match self.function(name)? {
            FunctionSig::Fixed(t) => Some(t),
            FunctionSig::SameAsArg => arg_type,
            FunctionSig::Float => Some(DataType::Float),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn catalog_with_t() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_rows(
            vec![
                ("p", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Int),
            ],
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(2), Value::Int(20), Value::Int(200)],
            ],
        )
        .unwrap();
        c.add_table("T", t, vec!["p"]);
        c
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let c = catalog_with_t();
        assert!(c.table("t").is_some());
        assert!(c.table("T").is_some());
        assert_eq!(c.table("T").unwrap().name, "T");
    }

    #[test]
    fn column_types_and_stats() {
        let c = catalog_with_t();
        assert_eq!(c.column_type("T", "a"), Some(DataType::Int));
        assert_eq!(c.column_type("T", "zzz"), None);
        let s = c.column_stats("t", "a").unwrap();
        assert_eq!(s.min, Some(Value::Int(10)));
        assert_eq!(s.max, Some(Value::Int(20)));
    }

    #[test]
    fn resolve_unqualified_column() {
        let c = catalog_with_t();
        let (meta, idx) = c.resolve_column("b").unwrap();
        assert_eq!(meta.name, "T");
        assert_eq!(idx, 2);
        assert_eq!(
            c.resolve_column("missing").unwrap_err(),
            DataError::UnknownColumn("missing".into())
        );
    }

    #[test]
    fn ambiguous_column_detected() {
        let mut c = catalog_with_t();
        let u = Table::from_rows(vec![("a", DataType::Int)], vec![]).unwrap();
        c.add_table("U", u, vec![]);
        assert_eq!(
            c.resolve_column("a").unwrap_err(),
            DataError::AmbiguousColumn("a".into())
        );
    }

    #[test]
    fn primary_key_coverage() {
        let c = catalog_with_t();
        assert!(c.covers_primary_key("T", &["p", "a"]));
        assert!(!c.covers_primary_key("T", &["a"]));
        assert!(!c.covers_primary_key("missing", &["p"]));
    }

    fn delta_rows(vals: &[(i64, i64, i64)]) -> Table {
        Table::from_rows(
            vec![
                ("p", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Int),
            ],
            vals.iter()
                .map(|(p, a, b)| vec![Value::Int(*p), Value::Int(*a), Value::Int(*b)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn append_rows_is_functional_and_bumps_epoch() {
        let c0 = catalog_with_t();
        assert_eq!(c0.epoch(), 0);
        assert!(c0.delta().is_none());
        let c1 = c0.append_rows("t", delta_rows(&[(3, 30, 300)])).unwrap();
        assert_eq!(c0.table("T").unwrap().table.num_rows(), 2, "base untouched");
        assert_eq!(c1.table("T").unwrap().table.num_rows(), 3);
        assert_eq!(c1.epoch(), 1);
        assert_ne!(c0.fingerprint(), c1.fingerprint());
        let d = c1.delta().expect("append records a delta");
        assert_eq!(d.prev_fingerprint, c0.fingerprint());
        assert_eq!(d.tables["t"].base_rows, 2);
        assert_eq!(d.tables["t"].rows.num_rows(), 1);
    }

    #[test]
    fn append_fingerprint_is_content_deterministic() {
        // Two nodes applying the same append to the same catalogue must
        // converge — shared caches across a fleet key on the fingerprint.
        let a = catalog_with_t()
            .append_rows("T", delta_rows(&[(3, 30, 300)]))
            .unwrap();
        let b = catalog_with_t()
            .append_rows("T", delta_rows(&[(3, 30, 300)]))
            .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = catalog_with_t()
            .append_rows("T", delta_rows(&[(3, 31, 300)]))
            .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn append_merges_stats_incrementally() {
        let c = catalog_with_t()
            .append_rows("T", delta_rows(&[(3, 5, 300), (4, 20, 999)]))
            .unwrap();
        let s = c.column_stats("T", "a").unwrap();
        assert_eq!(s.min, Some(Value::Int(5)));
        assert_eq!(s.max, Some(Value::Int(20)));
        assert_eq!(s.distinct_count, 3, "10, 20, 5 — 20 repeats");
        assert!(!s.unique);
        let p = c.column_stats("T", "p").unwrap();
        assert!(p.unique, "primary key stays unique through the merge");
        assert_eq!(p.distinct_count, 4);
    }

    #[test]
    fn append_validates_table_and_arity() {
        let c = catalog_with_t();
        assert!(c.append_rows("missing", delta_rows(&[])).is_err());
        let narrow = Table::from_rows(vec![("p", DataType::Int)], vec![]).unwrap();
        assert_eq!(
            c.append_rows("T", narrow).unwrap_err(),
            DataError::ArityMismatch {
                expected: 3,
                found: 1
            }
        );
    }

    #[test]
    fn registration_clears_the_delta() {
        let mut c1 = catalog_with_t()
            .append_rows("T", delta_rows(&[(3, 30, 300)]))
            .unwrap();
        assert!(c1.delta().is_some());
        let u = Table::from_rows(vec![("z", DataType::Int)], vec![]).unwrap();
        c1.add_table("U", u, vec![]);
        assert!(c1.delta().is_none(), "add_table is not an append");
    }

    #[test]
    fn function_signatures() {
        let c = Catalog::new();
        assert_eq!(c.function_return_type("COUNT", None), Some(DataType::Int));
        assert_eq!(
            c.function_return_type("sum", Some(DataType::Float)),
            Some(DataType::Float)
        );
        assert_eq!(
            c.function_return_type("avg", Some(DataType::Int)),
            Some(DataType::Float)
        );
        assert_eq!(c.function_return_type("today", None), Some(DataType::Date));
        assert_eq!(c.function_return_type("nope", None), None);
    }
}
