//! Typed columnar storage with null bitmaps.
//!
//! [`ColumnData`] is the storage behind [`crate::Table`]: one typed vector
//! per column (`Int64`/`Float64`/`Utf8`/`Bool`/`Date64`) plus a null bitmap,
//! so profiling (distinct counts, min/max, uniqueness) and the vectorized
//! query engine scan contiguous primitive slices instead of cloning
//! [`Value`]s row by row. Columns whose values do not fit one storage type
//! (rare: schema-less fallback outputs of correlated subqueries) degrade to
//! the `Mixed` variant, which keeps exact row-interpreter semantics.
//!
//! Per-element `hash_value_into` / `eq_at` / `cmp_at` are bit-for-bit
//! compatible with [`Value`]'s `Hash` / `PartialEq` / `Ord`, so hash
//! aggregation and sorting over columns agree with the scalar interpreter.

use crate::types::DataType;
use crate::value::Value;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A null bitmap: bit set ⇒ the slot is NULL.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NullMask {
    words: Vec<u64>,
    len: usize,
    nulls: usize,
}

impl NullMask {
    /// An empty mask.
    pub fn new() -> NullMask {
        NullMask::default()
    }

    /// An all-valid mask of the given length.
    pub fn all_valid(len: usize) -> NullMask {
        NullMask {
            words: vec![0; len.div_ceil(64)],
            len,
            nulls: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// Whether slot `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Append one slot.
    #[inline]
    pub fn push(&mut self, null: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if null {
            self.words[self.len / 64] |= 1 << (self.len % 64);
            self.nulls += 1;
        }
        self.len += 1;
    }

    /// Keep only the first `n` slots.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        for i in n..self.len {
            if self.is_null(i) {
                self.nulls -= 1;
            }
        }
        self.len = n;
        self.words.truncate(n.div_ceil(64));
        if let (Some(last), rem) = (self.words.last_mut(), n % 64) {
            if rem != 0 {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// The mask restricted to the given slots, in order.
    pub fn gather(&self, idx: &[u32]) -> NullMask {
        let mut out = NullMask::all_valid(0);
        if self.nulls == 0 {
            return NullMask::all_valid(idx.len());
        }
        for &i in idx {
            out.push(self.is_null(i as usize));
        }
        out
    }

    /// The packed bitmap words (bit set ⇒ NULL; the tail word's unused
    /// high bits are zero). Word-level kernels read these directly.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// A mask assembled from packed bitmap words (bit set ⇒ NULL) covering
    /// `len` slots — the inverse of [`NullMask::words`], used by word-level
    /// kernels that compute whole null words at a time. Tail bits beyond
    /// `len` are cleared here, so callers need not mask them.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> NullMask {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        if let (Some(last), rem @ 1..) = (words.last_mut(), len % 64) {
            *last &= (1u64 << rem) - 1;
        }
        let nulls = words.iter().map(|w| w.count_ones() as usize).sum();
        NullMask { words, len, nulls }
    }

    /// The mask restricted to the contiguous slot range `[lo, hi)` —
    /// word-level: each output word is stitched from (at most) two input
    /// words by shifts, not rebuilt bit by bit.
    pub fn slice(&self, lo: usize, hi: usize) -> NullMask {
        debug_assert!(lo <= hi && hi <= self.len);
        let n = hi - lo;
        if self.nulls == 0 {
            return NullMask::all_valid(n);
        }
        let (base, shift) = (lo / 64, lo % 64);
        let mut words = vec![0u64; n.div_ceil(64)];
        for (w, out) in words.iter_mut().enumerate() {
            let low = self.words.get(base + w).copied().unwrap_or(0) >> shift;
            let high = if shift == 0 {
                0
            } else {
                self.words.get(base + w + 1).copied().unwrap_or(0) << (64 - shift)
            };
            *out = low | high;
        }
        if let (Some(last), rem @ 1..) = (words.last_mut(), n % 64) {
            *last &= (1u64 << rem) - 1;
        }
        let nulls = words.iter().map(|w| w.count_ones() as usize).sum();
        NullMask {
            words,
            len: n,
            nulls,
        }
    }

    /// NULL wherever either input is NULL (the validity *intersection*,
    /// as binary operations with NULL-propagating semantics need) —
    /// word-level OR over the packed bitmaps.
    pub fn union(&self, other: &NullMask) -> NullMask {
        debug_assert_eq!(self.len, other.len);
        if self.nulls == 0 {
            return other.clone();
        }
        if other.nulls == 0 {
            return self.clone();
        }
        let words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        let nulls = words.iter().map(|w| w.count_ones() as usize).sum();
        NullMask {
            words,
            len: self.len,
            nulls,
        }
    }
}

/// One column of typed values. See the module docs.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int64 {
        /// Values (placeholder 0 at null slots).
        values: Vec<i64>,
        /// The null bitmap.
        nulls: NullMask,
    },
    /// 64-bit floats.
    Float64 {
        /// Values (placeholder 0.0 at null slots).
        values: Vec<f64>,
        /// The null bitmap.
        nulls: NullMask,
    },
    /// UTF-8 strings.
    Utf8 {
        /// Values (placeholder "" at null slots).
        values: Vec<String>,
        /// The null bitmap.
        nulls: NullMask,
    },
    /// Dictionary-encoded UTF-8 strings: one `u32` code per row indexing a
    /// shared dictionary. Invariants: the dictionary is sorted ascending and
    /// duplicate-free (so code order *is* string order — a sorted-code
    /// permutation computed once at build time), every non-null code is in
    /// range, and null slots hold the placeholder code 0. Gathering shares
    /// the dictionary `Arc`, so filters/joins over string columns copy
    /// `u32`s, never strings.
    Dict {
        /// One dictionary code per row (placeholder 0 at null slots).
        codes: Vec<u32>,
        /// The sorted, deduplicated dictionary.
        dict: Arc<Vec<String>>,
        /// The null bitmap.
        nulls: NullMask,
    },
    /// Booleans.
    Bool {
        /// Values (placeholder false at null slots).
        values: Vec<bool>,
        /// The null bitmap.
        nulls: NullMask,
    },
    /// Dates as days since 1970-01-01.
    Date64 {
        /// Values (placeholder 0 at null slots).
        values: Vec<i64>,
        /// The null bitmap.
        nulls: NullMask,
    },
    /// Heterogeneous escape hatch: exact [`Value`] storage.
    Mixed(Vec<Value>),
}

/// The `(codes, dictionary, nulls)` view of a dictionary column, as
/// returned by [`ColumnData::dict_parts`].
pub type DictParts<'a> = (&'a [u32], &'a Arc<Vec<String>>, &'a NullMask);

/// Seed for [`row_hash`] (FNV-1a offset basis).
pub const ROW_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold one row of several columns into a single cheap hash (see
/// [`ColumnData::fold_hash`]). The one row-hash used by grouping, DISTINCT,
/// and the empirical FD check, so the scheme cannot drift between them.
pub fn row_hash<'a>(cols: impl IntoIterator<Item = &'a ColumnData>, i: usize) -> u64 {
    cols.into_iter()
        .fold(ROW_HASH_SEED, |h, c| c.fold_hash(i, h))
}

/// Hash-bucketed row interner over a set of key columns: the shared
/// bucket/collision-probe loop behind grouping, DISTINCT, and the
/// empirical FD check (one implementation, so [`row_hash`] and
/// [`ColumnData::eq_at`] semantics cannot drift between them).
pub struct RowInterner<'a> {
    cols: Vec<&'a ColumnData>,
    buckets: crate::hash::FastMap<u64, Vec<u32>>,
}

impl<'a> RowInterner<'a> {
    /// An interner keyed by the given columns.
    pub fn new(cols: Vec<&'a ColumnData>) -> RowInterner<'a> {
        RowInterner {
            cols,
            buckets: crate::hash::FastMap::default(),
        }
    }

    /// The first previously-interned row whose key columns equal row `i`'s
    /// (`Value` equality), or `None` after interning `i` as a new
    /// representative.
    pub fn intern(&mut self, i: u32) -> Option<u32> {
        let h = row_hash(self.cols.iter().copied(), i as usize);
        let bucket = self.buckets.entry(h).or_default();
        for &j in bucket.iter() {
            if self.cols.iter().all(|c| c.eq_at(i as usize, c, j as usize)) {
                return Some(j);
            }
        }
        bucket.push(i);
        None
    }
}

/// Monotone integer key realizing the IEEE754 total order: positive floats
/// keep their bit pattern, negative floats flip their low 63 bits (so more
/// negative sorts smaller). Numeric order for all non-NaN values; -NaN
/// sorts first and +NaN last.
#[inline]
pub fn f64_ord_key(f: f64) -> i64 {
    let bits = f.to_bits() as i64;
    bits ^ (((bits >> 63) as u64) >> 1) as i64
}

impl ColumnData {
    /// An empty column of the given storage type.
    pub fn new_typed(dtype: DataType) -> ColumnData {
        match dtype {
            DataType::Int => ColumnData::Int64 {
                values: Vec::new(),
                nulls: NullMask::new(),
            },
            DataType::Float => ColumnData::Float64 {
                values: Vec::new(),
                nulls: NullMask::new(),
            },
            DataType::Str => ColumnData::Utf8 {
                values: Vec::new(),
                nulls: NullMask::new(),
            },
            DataType::Bool => ColumnData::Bool {
                values: Vec::new(),
                nulls: NullMask::new(),
            },
            DataType::Date => ColumnData::Date64 {
                values: Vec::new(),
                nulls: NullMask::new(),
            },
        }
    }

    /// Build a column from values: typed storage when every value fits one
    /// storage type (`hint` breaks the tie for all-NULL columns), `Mixed`
    /// otherwise.
    pub fn from_values(vals: Vec<Value>, hint: Option<DataType>) -> ColumnData {
        let mut dtype: Option<DataType> = None;
        for v in &vals {
            match (v.data_type(), dtype) {
                (None, _) => {}
                (Some(t), None) => dtype = Some(t),
                (Some(t), Some(d)) if t == d => {}
                _ => return ColumnData::Mixed(vals),
            }
        }
        let mut col = ColumnData::new_typed(dtype.or(hint).unwrap_or(DataType::Str));
        for v in vals {
            col.push(v);
        }
        col
    }

    /// A null-free integer column.
    pub fn ints(values: Vec<i64>) -> ColumnData {
        let nulls = NullMask::all_valid(values.len());
        ColumnData::Int64 { values, nulls }
    }

    /// A null-free float column.
    pub fn floats(values: Vec<f64>) -> ColumnData {
        let nulls = NullMask::all_valid(values.len());
        ColumnData::Float64 { values, nulls }
    }

    /// A null-free string column.
    pub fn strs(values: Vec<String>) -> ColumnData {
        let nulls = NullMask::all_valid(values.len());
        ColumnData::Utf8 { values, nulls }
    }

    /// A null-free string column, dictionary-encoded when the cardinality
    /// cutoff allows (see [`ColumnData::dict_encode`]).
    pub fn strs_dict(values: Vec<String>) -> ColumnData {
        ColumnData::strs(values).dict_encode()
    }

    /// Dictionary-encode a `Utf8` column when at most half its rows are
    /// distinct (the load-time cardinality cutoff: near-unique string
    /// columns would pay dictionary indirection for no dedup win). Any
    /// other column — including one already dictionary-encoded — is
    /// returned unchanged.
    pub fn dict_encode(self) -> ColumnData {
        let ColumnData::Utf8 { values, nulls } = self else {
            return self;
        };
        let mut dict: Vec<&str> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| !nulls.is_null(*i))
            .map(|(_, v)| v.as_str())
            .collect();
        dict.sort_unstable();
        dict.dedup();
        if dict.len() * 2 > values.len() {
            return ColumnData::Utf8 { values, nulls };
        }
        let codes: Vec<u32> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if nulls.is_null(i) {
                    0
                } else {
                    dict.binary_search(&v.as_str()).expect("value in dict") as u32
                }
            })
            .collect();
        let dict: Vec<String> = dict.into_iter().map(str::to_string).collect();
        ColumnData::Dict {
            codes,
            dict: Arc::new(dict),
            nulls,
        }
    }

    /// Build a dictionary column from wire parts: `codes[i] = None` marks a
    /// NULL slot. Returns `None` when a code is out of range. The dictionary
    /// is re-canonicalised (sorted, codes remapped) so the column upholds
    /// the sorted-dictionary invariant regardless of the input order;
    /// duplicate dictionary entries are rejected (they would make the
    /// code ↔ string mapping ambiguous).
    pub fn dict_from_parts(dict: Vec<String>, codes: Vec<Option<u32>>) -> Option<ColumnData> {
        let mut order: Vec<u32> = (0..dict.len() as u32).collect();
        order.sort_by(|&a, &b| dict[a as usize].cmp(&dict[b as usize]));
        if order
            .windows(2)
            .any(|w| dict[w[0] as usize] == dict[w[1] as usize])
        {
            return None;
        }
        // rank[old code] = canonical (sorted) code.
        let mut rank = vec![0u32; dict.len()];
        for (new, &old) in order.iter().enumerate() {
            rank[old as usize] = new as u32;
        }
        let mut nulls = NullMask::new();
        let mut out = Vec::with_capacity(codes.len());
        for c in codes {
            match c {
                None => {
                    out.push(0);
                    nulls.push(true);
                }
                Some(c) => {
                    out.push(*rank.get(c as usize)?);
                    nulls.push(false);
                }
            }
        }
        let mut sorted: Vec<String> = Vec::with_capacity(dict.len());
        let mut dict = dict;
        for &old in &order {
            sorted.push(std::mem::take(&mut dict[old as usize]));
        }
        Some(ColumnData::Dict {
            codes: out,
            dict: Arc::new(sorted),
            nulls,
        })
    }

    /// The `(codes, dictionary, nulls)` of a dictionary column.
    pub fn dict_parts(&self) -> Option<DictParts<'_>> {
        match self {
            ColumnData::Dict { codes, dict, nulls } => Some((codes, dict, nulls)),
            _ => None,
        }
    }

    /// The dictionary code of a string in a dictionary column, or `Err`
    /// with the partition point (how many entries sort before `s`) when the
    /// string is absent — callers use it for order predicates.
    pub fn dict_code_of(&self, s: &str) -> Option<Result<u32, u32>> {
        let ColumnData::Dict { dict, .. } = self else {
            return None;
        };
        Some(match dict.binary_search_by(|d| d.as_str().cmp(s)) {
            Ok(i) => Ok(i as u32),
            Err(i) => Err(i as u32),
        })
    }

    /// Concatenate several parts of one logical column into a single
    /// column (the scan-side materialization of a chunked live table).
    ///
    /// Same-variant typed parts extend their storage directly. All-`Dict`
    /// parts merge into the sorted union of their dictionaries with a
    /// per-part code remap (so appends against a dictionary column keep
    /// the sorted-dictionary invariant); a `Dict`/`Utf8` mixture decodes
    /// to `Utf8`. Anything else falls back to
    /// [`ColumnData::from_values`] over the materialized cells.
    pub fn concat(parts: &[&ColumnData]) -> ColumnData {
        match parts {
            [] => return ColumnData::Mixed(Vec::new()),
            [one] => return (*one).clone(),
            _ => {}
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        if parts.iter().all(|p| matches!(p, ColumnData::Dict { .. })) {
            return Self::concat_dicts(parts, total);
        }
        if parts
            .iter()
            .all(|p| matches!(p, ColumnData::Dict { .. } | ColumnData::Utf8 { .. }))
        {
            // A Dict/Utf8 mixture decodes to plain strings.
            let mut values: Vec<String> = Vec::with_capacity(total);
            let mut nulls = NullMask::new();
            for p in parts {
                match p {
                    ColumnData::Utf8 {
                        values: v,
                        nulls: n,
                    } => {
                        values.extend_from_slice(v);
                        for i in 0..v.len() {
                            nulls.push(n.is_null(i));
                        }
                    }
                    ColumnData::Dict {
                        codes,
                        dict,
                        nulls: n,
                    } => {
                        for (i, &c) in codes.iter().enumerate() {
                            let null = n.is_null(i);
                            values.push(if null {
                                String::new()
                            } else {
                                dict[c as usize].clone()
                            });
                            nulls.push(null);
                        }
                    }
                    _ => unreachable!("only Dict/Utf8 parts reach here"),
                }
            }
            return ColumnData::Utf8 { values, nulls };
        }
        macro_rules! same_variant {
            ($variant:ident) => {{
                let mut values = Vec::with_capacity(total);
                let mut nulls = NullMask::new();
                for p in parts {
                    if let ColumnData::$variant {
                        values: v,
                        nulls: n,
                    } = p
                    {
                        values.extend_from_slice(v);
                        for i in 0..v.len() {
                            nulls.push(n.is_null(i));
                        }
                    }
                }
                ColumnData::$variant { values, nulls }
            }};
        }
        if parts.iter().all(|p| matches!(p, ColumnData::Int64 { .. })) {
            return same_variant!(Int64);
        }
        if parts
            .iter()
            .all(|p| matches!(p, ColumnData::Float64 { .. }))
        {
            return same_variant!(Float64);
        }
        if parts.iter().all(|p| matches!(p, ColumnData::Bool { .. })) {
            return same_variant!(Bool);
        }
        if parts.iter().all(|p| matches!(p, ColumnData::Date64 { .. })) {
            return same_variant!(Date64);
        }
        // Mismatched variants: materialize and let from_values re-type
        // (a purely representational mismatch still yields typed storage).
        let hint = parts.iter().find_map(|p| p.dtype());
        let mut vals: Vec<Value> = Vec::with_capacity(total);
        for p in parts {
            vals.extend(p.iter());
        }
        ColumnData::from_values(vals, hint)
    }

    /// [`ColumnData::concat`] over all-`Dict` parts: sorted-union
    /// dictionary, per-part code remap, null slots kept at code 0.
    fn concat_dicts(parts: &[&ColumnData], total: usize) -> ColumnData {
        let first_dict = match parts[0] {
            ColumnData::Dict { dict, .. } => dict,
            _ => unreachable!("caller checked all parts are Dict"),
        };
        let shared = parts
            .iter()
            .all(|p| matches!(p, ColumnData::Dict { dict, .. } if Arc::ptr_eq(dict, first_dict)));
        if shared {
            // One shared dictionary: codes concatenate verbatim.
            let mut codes = Vec::with_capacity(total);
            let mut nulls = NullMask::new();
            for p in parts {
                if let ColumnData::Dict {
                    codes: c, nulls: n, ..
                } = p
                {
                    codes.extend_from_slice(c);
                    for i in 0..c.len() {
                        nulls.push(n.is_null(i));
                    }
                }
            }
            return ColumnData::Dict {
                codes,
                dict: Arc::clone(first_dict),
                nulls,
            };
        }
        // Sorted union of the (each sorted, deduped) dictionaries.
        let mut union: Vec<String> = Vec::new();
        for p in parts {
            if let ColumnData::Dict { dict, .. } = p {
                let mut merged = Vec::with_capacity(union.len() + dict.len());
                let (mut a, mut b) = (union.into_iter().peekable(), dict.iter().peekable());
                loop {
                    match (a.peek(), b.peek()) {
                        (Some(x), Some(y)) => match x.as_str().cmp(y.as_str()) {
                            Ordering::Less => merged.push(a.next().unwrap()),
                            Ordering::Greater => merged.push(b.next().unwrap().clone()),
                            Ordering::Equal => {
                                merged.push(a.next().unwrap());
                                b.next();
                            }
                        },
                        (Some(_), None) => merged.push(a.next().unwrap()),
                        (None, Some(_)) => merged.push(b.next().unwrap().clone()),
                        (None, None) => break,
                    }
                }
                union = merged;
            }
        }
        let mut codes = Vec::with_capacity(total);
        let mut nulls = NullMask::new();
        for p in parts {
            if let ColumnData::Dict {
                codes: c,
                dict,
                nulls: n,
            } = p
            {
                let remap: Vec<u32> = dict
                    .iter()
                    .map(|s| union.binary_search(s).expect("union holds every entry") as u32)
                    .collect();
                for (i, &code) in c.iter().enumerate() {
                    let null = n.is_null(i);
                    codes.push(if null { 0 } else { remap[code as usize] });
                    nulls.push(null);
                }
            }
        }
        ColumnData::Dict {
            codes,
            dict: Arc::new(union),
            nulls,
        }
    }

    /// A null-free boolean column.
    pub fn bools(values: Vec<bool>) -> ColumnData {
        let nulls = NullMask::all_valid(values.len());
        ColumnData::Bool { values, nulls }
    }

    /// A null-free date column (days since 1970-01-01).
    pub fn dates(values: Vec<i64>) -> ColumnData {
        let nulls = NullMask::all_valid(values.len());
        ColumnData::Date64 { values, nulls }
    }

    /// A column of `n` copies of one value (typed when possible).
    pub fn broadcast(v: &Value, n: usize) -> ColumnData {
        match v {
            Value::Int(x) => ColumnData::Int64 {
                values: vec![*x; n],
                nulls: NullMask::all_valid(n),
            },
            Value::Float(x) => ColumnData::Float64 {
                values: vec![*x; n],
                nulls: NullMask::all_valid(n),
            },
            Value::Str(x) => ColumnData::Utf8 {
                values: vec![x.clone(); n],
                nulls: NullMask::all_valid(n),
            },
            Value::Bool(x) => ColumnData::Bool {
                values: vec![*x; n],
                nulls: NullMask::all_valid(n),
            },
            Value::Date(x) => ColumnData::Date64 {
                values: vec![*x; n],
                nulls: NullMask::all_valid(n),
            },
            Value::Null => ColumnData::Mixed(vec![Value::Null; n]),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64 { values, .. } | ColumnData::Date64 { values, .. } => values.len(),
            ColumnData::Float64 { values, .. } => values.len(),
            ColumnData::Utf8 { values, .. } => values.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
            ColumnData::Bool { values, .. } => values.len(),
            ColumnData::Mixed(values) => values.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The storage type; `None` for `Mixed`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            ColumnData::Int64 { .. } => Some(DataType::Int),
            ColumnData::Float64 { .. } => Some(DataType::Float),
            ColumnData::Utf8 { .. } | ColumnData::Dict { .. } => Some(DataType::Str),
            ColumnData::Bool { .. } => Some(DataType::Bool),
            ColumnData::Date64 { .. } => Some(DataType::Date),
            ColumnData::Mixed(_) => None,
        }
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        match self {
            ColumnData::Int64 { nulls, .. }
            | ColumnData::Float64 { nulls, .. }
            | ColumnData::Utf8 { nulls, .. }
            | ColumnData::Dict { nulls, .. }
            | ColumnData::Bool { nulls, .. }
            | ColumnData::Date64 { nulls, .. } => nulls.null_count(),
            ColumnData::Mixed(values) => values.iter().filter(|v| v.is_null()).count(),
        }
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnData::Int64 { nulls, .. }
            | ColumnData::Float64 { nulls, .. }
            | ColumnData::Utf8 { nulls, .. }
            | ColumnData::Dict { nulls, .. }
            | ColumnData::Bool { nulls, .. }
            | ColumnData::Date64 { nulls, .. } => nulls.is_null(i),
            ColumnData::Mixed(values) => values[i].is_null(),
        }
    }

    /// Materialize row `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int64 { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(values[i])
                }
            }
            ColumnData::Float64 { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(values[i])
                }
            }
            ColumnData::Utf8 { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Str(values[i].clone())
                }
            }
            ColumnData::Dict { codes, dict, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Str(dict[codes[i] as usize].clone())
                }
            }
            ColumnData::Bool { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(values[i])
                }
            }
            ColumnData::Date64 { values, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Date(values[i])
                }
            }
            ColumnData::Mixed(values) => values[i].clone(),
        }
    }

    /// Numeric view of row `i` (see [`Value::as_f64`]); `None` for NULL and
    /// non-numeric values. No allocation.
    #[inline]
    pub fn numeric(&self, i: usize) -> Option<f64> {
        match self {
            ColumnData::Int64 { values, nulls } | ColumnData::Date64 { values, nulls } => {
                (!nulls.is_null(i)).then(|| values[i] as f64)
            }
            ColumnData::Float64 { values, nulls } => (!nulls.is_null(i)).then(|| values[i]),
            ColumnData::Bool { values, nulls } => {
                (!nulls.is_null(i)).then(|| if values[i] { 1.0 } else { 0.0 })
            }
            ColumnData::Utf8 { .. } | ColumnData::Dict { .. } => None,
            ColumnData::Mixed(values) => values[i].as_f64(),
        }
    }

    /// String view of row `i` without cloning; `None` for NULL/non-strings.
    #[inline]
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            ColumnData::Utf8 { values, nulls } => (!nulls.is_null(i)).then(|| values[i].as_str()),
            ColumnData::Dict { codes, dict, nulls } => {
                (!nulls.is_null(i)).then(|| dict[codes[i] as usize].as_str())
            }
            ColumnData::Mixed(values) => values[i].as_str(),
            _ => None,
        }
    }

    /// Append one value. A value that does not fit the storage type demotes
    /// the column to `Mixed` (exact round-trip is preserved over fast
    /// typed storage).
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (ColumnData::Int64 { values, nulls }, Value::Int(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (ColumnData::Float64 { values, nulls }, Value::Float(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (ColumnData::Utf8 { values, nulls }, Value::Str(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (ColumnData::Bool { values, nulls }, Value::Bool(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (ColumnData::Date64 { values, nulls }, Value::Date(x)) => {
                values.push(x);
                nulls.push(false);
            }
            (ColumnData::Int64 { values, nulls }, Value::Null)
            | (ColumnData::Date64 { values, nulls }, Value::Null) => {
                values.push(0);
                nulls.push(true);
            }
            (ColumnData::Float64 { values, nulls }, Value::Null) => {
                values.push(0.0);
                nulls.push(true);
            }
            (ColumnData::Utf8 { values, nulls }, Value::Null) => {
                values.push(String::new());
                nulls.push(true);
            }
            (ColumnData::Dict { codes, nulls, .. }, Value::Null) => {
                codes.push(0);
                nulls.push(true);
            }
            (ColumnData::Dict { codes, dict, nulls }, Value::Str(x)) => {
                // A string already in the dictionary appends as its code; a
                // new string would break the sorted-dictionary invariant,
                // so the column decodes back to plain `Utf8` first.
                match dict.binary_search(&x) {
                    Ok(c) => {
                        codes.push(c as u32);
                        nulls.push(false);
                    }
                    Err(_) => {
                        let mut values: Vec<String> = codes
                            .iter()
                            .enumerate()
                            .map(|(i, &c)| {
                                if nulls.is_null(i) {
                                    String::new()
                                } else {
                                    dict[c as usize].clone()
                                }
                            })
                            .collect();
                        values.push(x);
                        let mut nulls = nulls.clone();
                        nulls.push(false);
                        *self = ColumnData::Utf8 { values, nulls };
                    }
                }
            }
            (ColumnData::Bool { values, nulls }, Value::Null) => {
                values.push(false);
                nulls.push(true);
            }
            (ColumnData::Mixed(values), v) => values.push(v),
            (_, v) => {
                let mut vals: Vec<Value> = self.iter().collect();
                vals.push(v);
                *self = ColumnData::Mixed(vals);
            }
        }
    }

    /// Keep the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        match self {
            ColumnData::Int64 { values, nulls } | ColumnData::Date64 { values, nulls } => {
                values.truncate(n);
                nulls.truncate(n);
            }
            ColumnData::Float64 { values, nulls } => {
                values.truncate(n);
                nulls.truncate(n);
            }
            ColumnData::Utf8 { values, nulls } => {
                values.truncate(n);
                nulls.truncate(n);
            }
            ColumnData::Dict { codes, nulls, .. } => {
                codes.truncate(n);
                nulls.truncate(n);
            }
            ColumnData::Bool { values, nulls } => {
                values.truncate(n);
                nulls.truncate(n);
            }
            ColumnData::Mixed(values) => values.truncate(n),
        }
    }

    /// The column restricted to the given rows, in order.
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        fn take<T: Clone>(values: &[T], idx: &[u32]) -> Vec<T> {
            idx.iter().map(|&i| values[i as usize].clone()).collect()
        }
        match self {
            ColumnData::Int64 { values, nulls } => ColumnData::Int64 {
                values: take(values, idx),
                nulls: nulls.gather(idx),
            },
            ColumnData::Float64 { values, nulls } => ColumnData::Float64 {
                values: take(values, idx),
                nulls: nulls.gather(idx),
            },
            ColumnData::Utf8 { values, nulls } => ColumnData::Utf8 {
                values: take(values, idx),
                nulls: nulls.gather(idx),
            },
            // The dictionary is shared, not copied: a filtered/joined view
            // of a string column costs one u32 per row.
            ColumnData::Dict { codes, dict, nulls } => ColumnData::Dict {
                codes: take(codes, idx),
                dict: Arc::clone(dict),
                nulls: nulls.gather(idx),
            },
            ColumnData::Bool { values, nulls } => ColumnData::Bool {
                values: take(values, idx),
                nulls: nulls.gather(idx),
            },
            ColumnData::Date64 { values, nulls } => ColumnData::Date64 {
                values: take(values, idx),
                nulls: nulls.gather(idx),
            },
            ColumnData::Mixed(values) => ColumnData::Mixed(take(values, idx)),
        }
    }

    /// The column restricted to the contiguous row range `[lo, hi)`.
    /// Cheaper than [`ColumnData::gather`] over `lo..hi`: values are copied
    /// with `memcpy`-able slice clones, the null bitmap is stitched at word
    /// level ([`NullMask::slice`]), and dictionaries are shared.
    pub fn slice(&self, lo: usize, hi: usize) -> ColumnData {
        debug_assert!(lo <= hi && hi <= self.len());
        match self {
            ColumnData::Int64 { values, nulls } => ColumnData::Int64 {
                values: values[lo..hi].to_vec(),
                nulls: nulls.slice(lo, hi),
            },
            ColumnData::Float64 { values, nulls } => ColumnData::Float64 {
                values: values[lo..hi].to_vec(),
                nulls: nulls.slice(lo, hi),
            },
            ColumnData::Utf8 { values, nulls } => ColumnData::Utf8 {
                values: values[lo..hi].to_vec(),
                nulls: nulls.slice(lo, hi),
            },
            ColumnData::Dict { codes, dict, nulls } => ColumnData::Dict {
                codes: codes[lo..hi].to_vec(),
                dict: Arc::clone(dict),
                nulls: nulls.slice(lo, hi),
            },
            ColumnData::Bool { values, nulls } => ColumnData::Bool {
                values: values[lo..hi].to_vec(),
                nulls: nulls.slice(lo, hi),
            },
            ColumnData::Date64 { values, nulls } => ColumnData::Date64 {
                values: values[lo..hi].to_vec(),
                nulls: nulls.slice(lo, hi),
            },
            ColumnData::Mixed(values) => ColumnData::Mixed(values[lo..hi].to_vec()),
        }
    }

    /// Iterate materialized values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Hash row `i` exactly as `Value::hash` would hash the materialized
    /// value (ints hash through their `f64` bits so `Int(3)` and
    /// `Float(3.0)` collide, as grouping equality requires).
    #[inline]
    pub fn hash_value_into<H: Hasher>(&self, i: usize, h: &mut H) {
        match self {
            ColumnData::Int64 { values, nulls } => {
                if nulls.is_null(i) {
                    0u8.hash(h);
                } else {
                    2u8.hash(h);
                    (values[i] as f64).to_bits().hash(h);
                }
            }
            ColumnData::Float64 { values, nulls } => {
                if nulls.is_null(i) {
                    0u8.hash(h);
                } else {
                    2u8.hash(h);
                    values[i].to_bits().hash(h);
                }
            }
            ColumnData::Utf8 { values, nulls } => {
                if nulls.is_null(i) {
                    0u8.hash(h);
                } else {
                    3u8.hash(h);
                    values[i].hash(h);
                }
            }
            ColumnData::Dict { codes, dict, nulls } => {
                if nulls.is_null(i) {
                    0u8.hash(h);
                } else {
                    3u8.hash(h);
                    dict[codes[i] as usize].hash(h);
                }
            }
            ColumnData::Bool { values, nulls } => {
                if nulls.is_null(i) {
                    0u8.hash(h);
                } else {
                    1u8.hash(h);
                    values[i].hash(h);
                }
            }
            ColumnData::Date64 { values, nulls } => {
                if nulls.is_null(i) {
                    0u8.hash(h);
                } else {
                    4u8.hash(h);
                    values[i].hash(h);
                }
            }
            ColumnData::Mixed(values) => values[i].hash(h),
        }
    }

    /// Hash the whole column's content (used for catalogue fingerprints).
    pub fn hash_content<H: Hasher>(&self, h: &mut H) {
        for i in 0..self.len() {
            self.hash_value_into(i, h);
        }
    }

    /// Fold row `i` into a cheap FNV-style hash state. Rows that are equal
    /// under [`ColumnData::eq_at`] hash equally regardless of storage
    /// representation (ints fold through their `f64` bits like
    /// `Value::hash`), but this is much cheaper than a SipHash per row —
    /// it is the grouping/distinct hot path.
    #[inline]
    pub fn fold_hash(&self, i: usize, h: u64) -> u64 {
        #[inline]
        fn mix(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(0x100_0000_01b3)
        }
        #[inline]
        fn mix_str(mut h: u64, s: &str) -> u64 {
            h = mix(h, 3);
            for chunk in s.as_bytes().chunks(8) {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                h = mix(h, u64::from_le_bytes(buf));
            }
            mix(h, s.len() as u64)
        }
        match self {
            ColumnData::Int64 { values, nulls } => {
                if nulls.is_null(i) {
                    mix(h, 0)
                } else {
                    mix(mix(h, 2), (values[i] as f64).to_bits())
                }
            }
            ColumnData::Float64 { values, nulls } => {
                if nulls.is_null(i) {
                    mix(h, 0)
                } else {
                    mix(mix(h, 2), values[i].to_bits())
                }
            }
            ColumnData::Utf8 { values, nulls } => {
                if nulls.is_null(i) {
                    mix(h, 0)
                } else {
                    mix_str(h, &values[i])
                }
            }
            ColumnData::Dict { codes, dict, nulls } => {
                if nulls.is_null(i) {
                    mix(h, 0)
                } else {
                    mix_str(h, &dict[codes[i] as usize])
                }
            }
            ColumnData::Bool { values, nulls } => {
                if nulls.is_null(i) {
                    mix(h, 0)
                } else {
                    mix(mix(h, 1), values[i] as u64)
                }
            }
            ColumnData::Date64 { values, nulls } => {
                if nulls.is_null(i) {
                    mix(h, 0)
                } else {
                    mix(mix(h, 4), values[i] as u64)
                }
            }
            ColumnData::Mixed(values) => match &values[i] {
                Value::Null => mix(h, 0),
                Value::Bool(b) => mix(mix(h, 1), *b as u64),
                Value::Int(v) => mix(mix(h, 2), (*v as f64).to_bits()),
                Value::Float(f) => mix(mix(h, 2), f.to_bits()),
                Value::Str(s) => mix_str(h, s),
                Value::Date(d) => mix(mix(h, 4), *d as u64),
            },
        }
    }

    /// SQL equality between `self[i]` and a value, matching
    /// [`Value::sql_eq`] without materializing the cell (no string
    /// clones): `None` for NULLs and incomparable types, numeric types
    /// compare through `f64`, and ISO date strings compare with dates.
    pub fn sql_eq_value(&self, i: usize, v: &Value) -> Option<bool> {
        if self.is_null(i) || v.is_null() {
            return None;
        }
        match self {
            ColumnData::Mixed(values) => values[i].sql_eq(v),
            ColumnData::Utf8 { values, .. } => match v {
                Value::Str(s) => Some(values[i] == *s),
                Value::Date(d) => crate::date::parse_iso_date(&values[i]).map(|x| x == *d),
                _ => None,
            },
            ColumnData::Dict { codes, dict, .. } => {
                let s = &dict[codes[i] as usize];
                match v {
                    Value::Str(x) => Some(s == x),
                    Value::Date(d) => crate::date::parse_iso_date(s).map(|x| x == *d),
                    _ => None,
                }
            }
            ColumnData::Date64 { values, nulls } => {
                if let Value::Str(s) = v {
                    return crate::date::parse_iso_date(s).map(|d| values[i] == d);
                }
                let _ = nulls;
                Some(self.numeric(i)? == v.as_f64()?)
            }
            _ => Some(self.numeric(i)? == v.as_f64()?),
        }
    }

    /// Structural equality between `self[i]` and `other[j]`, matching
    /// `Value::eq` (floats by bits; `Int`/`Float` cross-type equality).
    pub fn eq_at(&self, i: usize, other: &ColumnData, j: usize) -> bool {
        match (self, other) {
            (
                ColumnData::Int64 {
                    values: a,
                    nulls: na,
                },
                ColumnData::Int64 {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => true,
                (false, false) => a[i] == b[j],
                _ => false,
            },
            (
                ColumnData::Float64 {
                    values: a,
                    nulls: na,
                },
                ColumnData::Float64 {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => true,
                (false, false) => a[i].to_bits() == b[j].to_bits(),
                _ => false,
            },
            (
                ColumnData::Utf8 {
                    values: a,
                    nulls: na,
                },
                ColumnData::Utf8 {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => true,
                (false, false) => a[i] == b[j],
                _ => false,
            },
            (
                ColumnData::Dict {
                    codes: a,
                    dict: da,
                    nulls: na,
                },
                ColumnData::Dict {
                    codes: b,
                    dict: db,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => true,
                // Shared dictionary ⇒ string equality is code equality.
                (false, false) if Arc::ptr_eq(da, db) => a[i] == b[j],
                (false, false) => da[a[i] as usize] == db[b[j] as usize],
                _ => false,
            },
            (ColumnData::Dict { .. }, ColumnData::Utf8 { .. })
            | (ColumnData::Utf8 { .. }, ColumnData::Dict { .. }) => {
                match (self.str_at(i), other.str_at(j)) {
                    (Some(a), Some(b)) => a == b,
                    (None, None) => true,
                    _ => false,
                }
            }
            (
                ColumnData::Bool {
                    values: a,
                    nulls: na,
                },
                ColumnData::Bool {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => true,
                (false, false) => a[i] == b[j],
                _ => false,
            },
            (
                ColumnData::Date64 {
                    values: a,
                    nulls: na,
                },
                ColumnData::Date64 {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => true,
                (false, false) => a[i] == b[j],
                _ => false,
            },
            _ => self.value(i) == other.value(j),
        }
    }

    /// Total-order comparison between `self[i]` and `other[j]`, matching
    /// `Value::cmp` (NULL first; numeric types compare through `f64`).
    pub fn cmp_at(&self, i: usize, other: &ColumnData, j: usize) -> Ordering {
        match (self, other) {
            (
                ColumnData::Int64 {
                    values: a,
                    nulls: na,
                },
                ColumnData::Int64 {
                    values: b,
                    nulls: nb,
                },
            )
            | (
                ColumnData::Date64 {
                    values: a,
                    nulls: na,
                },
                ColumnData::Date64 {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                // Through f64 like Value::cmp (ties above 2^53 stay ties).
                (false, false) => (a[i] as f64).total_cmp(&(b[j] as f64)),
            },
            (
                ColumnData::Float64 {
                    values: a,
                    nulls: na,
                },
                ColumnData::Float64 {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => a[i]
                    .partial_cmp(&b[j])
                    .unwrap_or_else(|| f64_ord_key(a[i]).cmp(&f64_ord_key(b[j]))),
            },
            (
                ColumnData::Utf8 {
                    values: a,
                    nulls: na,
                },
                ColumnData::Utf8 {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => a[i].cmp(&b[j]),
            },
            (
                ColumnData::Dict {
                    codes: a,
                    dict: da,
                    nulls: na,
                },
                ColumnData::Dict {
                    codes: b,
                    dict: db,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                // Sorted dictionary ⇒ string order is code order.
                (false, false) if Arc::ptr_eq(da, db) => a[i].cmp(&b[j]),
                (false, false) => da[a[i] as usize].cmp(&db[b[j] as usize]),
            },
            (ColumnData::Dict { .. }, ColumnData::Utf8 { .. })
            | (ColumnData::Utf8 { .. }, ColumnData::Dict { .. }) => {
                match (self.str_at(i), other.str_at(j)) {
                    (Some(a), Some(b)) => a.cmp(b),
                    (None, None) => Ordering::Equal,
                    (None, Some(_)) => Ordering::Less,
                    (Some(_), None) => Ordering::Greater,
                }
            }
            (
                ColumnData::Bool {
                    values: a,
                    nulls: na,
                },
                ColumnData::Bool {
                    values: b,
                    nulls: nb,
                },
            ) => match (na.is_null(i), nb.is_null(j)) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => a[i].cmp(&b[j]),
            },
            _ => self.value(i).cmp(&other.value(j)),
        }
    }

    /// Value-level equality with another column (representation-agnostic:
    /// a `Mixed` column equals a typed column holding the same values).
    pub fn semantic_eq(&self, other: &ColumnData) -> bool {
        if self.len() != other.len() {
            return false;
        }
        (0..self.len()).all(|i| self.eq_at(i, other, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn push_and_round_trip() {
        let mut c = ColumnData::new_typed(DataType::Int);
        c.push(Value::Int(1));
        c.push(Value::Null);
        c.push(Value::Int(3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(3));
        assert!(matches!(c, ColumnData::Int64 { .. }));
    }

    #[test]
    fn mismatched_push_demotes_to_mixed() {
        let mut c = ColumnData::new_typed(DataType::Int);
        c.push(Value::Int(1));
        c.push(Value::Str("x".into()));
        assert!(matches!(c, ColumnData::Mixed(_)));
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Str("x".into()));
    }

    #[test]
    fn from_values_picks_typed_storage() {
        let c = ColumnData::from_values(vec![Value::Null, Value::Float(2.5)], None);
        assert!(matches!(c, ColumnData::Float64 { .. }));
        assert_eq!(c.value(0), Value::Null);
        let c = ColumnData::from_values(vec![Value::Int(1), Value::Float(2.5)], None);
        assert!(matches!(c, ColumnData::Mixed(_)));
        let c = ColumnData::from_values(vec![Value::Null], Some(DataType::Date));
        assert!(matches!(c, ColumnData::Date64 { .. }));
    }

    #[test]
    fn gather_and_truncate() {
        let mut c = ColumnData::new_typed(DataType::Str);
        for s in ["a", "b", "c"] {
            c.push(Value::Str(s.into()));
        }
        c.push(Value::Null);
        let g = c.gather(&[3, 1]);
        assert_eq!(g.value(0), Value::Null);
        assert_eq!(g.value(1), Value::Str("b".into()));
        let mut t = c.clone();
        t.truncate(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.null_count(), 0);
    }

    #[test]
    fn hash_matches_value_hash() {
        let vals = vec![
            Value::Null,
            Value::Int(7),
            Value::Float(7.0),
            Value::Str("x".into()),
            Value::Bool(true),
            Value::Date(3),
        ];
        let c = ColumnData::Mixed(vals.clone());
        for (i, v) in vals.iter().enumerate() {
            // Typed single-value columns hash like the Value itself.
            let typed = ColumnData::from_values(vec![v.clone()], None);
            let mut h1 = DefaultHasher::new();
            typed.hash_value_into(0, &mut h1);
            let mut h2 = DefaultHasher::new();
            v.hash(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "typed hash differs for {v}");
            let mut h3 = DefaultHasher::new();
            c.hash_value_into(i, &mut h3);
            assert_eq!(h3.finish(), h2.finish(), "mixed hash differs for {v}");
        }
    }

    #[test]
    fn eq_and_cmp_match_value_semantics() {
        let ints = ColumnData::from_values(vec![Value::Int(3), Value::Null], None);
        let floats = ColumnData::from_values(vec![Value::Float(3.0), Value::Float(4.0)], None);
        // Cross-representation equality goes through Value semantics.
        assert!(ints.eq_at(0, &floats, 0));
        assert!(!ints.eq_at(1, &floats, 0));
        assert_eq!(ints.cmp_at(0, &floats, 1), Ordering::Less);
        assert_eq!(ints.cmp_at(1, &ints, 0), Ordering::Less, "NULL sorts first");
        let strs = ColumnData::from_values(vec![Value::Str("a".into())], None);
        assert_eq!(strs.cmp_at(0, &strs, 0), Ordering::Equal);
    }

    #[test]
    fn semantic_eq_is_representation_agnostic() {
        let typed = ColumnData::from_values(vec![Value::Int(1), Value::Null], None);
        let mixed = ColumnData::Mixed(vec![Value::Int(1), Value::Null]);
        assert!(typed.semantic_eq(&mixed));
        let other = ColumnData::Mixed(vec![Value::Int(2), Value::Null]);
        assert!(!typed.semantic_eq(&other));
    }

    #[test]
    fn f64_ord_key_is_monotone() {
        let vals = [
            f64::NEG_INFINITY,
            -5.0,
            -1.0,
            -0.05,
            -0.0,
            0.0,
            0.05,
            1.0,
            5.0,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                f64_ord_key(w[0]) <= f64_ord_key(w[1]),
                "{} sorted after {}",
                w[0],
                w[1]
            );
        }
        assert!(f64_ord_key(f64::NAN) > f64_ord_key(f64::INFINITY));
    }

    #[test]
    fn dict_encode_round_trips_and_respects_cutoff() {
        let vals: Vec<String> = ["b", "a", "b", "a", "c", "b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let plain = ColumnData::strs(vals.clone());
        let dict = ColumnData::strs_dict(vals);
        assert!(matches!(dict, ColumnData::Dict { .. }));
        assert!(plain.semantic_eq(&dict));
        // Sorted-dictionary invariant: codes order = string order.
        let (codes, d, _) = dict.dict_parts().unwrap();
        assert_eq!(d.as_slice(), &["a", "b", "c"]);
        assert_eq!(codes, &[1, 0, 1, 0, 2, 1]);
        // Near-unique columns stay plain Utf8.
        let unique = ColumnData::strs_dict(vec!["x".into(), "y".into(), "z".into()]);
        assert!(matches!(unique, ColumnData::Utf8 { .. }));
    }

    #[test]
    fn dict_handles_nulls_and_push() {
        let mut c = ColumnData::strs_dict(vec!["a".into(), "b".into(), "a".into(), "a".into()]);
        c.push(Value::Null);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(4), Value::Null);
        assert!(matches!(c, ColumnData::Dict { .. }));
        // Pushing a known string keeps the encoding; an unknown one decodes
        // back to plain Utf8 with identical values.
        c.push(Value::Str("b".into()));
        assert!(matches!(c, ColumnData::Dict { .. }));
        let before: Vec<Value> = c.iter().collect();
        c.push(Value::Str("zzz".into()));
        assert!(matches!(c, ColumnData::Utf8 { .. }));
        let after: Vec<Value> = c.iter().collect();
        assert_eq!(&after[..before.len()], &before[..]);
        assert_eq!(after.last(), Some(&Value::Str("zzz".into())));
    }

    #[test]
    fn dict_hash_eq_cmp_match_utf8_semantics() {
        let vals = vec![
            Value::Str("b".into()),
            Value::Null,
            Value::Str("a".into()),
            Value::Str("b".into()),
        ];
        let plain = ColumnData::from_values(vals.clone(), None);
        let dict = plain.clone().dict_encode();
        assert!(matches!(dict, ColumnData::Dict { .. }));
        for i in 0..vals.len() {
            // Hashing matches Value::hash through either representation.
            let mut h1 = DefaultHasher::new();
            dict.hash_value_into(i, &mut h1);
            let mut h2 = DefaultHasher::new();
            vals[i].hash(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "hash differs at {i}");
            assert_eq!(dict.fold_hash(i, 7), plain.fold_hash(i, 7));
            for j in 0..vals.len() {
                assert_eq!(dict.eq_at(i, &dict, j), vals[i] == vals[j]);
                assert_eq!(dict.eq_at(i, &plain, j), vals[i] == vals[j]);
                assert_eq!(plain.eq_at(i, &dict, j), vals[i] == vals[j]);
                assert_eq!(dict.cmp_at(i, &dict, j), vals[i].cmp(&vals[j]));
                assert_eq!(dict.cmp_at(i, &plain, j), vals[i].cmp(&vals[j]));
            }
        }
        assert!(dict.semantic_eq(&plain));
    }

    #[test]
    fn dict_gather_shares_dictionary() {
        let c = ColumnData::strs_dict(vec!["a".into(), "b".into(), "a".into(), "b".into()]);
        let g = c.gather(&[3, 0]);
        let (_, d1, _) = c.dict_parts().unwrap();
        let (codes, d2, _) = g.dict_parts().unwrap();
        assert!(Arc::ptr_eq(d1, d2), "gather must share the dictionary");
        assert_eq!(codes, &[1, 0]);
    }

    #[test]
    fn dict_from_parts_canonicalizes_and_validates() {
        // Unsorted wire dictionary: re-sorted, codes remapped.
        let c = ColumnData::dict_from_parts(
            vec!["b".into(), "a".into()],
            vec![Some(0), Some(1), None, Some(0)],
        )
        .unwrap();
        assert_eq!(c.value(0), Value::Str("b".into()));
        assert_eq!(c.value(1), Value::Str("a".into()));
        assert_eq!(c.value(2), Value::Null);
        let (_, d, _) = c.dict_parts().unwrap();
        assert_eq!(d.as_slice(), &["a", "b"]);
        // Out-of-range codes and duplicate entries are rejected.
        assert!(ColumnData::dict_from_parts(vec!["a".into()], vec![Some(1)]).is_none());
        assert!(ColumnData::dict_from_parts(vec!["a".into(), "a".into()], vec![Some(0)]).is_none());
    }

    #[test]
    fn dict_sql_eq_and_code_lookup() {
        let c = ColumnData::strs_dict(vec!["a".into(), "b".into(), "a".into(), "b".into()]);
        assert_eq!(c.sql_eq_value(0, &Value::Str("a".into())), Some(true));
        assert_eq!(c.sql_eq_value(1, &Value::Str("a".into())), Some(false));
        assert_eq!(c.sql_eq_value(0, &Value::Int(1)), None);
        assert_eq!(c.dict_code_of("a"), Some(Ok(0)));
        assert_eq!(c.dict_code_of("b"), Some(Ok(1)));
        assert_eq!(c.dict_code_of("aa"), Some(Err(1)));
        assert_eq!(c.dict_code_of("z"), Some(Err(2)));
    }

    #[test]
    fn null_mask_truncate_clears_high_bits() {
        let mut m = NullMask::new();
        for i in 0..70 {
            m.push(i % 3 == 0);
        }
        let nulls_before: Vec<usize> = (0..70).filter(|&i| m.is_null(i)).collect();
        m.truncate(65);
        for &i in nulls_before.iter().filter(|&&i| i < 65) {
            assert!(m.is_null(i));
        }
        assert_eq!(
            m.null_count(),
            nulls_before.iter().filter(|&&i| i < 65).count()
        );
    }
}
