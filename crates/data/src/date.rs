//! Minimal proleptic-Gregorian calendar support.
//!
//! The Covid and Sales workloads (paper Listings 6–7) filter on dates and use
//! `date(today(), '-30 days')` arithmetic. We avoid a calendar dependency by
//! implementing the standard civil-date <-> day-number conversion (Howard
//! Hinnant's `days_from_civil` algorithm). Dates are stored as `i64` days
//! since 1970-01-01.

/// A civil calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    /// The year.
    pub year: i32,
    /// The month.
    pub month: u8,
    /// The day.
    pub day: u8,
}

/// Days in `month` of `year`, accounting for leap years.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Convert a civil date to days since 1970-01-01 (may be negative).
pub fn civil_to_days(date: CivilDate) -> i64 {
    let y = i64::from(date.year) - i64::from(date.month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(date.month);
    let d = i64::from(date.day);
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Convert days since 1970-01-01 back to a civil date.
pub fn days_to_civil(days: i64) -> CivilDate {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    CivilDate {
        year: (y + i64::from(m <= 2)) as i32,
        month: m as u8,
        day: d as u8,
    }
}

/// Parse an ISO `YYYY-MM-DD` string into days since the epoch.
pub fn parse_iso_date(s: &str) -> Option<i64> {
    let mut parts = s.splitn(3, '-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u8 = parts.next()?.parse().ok()?;
    let day: u8 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
        return None;
    }
    Some(civil_to_days(CivilDate { year, month, day }))
}

/// Format days since the epoch as ISO `YYYY-MM-DD`.
pub fn format_iso_date(days: i64) -> String {
    let c = days_to_civil(days);
    format!("{:04}-{:02}-{:02}", c.year, c.month, c.day)
}

/// Parse a relative-offset string such as `-30 days`, `+7 days`, or `-2
/// months`, returning the signed day count. Months are approximated as 30
/// days, matching the coarse interval semantics of the Covid workload.
pub fn parse_day_offset(s: &str) -> Option<i64> {
    let s = s.trim();
    let (num, unit) = s.split_once(' ')?;
    let n: i64 = num.parse().ok()?;
    let unit = unit.trim().to_ascii_lowercase();
    match unit.as_str() {
        "day" | "days" => Some(n),
        "week" | "weeks" => Some(n * 7),
        "month" | "months" => Some(n * 30),
        "year" | "years" => Some(n * 365),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(
            civil_to_days(CivilDate {
                year: 1970,
                month: 1,
                day: 1
            }),
            0
        );
        assert_eq!(
            days_to_civil(0),
            CivilDate {
                year: 1970,
                month: 1,
                day: 1
            }
        );
    }

    #[test]
    fn known_dates_round_trip() {
        // 2000-03-01 is day 11017.
        assert_eq!(
            civil_to_days(CivilDate {
                year: 2000,
                month: 3,
                day: 1
            }),
            11017
        );
        // 2019-01-25 appears in the Sales workload.
        let d = parse_iso_date("2019-01-25").unwrap();
        assert_eq!(format_iso_date(d), "2019-01-25");
    }

    #[test]
    fn round_trip_wide_range() {
        for days in (-200_000..200_000).step_by(137) {
            let c = days_to_civil(days);
            assert_eq!(civil_to_days(c), days, "round trip failed at {days}");
        }
    }

    #[test]
    fn consecutive_days_are_consecutive_dates() {
        let mut prev = days_to_civil(-1000);
        for d in -999..1000 {
            let c = days_to_civil(d);
            assert!(c > prev, "dates must be strictly increasing");
            prev = c;
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2020));
        assert!(!is_leap(2021));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
        assert_eq!(days_in_month(2021, 4), 30);
        assert_eq!(days_in_month(2021, 12), 31);
    }

    #[test]
    fn parse_rejects_bad_dates() {
        assert!(parse_iso_date("2021-02-29").is_none());
        assert!(parse_iso_date("2021-13-01").is_none());
        assert!(parse_iso_date("2021-00-10").is_none());
        assert!(parse_iso_date("2021-04-31").is_none());
        assert!(parse_iso_date("not a date").is_none());
        assert!(parse_iso_date("2021-04").is_none());
    }

    #[test]
    fn day_offsets() {
        assert_eq!(parse_day_offset("-30 days"), Some(-30));
        assert_eq!(parse_day_offset("-7 days"), Some(-7));
        assert_eq!(parse_day_offset("+14 days"), Some(14));
        assert_eq!(parse_day_offset("-2 weeks"), Some(-14));
        assert_eq!(parse_day_offset("-1 month"), Some(-30));
        assert_eq!(parse_day_offset("1 year"), Some(365));
        assert_eq!(parse_day_offset("eleven days"), None);
        assert_eq!(parse_day_offset("-30 parsecs"), None);
    }
}
