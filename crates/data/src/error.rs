//! Error type shared by the data substrate.

use std::fmt;

/// Errors raised by the data layer (value coercion, schema mismatches,
/// catalogue lookups).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum DataError {
    /// A value could not be coerced to the requested type.
    /// The mismatch.
    /// The type mismatch.
    TypeMismatch { expected: String, found: String },
    /// Referenced table does not exist in the catalogue.
    UnknownTable(String),
    /// Referenced column does not exist in a table / schema.
    UnknownColumn(String),
    /// Column reference is ambiguous across tables in scope.
    AmbiguousColumn(String),
    /// A row's arity does not match its table's schema.
    /// The arity mismatch.
    ArityMismatch { expected: usize, found: usize },
    /// Malformed literal (e.g. an unparseable date string).
    BadLiteral(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DataError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DataError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DataError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            DataError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, found {found}"
                )
            }
            DataError::BadLiteral(s) => write!(f, "bad literal: {s}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            DataError::TypeMismatch {
                expected: "num".into(),
                found: "str".into()
            }
            .to_string(),
            "type mismatch: expected num, found str"
        );
        assert_eq!(
            DataError::UnknownTable("t".into()).to_string(),
            "unknown table: t"
        );
        assert_eq!(
            DataError::UnknownColumn("c".into()).to_string(),
            "unknown column: c"
        );
        assert_eq!(
            DataError::AmbiguousColumn("c".into()).to_string(),
            "ambiguous column: c"
        );
        assert_eq!(
            DataError::ArityMismatch {
                expected: 2,
                found: 3
            }
            .to_string(),
            "row arity mismatch: expected 2 values, found 3"
        );
        assert_eq!(
            DataError::BadLiteral("x".into()).to_string(),
            "bad literal: x"
        );
    }
}
