//! Cheap non-cryptographic hashing for the columnar hot paths.
//!
//! `std`'s default SipHash costs more than the comparison it guards on the
//! grouping/join/distinct paths, where keys are a few words. [`FastHasher`]
//! is the Fx multiply-rotate hash (the rustc hasher); [`FastMap`] /
//! [`FastSet`] are `HashMap`/`HashSet` aliases using it. Hash-flooding
//! resistance is irrelevant here: inputs are the user's own table data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// FNV-1a over a byte string: the stable 64-bit fingerprint used for
/// wire-level and cache keys (e.g. resolved-SQL fingerprints), where the
/// value must not depend on hasher seeding or process state.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `HashMap` with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FastMap<i64, usize> = FastMap::default();
        for i in 0..1000i64 {
            m.insert(i, i as usize * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        let mut s: FastSet<&str> = FastSet::default();
        s.insert("a");
        assert!(s.contains("a") && !s.contains("b"));
    }

    #[test]
    fn distinct_inputs_hash_differently() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FastHasher> = BuildHasherDefault::default();
        assert_ne!(b.hash_one(1u64), b.hash_one(2u64));
        assert_ne!(b.hash_one("ab"), b.hash_one("ba"));
    }
}
