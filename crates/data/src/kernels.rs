//! Word-level (u64-lane) kernels and morsel partitioning.
//!
//! The vectorized engine's hottest inner loops — selection-vector
//! construction from a boolean predicate column and null-bitmap
//! intersection — process one row per iteration when written naively, and
//! the autovectorizer does not rescue them (the output is a variable-length
//! index list, not a map). The kernels here work 64 rows per step instead:
//! eight predicate bytes pack into eight mask bits with one multiply
//! (`0x0102_0408_1020_4080`), eight lanes assemble a 64-row word, NULLs are
//! knocked out with one AND against the inverted [`NullMask`] word, and set
//! bits convert to row indices with `trailing_zeros`.
//!
//! Morsel partitioning ([`morsel_ranges`]) is the unit of intra-query
//! parallelism: fixed-size contiguous row ranges over `Arc`-shared columns,
//! claimed dynamically by pool workers (see `pi2-engine`).

use crate::column::NullMask;

/// Default rows per morsel. Large enough that per-morsel dispatch overhead
/// (one atomic claim, one windowed relation) is noise against the scan work;
/// small enough that a pool keeps load-balancing on skewed predicates.
pub const MORSEL_ROWS: usize = 65_536;

/// Split `0..len` into contiguous `(lo, hi)` morsels of at most
/// `morsel_rows` rows (the last may be short). `morsel_rows == 0` is
/// treated as one morsel spanning everything; `len == 0` yields no morsels.
pub fn morsel_ranges(len: usize, morsel_rows: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    if morsel_rows == 0 {
        return vec![(0, len)];
    }
    (0..len.div_ceil(morsel_rows))
        .map(|m| (m * morsel_rows, ((m + 1) * morsel_rows).min(len)))
        .collect()
}

/// Multiplier packing eight `0x00`/`0x01` bytes into the top output byte:
/// `(lanes * PACK) >> 56` has bit `k` equal to input byte `k`.
const PACK: u64 = 0x0102_0408_1020_4080;

/// `&[bool]` viewed as raw bytes.
///
/// SAFETY (of the internal cast): `bool` is guaranteed to be one byte with
/// value `0x00` or `0x01`, so the reinterpretation is valid for reads.
#[inline]
fn bool_bytes(values: &[bool]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len()) }
}

/// Append the row indices of every set bit in `word` (rows `base + bit`).
#[inline]
fn push_set_bits(mut word: u64, base: u32, out: &mut Vec<u32>) {
    while word != 0 {
        out.push(base + word.trailing_zeros());
        word &= word - 1;
    }
}

/// Selection-vector construction: the indices (offset by `base`) of rows
/// where the predicate is `true` *and* valid, 64 rows per step.
///
/// This fuses the two word-level kernels: predicate bytes → bitmap word
/// (the `PACK` multiply), then intersection with the validity bitmap
/// (`& !null_word`). Equivalent to the naive
/// `values[i] && !nulls.is_null(i)` loop, returned in ascending row order.
pub fn bool_selection(values: &[bool], nulls: &NullMask, base: u32) -> Vec<u32> {
    debug_assert_eq!(values.len(), nulls.len());
    let mut out = Vec::new();
    let bytes = bool_bytes(values);
    let null_words = nulls.words();
    let mut chunks = bytes.chunks_exact(64);
    let mut w = 0usize;
    for chunk in &mut chunks {
        let mut word = 0u64;
        for (k, lane) in chunk.chunks_exact(8).enumerate() {
            let lane = u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
            word |= (lane.wrapping_mul(PACK) >> 56) << (8 * k);
        }
        // Validity intersection: knock out NULL rows one word at a time.
        word &= !null_words[w];
        push_set_bits(word, base + (w as u32) * 64, &mut out);
        w += 1;
    }
    for (k, &v) in chunks.remainder().iter().enumerate() {
        let row = w * 64 + k;
        if v != 0 && !nulls.is_null(row) {
            out.push(base + row as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic bit source for test patterns.
    fn splitmix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn reference(values: &[bool], nulls: &NullMask, base: u32) -> Vec<u32> {
        (0..values.len())
            .filter(|&i| values[i] && !nulls.is_null(i))
            .map(|i| base + i as u32)
            .collect()
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        assert_eq!(morsel_ranges(0, 4), vec![]);
        assert_eq!(morsel_ranges(10, 0), vec![(0, 10)]);
        assert_eq!(morsel_ranges(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(morsel_ranges(8, 4), vec![(0, 4), (4, 8)]);
        let ranges = morsel_ranges(1_000_003, MORSEL_ROWS);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 1_000_003);
        assert!(ranges.windows(2).all(|w| w[0].1 == w[1].0));
    }

    #[test]
    fn selection_matches_naive_loop() {
        let mut seed = 7u64;
        for len in [0usize, 1, 7, 63, 64, 65, 127, 128, 200, 1023] {
            let values: Vec<bool> = (0..len).map(|_| splitmix(&mut seed) & 1 == 1).collect();
            let mut nulls = NullMask::new();
            for _ in 0..len {
                nulls.push(splitmix(&mut seed).is_multiple_of(4));
            }
            assert_eq!(
                bool_selection(&values, &nulls, 3),
                reference(&values, &nulls, 3),
                "len {len}"
            );
        }
    }

    #[test]
    fn selection_with_all_valid_mask() {
        let values: Vec<bool> = (0..150).map(|i| i % 3 == 0).collect();
        let nulls = NullMask::all_valid(150);
        assert_eq!(
            bool_selection(&values, &nulls, 0),
            reference(&values, &nulls, 0)
        );
    }

    #[test]
    fn nullmask_slice_matches_per_bit() {
        let mut seed = 11u64;
        let mut mask = NullMask::new();
        for _ in 0..300 {
            mask.push(splitmix(&mut seed).is_multiple_of(3));
        }
        for (lo, hi) in [(0, 300), (1, 300), (63, 200), (64, 128), (65, 66), (7, 7)] {
            let s = mask.slice(lo, hi);
            assert_eq!(s.len(), hi - lo);
            for i in 0..(hi - lo) {
                assert_eq!(s.is_null(i), mask.is_null(lo + i), "({lo},{hi}) bit {i}");
            }
            assert_eq!(
                s.null_count(),
                (lo..hi).filter(|&i| mask.is_null(i)).count()
            );
        }
    }

    #[test]
    fn nullmask_union_is_validity_intersection() {
        let mut seed = 13u64;
        let (mut a, mut b) = (NullMask::new(), NullMask::new());
        for _ in 0..130 {
            a.push(splitmix(&mut seed).is_multiple_of(3));
            b.push(splitmix(&mut seed).is_multiple_of(5));
        }
        let u = a.union(&b);
        for i in 0..130 {
            assert_eq!(u.is_null(i), a.is_null(i) || b.is_null(i));
        }
        let all = NullMask::all_valid(130);
        assert_eq!(a.union(&all), a);
        assert_eq!(all.union(&b), b);
    }
}
