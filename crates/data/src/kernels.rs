//! Word-level (u64-lane) and explicit-SIMD compute kernels, plus morsel
//! partitioning.
//!
//! The vectorized engine's hottest inner loops — typed comparison filters,
//! dict-code equality/IN, three-valued boolean logic, selection-vector
//! construction and sum/min/max/count aggregation — process one row per
//! iteration when written naively, and the autovectorizer does not rescue
//! the interesting ones (variable-length outputs, gathers, three-valued
//! logic). The kernels here work a cache line at a time instead, in three
//! tiers selected once at startup:
//!
//! * **Avx2** — 256-bit `std::arch::x86_64` paths (8 rows per compare step,
//!   gathered 4-lane i64 aggregation), used when the CPU reports AVX2.
//! * **Sse2** — 128-bit paths for f64/u32 compares and predicate packing
//!   (SSE2 is baseline on x86_64; i64 compares and gathers have no SSE2
//!   form and fall back to the portable tier).
//! * **Scalar** — portable u64-lane / scalar code, the reference the SIMD
//!   tiers must match bit-for-bit, and the only tier on non-x86 targets.
//!
//! Dispatch rules: the hardware tier is detected once via
//! `is_x86_feature_detected!` and cached in a `OnceLock`; setting
//! `PI2_SIMD=0` in the environment pins the Scalar tier (kill switch);
//! tests force a tier in-process with [`set_simd_level`] (clamped to what
//! the hardware supports, so forcing Avx2 on a non-AVX2 box degrades
//! safely). Every kernel returns results bit-identical to the scalar
//! engine — f64 summation is never reassociated ([`sum_f64`] stays
//! sequential, and [`sum_i64`] only takes the integer-SIMD shortcut when a
//! `count · max|v| ≤ 2⁵³` bound proves every scalar partial sum was exact).
//!
//! Morsel partitioning ([`morsel_ranges`]) is the unit of intra-query
//! parallelism: fixed-size contiguous row ranges over `Arc`-shared columns,
//! claimed dynamically by pool workers (see `pi2-engine`).

use crate::column::{f64_ord_key, NullMask};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};
use std::sync::OnceLock;

/// Default rows per morsel. Large enough that per-morsel dispatch overhead
/// (one atomic claim, one windowed relation) is noise against the scan work;
/// small enough that a pool keeps load-balancing on skewed predicates.
pub const MORSEL_ROWS: usize = 65_536;

/// Split `0..len` into contiguous `(lo, hi)` morsels of at most
/// `morsel_rows` rows (the last may be short). `morsel_rows == 0` is
/// treated as one morsel spanning everything; `len == 0` yields no morsels.
pub fn morsel_ranges(len: usize, morsel_rows: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    if morsel_rows == 0 {
        return vec![(0, len)];
    }
    (0..len.div_ceil(morsel_rows))
        .map(|m| (m * morsel_rows, ((m + 1) * morsel_rows).min(len)))
        .collect()
}

// ---------------------------------------------------------------------------
// SIMD tier selection
// ---------------------------------------------------------------------------

/// Instruction-set tier a kernel call runs at. Ordered: a forced level is
/// clamped to what the hardware supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable u64-lane / scalar code (the bit-exactness reference).
    Scalar = 0,
    /// 128-bit `std::arch::x86_64` paths (baseline on x86_64).
    Sse2 = 1,
    /// 256-bit `std::arch::x86_64` paths.
    Avx2 = 2,
}

/// Best tier this CPU supports, detected once.
fn hw_level() -> SimdLevel {
    static HW: OnceLock<SimdLevel> = OnceLock::new();
    *HW.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return SimdLevel::Sse2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Tier after applying the `PI2_SIMD=0` kill switch, read once.
fn default_level() -> SimdLevel {
    static DEFAULT: OnceLock<SimdLevel> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if std::env::var("PI2_SIMD").is_ok_and(|v| v == "0") {
            SimdLevel::Scalar
        } else {
            hw_level()
        }
    })
}

/// In-process override for tests: `u8::MAX` means "not forced".
static FORCED: AtomicU8 = AtomicU8::new(u8::MAX);

/// Force every subsequent kernel call onto `level` (clamped to the
/// hardware's capability), or restore default dispatch with `None`. Test
/// hook: the differential suites sweep Scalar/Sse2/Avx2 in one process.
pub fn set_simd_level(level: Option<SimdLevel>) {
    FORCED.store(
        level.map(|l| l as u8).unwrap_or(u8::MAX),
        AtomicOrdering::Relaxed,
    );
}

/// The tier kernels dispatch on for this call.
#[inline]
pub fn simd_level() -> SimdLevel {
    match FORCED.load(AtomicOrdering::Relaxed) {
        0 => SimdLevel::Scalar,
        1 => SimdLevel::Sse2.min(hw_level()),
        2 => SimdLevel::Avx2.min(hw_level()),
        _ => default_level(),
    }
}

// ---------------------------------------------------------------------------
// Bool-byte plumbing
// ---------------------------------------------------------------------------

/// Multiplier packing eight `0x00`/`0x01` bytes into the top output byte:
/// `(lanes * PACK) >> 56` has bit `k` equal to input byte `k`.
const PACK: u64 = 0x0102_0408_1020_4080;

/// `&[bool]` viewed as raw bytes.
///
/// SAFETY (of the internal cast): `bool` is guaranteed to be one byte with
/// value `0x00` or `0x01`, so the reinterpretation is valid for reads.
#[inline]
fn bool_bytes(values: &[bool]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len()) }
}

/// `&mut [bool]` viewed as raw bytes, for kernels that store predicate
/// results byte-at-a-time.
///
/// SAFETY (of the internal cast): same layout as [`bool_bytes`]; every
/// writer in this module stores only `0x00` or `0x01`, so the `bool`s stay
/// valid.
#[inline]
fn bool_bytes_mut(values: &mut [bool]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(values.as_mut_ptr().cast::<u8>(), values.len()) }
}

/// 8-bit mask → eight `0x00`/`0x01` bytes, little-endian bit order.
/// Indexed by movemask results to turn lane masks into bool bytes.
const fn lut8() -> [u64; 256] {
    let mut t = [0u64; 256];
    let mut m = 0;
    while m < 256 {
        let mut v = 0u64;
        let mut b = 0;
        while b < 8 {
            if m >> b & 1 == 1 {
                v |= 1 << (8 * b);
            }
            b += 1;
        }
        t[m] = v;
        m += 1;
    }
    t
}

/// See [`lut8`].
static LUT8: [u64; 256] = lut8();

/// Zero the unused high bits of the tail word (slots `len..`).
fn clear_tail(words: &mut [u64], len: usize) {
    if let (Some(last), rem @ 1..) = (words.last_mut(), len % 64) {
        *last &= (1u64 << rem) - 1;
    }
}

/// Pack a predicate column into bitmap words (bit `i%64` of word `i/64` set
/// ⇒ `values[i]`; tail bits beyond `len` are zero).
pub fn pack_bools(values: &[bool]) -> Vec<u64> {
    let bytes = bool_bytes(values);
    let mut words = vec![0u64; values.len().div_ceil(64)];
    let full = values.len() / 64;
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::pack_words_avx2(bytes, &mut words[..full]) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::pack_words_sse2(bytes, &mut words[..full]),
        _ => pack_words_portable(bytes, &mut words[..full]),
    }
    for (k, &b) in bytes[full * 64..].iter().enumerate() {
        if b != 0 {
            words[full] |= 1 << k;
        }
    }
    words
}

/// Portable word packer: eight bytes → eight bits with one multiply.
fn pack_words_portable(bytes: &[u8], words: &mut [u64]) {
    for (w, word) in words.iter_mut().enumerate() {
        let mut acc = 0u64;
        for (k, lane) in bytes[w * 64..w * 64 + 64].chunks_exact(8).enumerate() {
            let lane = u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
            acc |= (lane.wrapping_mul(PACK) >> 56) << (8 * k);
        }
        *word = acc;
    }
}

/// Unpack bitmap words back into a bool column of `len` slots (inverse of
/// [`pack_bools`]; bits beyond `len` are ignored). Expands one byte of the
/// word to eight bool bytes with three shift-or steps.
pub fn unpack_words(words: &[u64], len: usize) -> Vec<bool> {
    let mut bytes = vec![0u8; len];
    let full = len / 64;
    for w in 0..full {
        let word = words[w];
        for k in 0..8 {
            let b = (word >> (8 * k)) & 0xFF;
            let mut y = b.wrapping_mul(0x0101_0101_0101_0101) & 0x8040_2010_0804_0201;
            y |= y >> 4;
            y |= y >> 2;
            y |= y >> 1;
            y &= 0x0101_0101_0101_0101;
            bytes[w * 64 + 8 * k..w * 64 + 8 * k + 8].copy_from_slice(&y.to_le_bytes());
        }
    }
    for (k, byte) in bytes[full * 64..].iter_mut().enumerate() {
        *byte = (words[full] >> k & 1) as u8;
    }
    // SAFETY: `u8` and `bool` have identical size/alignment and every byte
    // written above is 0 or 1, a valid `bool` representation; ownership of
    // the allocation transfers without copying.
    let mut bytes = std::mem::ManuallyDrop::new(bytes);
    unsafe {
        Vec::from_raw_parts(
            bytes.as_mut_ptr().cast::<bool>(),
            bytes.len(),
            bytes.capacity(),
        )
    }
}

/// Clear `values[i]` wherever `nulls` flags slot `i` — the engine's
/// "placeholder false under NULL" convention for predicate outputs.
pub fn zero_nulls(values: &mut [bool], nulls: &NullMask) {
    debug_assert_eq!(values.len(), nulls.len());
    if nulls.null_count() == 0 {
        return;
    }
    for (w, &word) in nulls.words().iter().enumerate() {
        let mut word = word;
        while word != 0 {
            values[w * 64 + word.trailing_zeros() as usize] = false;
            word &= word - 1;
        }
    }
}

/// Append the row indices of every set bit in `word` (rows `base + bit`).
#[inline]
fn push_set_bits(mut word: u64, base: u32, out: &mut Vec<u32>) {
    while word != 0 {
        out.push(base + word.trailing_zeros());
        word &= word - 1;
    }
}

/// Selection-vector construction: the indices (offset by `base`) of rows
/// where the predicate is `true` *and* valid, 64 rows per step.
///
/// This fuses the two word-level kernels: predicate bytes → bitmap words
/// ([`pack_bools`], SIMD-packed when available), then intersection with the
/// validity bitmap (`& !null_word`). Equivalent to the naive
/// `values[i] && !nulls.is_null(i)` loop, returned in ascending row order.
pub fn bool_selection(values: &[bool], nulls: &NullMask, base: u32) -> Vec<u32> {
    debug_assert_eq!(values.len(), nulls.len());
    let mut out = Vec::new();
    let null_words = nulls.words();
    for (w, word) in pack_bools(values).into_iter().enumerate() {
        // Validity intersection: knock out NULL rows one word at a time.
        // The value word's tail bits are zero, so the inverted null tail
        // (all ones) cannot leak phantom rows.
        push_set_bits(word & !null_words[w], base + (w as u32) * 64, &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// Typed comparison filters
// ---------------------------------------------------------------------------

/// Comparison operator for the typed filter kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the standard six comparison operators
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Pure-integer rewrite of `(v as f64) op c`, derived from the monotone
/// i64 → f64 conversion: `t_ge = min{v : (v as f64) ≥ c}` and
/// `t_gt = min{v : (v as f64) > c}` (binary-searched) turn every operator
/// into integer range tests SIMD can evaluate exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntPred {
    AllTrue,
    AllFalse,
    /// `v >= t`
    Ge(i64),
    /// `v < t`
    Lt(i64),
    /// `lo <= v < hi`
    In(i64, i64),
    /// `!(lo <= v < hi)`
    NotIn(i64, i64),
}

impl IntPred {
    #[inline]
    fn test(&self, v: i64) -> bool {
        match *self {
            IntPred::AllTrue => true,
            IntPred::AllFalse => false,
            IntPred::Ge(t) => v >= t,
            IntPred::Lt(t) => v < t,
            IntPred::In(lo, hi) => lo <= v && v < hi,
            IntPred::NotIn(lo, hi) => !(lo <= v && v < hi),
        }
    }
}

/// Smallest `v` with `pred(v)` for a monotone (false…false,true…true)
/// predicate, as an i128 so "none" is `i64::MAX + 1`.
fn lower_bound_i64(mut pred: impl FnMut(i64) -> bool) -> i128 {
    if !pred(i64::MAX) {
        return i64::MAX as i128 + 1;
    }
    if pred(i64::MIN) {
        return i64::MIN as i128;
    }
    let (mut lo, mut hi) = (i64::MIN as i128, i64::MAX as i128);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if pred(mid as i64) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

const I64_NONE: i128 = i64::MAX as i128 + 1;
const I64_ALL: i128 = i64::MIN as i128;

/// Compile `(v as f64) op c` into an [`IntPred`].
fn int_plan(c: f64, op: CmpOp) -> IntPred {
    if c.is_nan() {
        // IEEE: every ordered comparison with NaN is false, `!=` is true.
        return match op {
            CmpOp::Ne => IntPred::AllTrue,
            _ => IntPred::AllFalse,
        };
    }
    let t_ge = lower_bound_i64(|v| (v as f64) >= c);
    let ge = |t: i128| match t {
        I64_ALL => IntPred::AllTrue,
        I64_NONE => IntPred::AllFalse,
        t => IntPred::Ge(t as i64),
    };
    let lt = |t: i128| match t {
        I64_ALL => IntPred::AllFalse,
        I64_NONE => IntPred::AllTrue,
        t => IntPred::Lt(t as i64),
    };
    match op {
        CmpOp::Ge => ge(t_ge),
        CmpOp::Lt => lt(t_ge),
        CmpOp::Gt => ge(lower_bound_i64(|v| (v as f64) > c)),
        CmpOp::Le => lt(lower_bound_i64(|v| (v as f64) > c)),
        CmpOp::Eq | CmpOp::Ne => {
            let t_gt = lower_bound_i64(|v| (v as f64) > c);
            let eq = match (t_ge, t_gt) {
                (a, b) if a == b => IntPred::AllFalse,
                (I64_ALL, I64_NONE) => IntPred::AllTrue,
                (I64_ALL, b) => IntPred::Lt(b as i64),
                (a, I64_NONE) => IntPred::Ge(a as i64),
                (a, b) => IntPred::In(a as i64, b as i64),
            };
            if op == CmpOp::Eq {
                eq
            } else {
                match eq {
                    IntPred::AllFalse => IntPred::AllTrue,
                    IntPred::AllTrue => IntPred::AllFalse,
                    IntPred::Lt(t) => IntPred::Ge(t),
                    IntPred::Ge(t) => IntPred::Lt(t),
                    IntPred::In(lo, hi) => IntPred::NotIn(lo, hi),
                    p => p,
                }
            }
        }
    }
}

/// `(v as f64) op c` over an `i64`/`Date64` slice — the engine's
/// int-vs-literal comparison semantics, evaluated as exact integer range
/// tests (see the private `IntPred` plan).
pub fn cmp_i64(values: &[i64], c: f64, op: CmpOp) -> Vec<bool> {
    let plan = int_plan(c, op);
    match plan {
        IntPred::AllTrue => return vec![true; values.len()],
        IntPred::AllFalse => return vec![false; values.len()],
        _ => {}
    }
    let mut out = vec![false; values.len()];
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::cmp_i64_avx2(values, &plan, bool_bytes_mut(&mut out)) },
        // SSE2 has no 64-bit integer compare; the portable loop is the
        // Sse2-tier implementation too.
        _ => cmp_i64_portable(values, &plan, &mut out),
    }
    out
}

fn cmp_i64_portable(values: &[i64], plan: &IntPred, out: &mut [bool]) {
    match *plan {
        IntPred::Ge(t) => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v >= t;
            }
        }
        IntPred::Lt(t) => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v < t;
            }
        }
        IntPred::In(lo, hi) => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = lo <= v && v < hi;
            }
        }
        IntPred::NotIn(lo, hi) => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = !(lo <= v && v < hi);
            }
        }
        IntPred::AllTrue | IntPred::AllFalse => unreachable!("handled by caller"),
    }
}

/// `v op c` over an `f64` slice with IEEE semantics (ordered comparisons
/// are false on NaN, `!=` is true; `-0.0 == 0.0`) — exactly the engine's
/// float-vs-literal comparison.
pub fn cmp_f64(values: &[f64], c: f64, op: CmpOp) -> Vec<bool> {
    let mut out = vec![false; values.len()];
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::cmp_f64_avx2(values, c, op, bool_bytes_mut(&mut out)) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::cmp_f64_sse2(values, c, op, bool_bytes_mut(&mut out)),
        _ => cmp_f64_portable(values, c, op, &mut out),
    }
    out
}

fn cmp_f64_portable(values: &[f64], c: f64, op: CmpOp, out: &mut [bool]) {
    match op {
        CmpOp::Eq => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v == c;
            }
        }
        CmpOp::Ne => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v != c;
            }
        }
        CmpOp::Lt => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v < c;
            }
        }
        CmpOp::Le => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v <= c;
            }
        }
        CmpOp::Gt => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v > c;
            }
        }
        CmpOp::Ge => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v >= c;
            }
        }
    }
}

/// `v op c` over dictionary codes (`u32`, unsigned order) — the dict-filter
/// kernel behind string-vs-literal comparisons.
pub fn cmp_u32(values: &[u32], c: u32, op: CmpOp) -> Vec<bool> {
    let mut out = vec![false; values.len()];
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::cmp_u32_avx2(values, c, op, bool_bytes_mut(&mut out)) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => x86::cmp_u32_sse2(values, c, op, bool_bytes_mut(&mut out)),
        _ => cmp_u32_portable(values, c, op, &mut out),
    }
    out
}

fn cmp_u32_portable(values: &[u32], c: u32, op: CmpOp, out: &mut [bool]) {
    match op {
        CmpOp::Eq => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v == c;
            }
        }
        CmpOp::Ne => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v != c;
            }
        }
        CmpOp::Lt => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v < c;
            }
        }
        CmpOp::Le => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v <= c;
            }
        }
        CmpOp::Gt => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v > c;
            }
        }
        CmpOp::Ge => {
            for (o, &v) in out.iter_mut().zip(values) {
                *o = v >= c;
            }
        }
    }
}

/// `v ∈ sorted` over dictionary codes (the IN-list kernel). `sorted` must
/// be strictly ascending. Small sets take a SIMD equality chain; larger
/// sets with small code spans take a lookup table; huge spans (codes near
/// `u32::MAX`) binary-search.
pub fn in_set_u32(values: &[u32], sorted: &[u32]) -> Vec<bool> {
    debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    let mut out = vec![false; values.len()];
    let Some(&last) = sorted.last() else {
        return out;
    };
    if sorted.len() <= 8 {
        match simd_level() {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe {
                x86::in_small_set_avx2(values, sorted, bool_bytes_mut(&mut out))
            },
            _ => {
                for (o, v) in out.iter_mut().zip(values) {
                    *o = sorted.contains(v);
                }
            }
        }
    } else if (last as usize) < (1 << 22) {
        let mut table = vec![false; last as usize + 1];
        for &s in sorted {
            table[s as usize] = true;
        }
        for (o, &v) in out.iter_mut().zip(values) {
            *o = v <= last && table[v as usize];
        }
    } else {
        for (o, v) in out.iter_mut().zip(values) {
            *o = sorted.binary_search(v).is_ok();
        }
    }
    out
}

/// Whether any element is NaN (SIMD-accelerated scan used to guard the
/// float filter fast paths).
pub fn has_nan(values: &[f64]) -> bool {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::has_nan_avx2(values) },
        _ => values.iter().any(|v| v.is_nan()),
    }
}

// ---------------------------------------------------------------------------
// Three-valued boolean logic
// ---------------------------------------------------------------------------

/// Word-level Kleene connective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the two connectives
pub enum Kleene {
    And,
    Or,
}

/// SQL three-valued AND/OR over two nullable bool columns, 64 rows per
/// step. Truth table (Kleene): `FALSE AND NULL = FALSE`,
/// `TRUE OR NULL = TRUE`, otherwise NULL propagates. Output slots that are
/// NULL carry the engine's `false` placeholder.
pub fn kleene(
    op: Kleene,
    av: &[bool],
    an: &NullMask,
    bv: &[bool],
    bn: &NullMask,
) -> (Vec<bool>, NullMask) {
    let len = av.len();
    debug_assert!(bv.len() == len && an.len() == len && bn.len() == len);
    let aw = pack_bools(av);
    let bw = pack_bools(bv);
    let (anw, bnw) = (an.words(), bn.words());
    let mut vw = vec![0u64; aw.len()];
    let mut nw = vec![0u64; aw.len()];
    for i in 0..aw.len() {
        // Known-true / known-false lanes; everything else is NULL.
        let at = aw[i] & !anw[i];
        let af = !aw[i] & !anw[i];
        let bt = bw[i] & !bnw[i];
        let bf = !bw[i] & !bnw[i];
        let (t, f) = match op {
            Kleene::And => (at & bt, af | bf),
            Kleene::Or => (at | bt, af & bf),
        };
        vw[i] = t;
        nw[i] = !(t | f);
    }
    clear_tail(&mut vw, len);
    clear_tail(&mut nw, len);
    (unpack_words(&vw, len), NullMask::from_words(nw, len))
}

/// The BETWEEN combiner over the two half-range predicates: NULL if either
/// side is NULL, else `(ge && le) != negated` — the engine's
/// `eval_between_bools`, 64 rows per step.
pub fn between_combine(
    gev: &[bool],
    gen: &NullMask,
    lev: &[bool],
    len_mask: &NullMask,
    negated: bool,
) -> (Vec<bool>, NullMask) {
    let len = gev.len();
    debug_assert!(lev.len() == len && gen.len() == len && len_mask.len() == len);
    let aw = pack_bools(gev);
    let bw = pack_bools(lev);
    let (anw, bnw) = (gen.words(), len_mask.words());
    let neg = if negated { !0u64 } else { 0 };
    let mut vw = vec![0u64; aw.len()];
    let mut nw = vec![0u64; aw.len()];
    for i in 0..aw.len() {
        let valid = !anw[i] & !bnw[i];
        vw[i] = ((aw[i] & bw[i]) ^ neg) & valid;
        nw[i] = !valid;
    }
    clear_tail(&mut vw, len);
    clear_tail(&mut nw, len);
    (unpack_words(&vw, len), NullMask::from_words(nw, len))
}

/// `IS NULL` (`negated == false`) / `IS NOT NULL` (`negated == true`) as a
/// bool column, straight from the bitmap words.
pub fn null_flags(nulls: &NullMask, negated: bool) -> Vec<bool> {
    if !negated {
        return unpack_words(nulls.words(), nulls.len());
    }
    let mut words: Vec<u64> = nulls.words().iter().map(|w| !w).collect();
    clear_tail(&mut words, nulls.len());
    unpack_words(&words, nulls.len())
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Non-NULL slots among `idx` (the `count(col)` kernel).
pub fn count_valid(nulls: &NullMask, idx: &[u32]) -> usize {
    if nulls.null_count() == 0 {
        return idx.len();
    }
    let words = nulls.words();
    idx.iter()
        .filter(|&&i| words[i as usize / 64] >> (i as usize % 64) & 1 == 0)
        .count()
}

/// One-pass integer statistics over the selected slots: wrapping sum, min,
/// max and valid count. The wrapped sum is only *used* when the 2⁵³ bound
/// below proves it never wrapped.
fn int_stats(values: &[i64], nulls: &NullMask, idx: &[u32]) -> (i64, i64, i64, usize) {
    if nulls.null_count() == 0 {
        #[cfg(target_arch = "x86_64")]
        if simd_level() == SimdLevel::Avx2 && values.len() <= i32::MAX as usize {
            return unsafe { x86::int_stats_avx2(values, idx) };
        }
        return int_stats_dense_portable(values, idx);
    }
    let words = nulls.words();
    let (mut sum, mut mn, mut mx, mut count) = (0i64, i64::MAX, i64::MIN, 0usize);
    for &i in idx {
        let i = i as usize;
        if words[i / 64] >> (i % 64) & 1 == 0 {
            let v = values[i];
            sum = sum.wrapping_add(v);
            mn = mn.min(v);
            mx = mx.max(v);
            count += 1;
        }
    }
    (sum, mn, mx, count)
}

/// Portable dense pass, four independent accumulator lanes so the adds and
/// min/max chains pipeline (wrapping add and integer min/max are
/// associative, so lane order cannot change the result).
fn int_stats_dense_portable(values: &[i64], idx: &[u32]) -> (i64, i64, i64, usize) {
    let mut s = [0i64; 4];
    let mut mn = [i64::MAX; 4];
    let mut mx = [i64::MIN; 4];
    let mut chunks = idx.chunks_exact(4);
    for ch in &mut chunks {
        for k in 0..4 {
            let v = values[ch[k] as usize];
            s[k] = s[k].wrapping_add(v);
            mn[k] = mn[k].min(v);
            mx[k] = mx[k].max(v);
        }
    }
    let (mut sum, mut min, mut max) = (0i64, i64::MAX, i64::MIN);
    for k in 0..4 {
        sum = sum.wrapping_add(s[k]);
        min = min.min(mn[k]);
        max = max.max(mx[k]);
    }
    for &i in chunks.remainder() {
        let v = values[i as usize];
        sum = sum.wrapping_add(v);
        min = min.min(v);
        max = max.max(v);
    }
    (sum, min, max, idx.len())
}

/// Sum over the selected slots of an `i64` column, returning exactly what
/// the scalar engine's sequential `total += v as f64` loop returns, plus
/// the valid count.
///
/// Fast path: an integer (SIMD) pass. It is bit-identical to the scalar
/// loop whenever `count · max|v| ≤ 2⁵³`: every scalar partial sum is then
/// an integer of magnitude ≤ 2⁵³, each f64 add is exact, and the exact sum
/// is order-independent. Outside that bound the scalar loop is replayed
/// verbatim (its rounding is order-dependent and part of the contract).
pub fn sum_i64(values: &[i64], nulls: &NullMask, idx: &[u32]) -> (f64, usize) {
    let (sum, mn, mx, count) = int_stats(values, nulls, idx);
    if count == 0 {
        return (0.0, 0);
    }
    let bound = mn.unsigned_abs().max(mx.unsigned_abs()) as u128 * count as u128;
    if bound <= 1u128 << 53 {
        return (sum as f64, count);
    }
    let mut total = 0.0f64;
    let mut n = 0usize;
    for &i in idx {
        let i = i as usize;
        if !nulls.is_null(i) {
            total += values[i] as f64;
            n += 1;
        }
    }
    (total, n)
}

/// Sum over the selected slots of an `f64` column. **Never SIMD**: f64
/// addition is not associative and the engine's result is defined as the
/// sequential idx-order sum — reassociating into lanes would change
/// low-order bits (pinned by the differential tests).
pub fn sum_f64(values: &[f64], nulls: &NullMask, idx: &[u32]) -> (f64, usize) {
    let mut total = 0.0f64;
    if nulls.null_count() == 0 {
        for &i in idx {
            total += values[i as usize];
        }
        return (total, idx.len());
    }
    let mut n = 0usize;
    for &i in idx {
        let i = i as usize;
        if !nulls.is_null(i) {
            total += values[i];
            n += 1;
        }
    }
    (total, n)
}

/// min/max over the selected slots of an `i64` column, matching the scalar
/// engine's fold over `(v as f64).total_cmp` with first-tie-wins for min
/// and last-tie-wins for max. Within ±2⁵³ the conversion is injective, so
/// the integer (SIMD) pass's answer is the unique scalar answer; beyond it
/// conversion ties make the winning *index* observable and the scalar fold
/// is replayed.
pub fn min_max_i64(values: &[i64], nulls: &NullMask, idx: &[u32], want_min: bool) -> Option<i64> {
    let (_, mn, mx, count) = int_stats(values, nulls, idx);
    if count == 0 {
        return None;
    }
    if mn.unsigned_abs().max(mx.unsigned_abs()) <= 1u64 << 53 {
        return Some(if want_min { mn } else { mx });
    }
    let mut best: Option<usize> = None;
    for &i in idx {
        let i = i as usize;
        if nulls.is_null(i) {
            continue;
        }
        best = Some(match best {
            None => i,
            Some(b) => {
                let ord = (values[i] as f64).total_cmp(&(values[b] as f64));
                let replace = if want_min {
                    ord == Ordering::Less
                } else {
                    ord != Ordering::Less
                };
                if replace {
                    i
                } else {
                    b
                }
            }
        });
    }
    best.map(|b| values[b])
}

/// The engine's Float64 ordering: IEEE `partial_cmp`, falling back to the
/// total-order key only when NaN is involved.
#[inline]
fn cmp_f64_engine(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b)
        .unwrap_or_else(|| f64_ord_key(a).cmp(&f64_ord_key(b)))
}

/// min/max over the selected slots of an `f64` column, matching the scalar
/// engine's fold (first-tie-wins min, last-tie-wins max — observable at
/// `-0.0` vs `0.0`, which compare Equal but print differently).
///
/// Fast path: a numeric (SIMD) min/max pass with in-pass NaN detection;
/// a `±0.0` result re-scans for the tie-winning occurrence. NaN or NULLs
/// present → scalar fold replay.
pub fn min_max_f64(values: &[f64], nulls: &NullMask, idx: &[u32], want_min: bool) -> Option<f64> {
    if idx.is_empty() {
        return None;
    }
    if nulls.null_count() == 0 {
        let (m, saw_nan) = match simd_level() {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 if values.len() <= i32::MAX as usize => unsafe {
                x86::fold_f64_avx2(values, idx, want_min)
            },
            _ => fold_f64_portable(values, idx, want_min),
        };
        if !saw_nan {
            if m == 0.0 {
                // Both zero signs compare Equal: the fold keeps the first
                // (min) / last (max) occurrence, so its sign is observable.
                let hit = if want_min {
                    idx.iter().find(|&&i| values[i as usize] == 0.0)
                } else {
                    idx.iter().rev().find(|&&i| values[i as usize] == 0.0)
                };
                return hit.map(|&i| values[i as usize]);
            }
            return Some(m);
        }
    }
    let mut best: Option<usize> = None;
    for &i in idx {
        let i = i as usize;
        if nulls.is_null(i) {
            continue;
        }
        best = Some(match best {
            None => i,
            Some(b) => {
                let ord = cmp_f64_engine(values[i], values[b]);
                let replace = if want_min {
                    ord == Ordering::Less
                } else {
                    ord != Ordering::Less
                };
                if replace {
                    i
                } else {
                    b
                }
            }
        });
    }
    best.map(|b| values[b])
}

fn fold_f64_portable(values: &[f64], idx: &[u32], want_min: bool) -> (f64, bool) {
    let mut nan = false;
    if want_min {
        let mut m = f64::INFINITY;
        for &i in idx {
            let v = values[i as usize];
            nan |= v.is_nan();
            m = m.min(v);
        }
        (m, nan)
    } else {
        let mut m = f64::NEG_INFINITY;
        for &i in idx {
            let v = values[i as usize];
            nan |= v.is_nan();
            m = m.max(v);
        }
        (m, nan)
    }
}

// ---------------------------------------------------------------------------
// x86-64 SIMD tier
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unused_unsafe)]
mod x86 {
    use super::{CmpOp, IntPred, LUT8};
    use std::arch::x86_64::*;

    /// Write eight predicate bytes decoded from an 8-bit lane mask.
    #[inline(always)]
    fn write8(out: &mut [u8], o: usize, bits: u8) {
        out[o..o + 8].copy_from_slice(&LUT8[bits as usize].to_le_bytes());
    }

    /// Sign bits of four 64-bit lanes (an all-ones/all-zeros compare mask).
    #[inline(always)]
    unsafe fn mask4_epi64(m: __m256i) -> u8 {
        unsafe { _mm256_movemask_pd(_mm256_castsi256_pd(m)) as u8 }
    }

    /// Sign bits of eight 32-bit lanes.
    #[inline(always)]
    unsafe fn mask8_epi32(m: __m256i) -> u8 {
        unsafe { _mm256_movemask_ps(_mm256_castsi256_ps(m)) as u8 }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmp_i64_avx2(values: &[i64], plan: &IntPred, out: &mut [u8]) {
        // Every reachable plan reduces to one or two `v > t` tests: v >= t
        // ⇔ v > t-1 (t > i64::MIN is guaranteed — the boundary cases fold
        // to AllTrue/AllFalse in `int_plan`).
        let (a, b, lo_only, invert) = match *plan {
            IntPred::Ge(t) => (t - 1, 0, true, false),
            IntPred::Lt(t) => (t - 1, 0, true, true),
            IntPred::In(lo, hi) => (lo - 1, hi - 1, false, false),
            IntPred::NotIn(lo, hi) => (lo - 1, hi - 1, false, true),
            IntPred::AllTrue | IntPred::AllFalse => unreachable!("handled by caller"),
        };
        let va = _mm256_set1_epi64x(a);
        let vb = _mm256_set1_epi64x(b);
        let flip = if invert { 0xFFu8 } else { 0 };
        let n = values.len() & !7;
        let mut i = 0;
        while i < n {
            let x0 = _mm256_loadu_si256(values.as_ptr().add(i).cast());
            let x1 = _mm256_loadu_si256(values.as_ptr().add(i + 4).cast());
            let ga = mask4_epi64(_mm256_cmpgt_epi64(x0, va))
                | mask4_epi64(_mm256_cmpgt_epi64(x1, va)) << 4;
            let bits = if lo_only {
                ga
            } else {
                let gb = mask4_epi64(_mm256_cmpgt_epi64(x0, vb))
                    | mask4_epi64(_mm256_cmpgt_epi64(x1, vb)) << 4;
                ga & !gb
            };
            write8(out, i, bits ^ flip);
            i += 8;
        }
        for k in n..values.len() {
            out[k] = plan.test(values[k]) as u8;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn cmp_f64_avx2_imm<const IMM: i32>(
        values: &[f64],
        c: f64,
        out: &mut [u8],
        tail: fn(f64, f64) -> bool,
    ) {
        let vc = _mm256_set1_pd(c);
        let n = values.len() & !7;
        let mut i = 0;
        while i < n {
            let m0 = _mm256_movemask_pd(_mm256_cmp_pd::<IMM>(
                _mm256_loadu_pd(values.as_ptr().add(i)),
                vc,
            )) as u8;
            let m1 = _mm256_movemask_pd(_mm256_cmp_pd::<IMM>(
                _mm256_loadu_pd(values.as_ptr().add(i + 4)),
                vc,
            )) as u8;
            write8(out, i, m0 | m1 << 4);
            i += 8;
        }
        for k in n..values.len() {
            out[k] = tail(values[k], c) as u8;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmp_f64_avx2(values: &[f64], c: f64, op: CmpOp, out: &mut [u8]) {
        // Ordered (`_OQ`) compares are false on NaN, matching Rust's `<`
        // etc.; `NEQ_UQ` is true on NaN, matching `!=`.
        match op {
            CmpOp::Eq => cmp_f64_avx2_imm::<_CMP_EQ_OQ>(values, c, out, |v, c| v == c),
            CmpOp::Ne => cmp_f64_avx2_imm::<_CMP_NEQ_UQ>(values, c, out, |v, c| v != c),
            CmpOp::Lt => cmp_f64_avx2_imm::<_CMP_LT_OQ>(values, c, out, |v, c| v < c),
            CmpOp::Le => cmp_f64_avx2_imm::<_CMP_LE_OQ>(values, c, out, |v, c| v <= c),
            CmpOp::Gt => cmp_f64_avx2_imm::<_CMP_GT_OQ>(values, c, out, |v, c| v > c),
            CmpOp::Ge => cmp_f64_avx2_imm::<_CMP_GE_OQ>(values, c, out, |v, c| v >= c),
        }
    }

    /// SSE2 f64 compare (baseline on x86_64, so no runtime feature gate).
    pub fn cmp_f64_sse2(values: &[f64], c: f64, op: CmpOp, out: &mut [u8]) {
        unsafe {
            let vc = _mm_set1_pd(c);
            let cmp = |x: __m128d| -> u8 {
                let m = match op {
                    CmpOp::Eq => _mm_cmpeq_pd(x, vc),
                    CmpOp::Ne => _mm_cmpneq_pd(x, vc),
                    CmpOp::Lt => _mm_cmplt_pd(x, vc),
                    CmpOp::Le => _mm_cmple_pd(x, vc),
                    CmpOp::Gt => _mm_cmpgt_pd(x, vc),
                    CmpOp::Ge => _mm_cmpge_pd(x, vc),
                };
                _mm_movemask_pd(m) as u8
            };
            let n = values.len() & !7;
            let mut i = 0;
            while i < n {
                let bits = cmp(_mm_loadu_pd(values.as_ptr().add(i)))
                    | cmp(_mm_loadu_pd(values.as_ptr().add(i + 2))) << 2
                    | cmp(_mm_loadu_pd(values.as_ptr().add(i + 4))) << 4
                    | cmp(_mm_loadu_pd(values.as_ptr().add(i + 6))) << 6;
                write8(out, i, bits);
                i += 8;
            }
            for k in n..values.len() {
                let v = values[k];
                out[k] = match op {
                    CmpOp::Eq => v == c,
                    CmpOp::Ne => v != c,
                    CmpOp::Lt => v < c,
                    CmpOp::Le => v <= c,
                    CmpOp::Gt => v > c,
                    CmpOp::Ge => v >= c,
                } as u8;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmp_u32_avx2(values: &[u32], c: u32, op: CmpOp, out: &mut [u8]) {
        // AVX2 only has signed 32-bit compares: xor both sides with the
        // sign bit to translate unsigned order into signed order.
        let bias = _mm256_set1_epi32(i32::MIN);
        let vc = _mm256_set1_epi32(c as i32);
        let vcb = _mm256_xor_si256(vc, bias);
        let n = values.len() & !7;
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(values.as_ptr().add(i).cast());
            let xb = _mm256_xor_si256(x, bias);
            let bits = match op {
                CmpOp::Eq => mask8_epi32(_mm256_cmpeq_epi32(x, vc)),
                CmpOp::Ne => !mask8_epi32(_mm256_cmpeq_epi32(x, vc)),
                CmpOp::Gt => mask8_epi32(_mm256_cmpgt_epi32(xb, vcb)),
                CmpOp::Le => !mask8_epi32(_mm256_cmpgt_epi32(xb, vcb)),
                CmpOp::Lt => mask8_epi32(_mm256_cmpgt_epi32(vcb, xb)),
                CmpOp::Ge => !mask8_epi32(_mm256_cmpgt_epi32(vcb, xb)),
            };
            write8(out, i, bits);
            i += 8;
        }
        for k in n..values.len() {
            let v = values[k];
            out[k] = match op {
                CmpOp::Eq => v == c,
                CmpOp::Ne => v != c,
                CmpOp::Lt => v < c,
                CmpOp::Le => v <= c,
                CmpOp::Gt => v > c,
                CmpOp::Ge => v >= c,
            } as u8;
        }
    }

    /// SSE2 u32 compare.
    pub fn cmp_u32_sse2(values: &[u32], c: u32, op: CmpOp, out: &mut [u8]) {
        unsafe {
            let bias = _mm_set1_epi32(i32::MIN);
            let vc = _mm_set1_epi32(c as i32);
            let vcb = _mm_xor_si128(vc, bias);
            let cmp = |x: __m128i| -> u8 {
                let xb = _mm_xor_si128(x, bias);
                let (m, flip) = match op {
                    CmpOp::Eq => (_mm_cmpeq_epi32(x, vc), 0u8),
                    CmpOp::Ne => (_mm_cmpeq_epi32(x, vc), 0xF),
                    CmpOp::Gt => (_mm_cmpgt_epi32(xb, vcb), 0),
                    CmpOp::Le => (_mm_cmpgt_epi32(xb, vcb), 0xF),
                    CmpOp::Lt => (_mm_cmpgt_epi32(vcb, xb), 0),
                    CmpOp::Ge => (_mm_cmpgt_epi32(vcb, xb), 0xF),
                };
                (_mm_movemask_ps(_mm_castsi128_ps(m)) as u8) ^ flip
            };
            let n = values.len() & !7;
            let mut i = 0;
            while i < n {
                let bits = cmp(_mm_loadu_si128(values.as_ptr().add(i).cast()))
                    | cmp(_mm_loadu_si128(values.as_ptr().add(i + 4).cast())) << 4;
                write8(out, i, bits);
                i += 8;
            }
            for k in n..values.len() {
                let v = values[k];
                out[k] = match op {
                    CmpOp::Eq => v == c,
                    CmpOp::Ne => v != c,
                    CmpOp::Lt => v < c,
                    CmpOp::Le => v <= c,
                    CmpOp::Gt => v > c,
                    CmpOp::Ge => v >= c,
                } as u8;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn in_small_set_avx2(values: &[u32], set: &[u32], out: &mut [u8]) {
        debug_assert!(!set.is_empty() && set.len() <= 8);
        let cs: Vec<__m256i> = set.iter().map(|&s| _mm256_set1_epi32(s as i32)).collect();
        let n = values.len() & !7;
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(values.as_ptr().add(i).cast());
            let mut acc = _mm256_cmpeq_epi32(x, cs[0]);
            for c in &cs[1..] {
                acc = _mm256_or_si256(acc, _mm256_cmpeq_epi32(x, *c));
            }
            write8(out, i, mask8_epi32(acc));
            i += 8;
        }
        for k in n..values.len() {
            out[k] = set.contains(&values[k]) as u8;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn has_nan_avx2(values: &[f64]) -> bool {
        let n = values.len() & !3;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_pd(values.as_ptr().add(i));
            acc = _mm256_or_pd(acc, _mm256_cmp_pd::<_CMP_UNORD_Q>(x, x));
            i += 4;
        }
        _mm256_movemask_pd(acc) != 0 || values[n..].iter().any(|v| v.is_nan())
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn pack_words_avx2(bytes: &[u8], words: &mut [u64]) {
        let zero = _mm256_setzero_si256();
        for (w, word) in words.iter_mut().enumerate() {
            let lo = _mm256_loadu_si256(bytes.as_ptr().add(w * 64).cast());
            let hi = _mm256_loadu_si256(bytes.as_ptr().add(w * 64 + 32).cast());
            let m0 = _mm256_movemask_epi8(_mm256_cmpgt_epi8(lo, zero)) as u32 as u64;
            let m1 = _mm256_movemask_epi8(_mm256_cmpgt_epi8(hi, zero)) as u32 as u64;
            *word = m0 | m1 << 32;
        }
    }

    /// SSE2 word packer.
    pub fn pack_words_sse2(bytes: &[u8], words: &mut [u64]) {
        unsafe {
            let zero = _mm_setzero_si128();
            for (w, word) in words.iter_mut().enumerate() {
                let mut acc = 0u64;
                for q in 0..4 {
                    let x = _mm_loadu_si128(bytes.as_ptr().add(w * 64 + q * 16).cast());
                    let m = _mm_movemask_epi8(_mm_cmpgt_epi8(x, zero)) as u32 as u64;
                    acc |= m << (16 * q);
                }
                *word = acc;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn int_stats_avx2(values: &[i64], idx: &[u32]) -> (i64, i64, i64, usize) {
        let mut s = _mm256_setzero_si256();
        let mut mn = _mm256_set1_epi64x(i64::MAX);
        let mut mx = _mm256_set1_epi64x(i64::MIN);
        let n = idx.len() & !3;
        let mut i = 0;
        while i < n {
            // Indices are in-bounds rows (< values.len() ≤ i32::MAX, caller
            // checked), so the i32 gather offsets are non-negative.
            let vi = _mm_loadu_si128(idx.as_ptr().add(i).cast());
            let x = _mm256_i32gather_epi64::<8>(values.as_ptr(), vi);
            s = _mm256_add_epi64(s, x);
            mn = _mm256_blendv_epi8(mn, x, _mm256_cmpgt_epi64(mn, x));
            mx = _mm256_blendv_epi8(mx, x, _mm256_cmpgt_epi64(x, mx));
            i += 4;
        }
        let mut sb = [0i64; 4];
        let mut mnb = [0i64; 4];
        let mut mxb = [0i64; 4];
        _mm256_storeu_si256(sb.as_mut_ptr().cast(), s);
        _mm256_storeu_si256(mnb.as_mut_ptr().cast(), mn);
        _mm256_storeu_si256(mxb.as_mut_ptr().cast(), mx);
        let (mut sum, mut min, mut max) = (0i64, i64::MAX, i64::MIN);
        for k in 0..4 {
            sum = sum.wrapping_add(sb[k]);
            min = min.min(mnb[k]);
            max = max.max(mxb[k]);
        }
        for &j in &idx[n..] {
            let v = values[j as usize];
            sum = sum.wrapping_add(v);
            min = min.min(v);
            max = max.max(v);
        }
        (sum, min, max, idx.len())
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fold_f64_avx2(values: &[f64], idx: &[u32], want_min: bool) -> (f64, bool) {
        let init = if want_min {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
        let mut acc = _mm256_set1_pd(init);
        let mut nan = _mm256_setzero_pd();
        let n = idx.len() & !3;
        let mut i = 0;
        while i < n {
            let vi = _mm_loadu_si128(idx.as_ptr().add(i).cast());
            let x = _mm256_i32gather_pd::<8>(values.as_ptr(), vi);
            nan = _mm256_or_pd(nan, _mm256_cmp_pd::<_CMP_UNORD_Q>(x, x));
            acc = if want_min {
                _mm256_min_pd(acc, x)
            } else {
                _mm256_max_pd(acc, x)
            };
            i += 4;
        }
        let mut ab = [0f64; 4];
        _mm256_storeu_pd(ab.as_mut_ptr(), acc);
        let mut saw_nan = _mm256_movemask_pd(nan) != 0;
        let mut m = init;
        for &v in &ab {
            m = if want_min { m.min(v) } else { m.max(v) };
        }
        for &j in &idx[n..] {
            let v = values[j as usize];
            saw_nan |= v.is_nan();
            m = if want_min { m.min(v) } else { m.max(v) };
        }
        (m, saw_nan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic bit source for test patterns.
    fn splitmix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Adversarial slice lengths: empty, single, around the 4/8-lane SIMD
    /// widths, around the 64-row word width, and unaligned tails.
    const LENGTHS: [usize; 14] = [0, 1, 3, 4, 5, 7, 8, 9, 63, 64, 65, 127, 128, 1023];

    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Run `f` once per SIMD tier this machine can execute, restoring
    /// default dispatch afterwards. The Scalar tier always runs, so every
    /// differential test below checks the portable reference too.
    fn for_each_level(mut f: impl FnMut(SimdLevel)) {
        let mut seen = Vec::new();
        for l in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            set_simd_level(Some(l));
            let eff = simd_level();
            if !seen.contains(&eff) {
                seen.push(eff);
                f(eff);
            }
        }
        set_simd_level(None);
    }

    fn ref_cmp<T: Copy + PartialOrd + PartialEq>(v: T, c: T, op: CmpOp) -> bool {
        match op {
            CmpOp::Eq => v == c,
            CmpOp::Ne => v != c,
            CmpOp::Lt => v < c,
            CmpOp::Le => v <= c,
            CmpOp::Gt => v > c,
            CmpOp::Ge => v >= c,
        }
    }

    fn random_mask(seed: &mut u64, len: usize, every: u64) -> NullMask {
        let mut m = NullMask::new();
        for _ in 0..len {
            m.push(every != 0 && splitmix(seed).is_multiple_of(every));
        }
        m
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        assert_eq!(morsel_ranges(0, 4), vec![]);
        assert_eq!(morsel_ranges(10, 0), vec![(0, 10)]);
        assert_eq!(morsel_ranges(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(morsel_ranges(8, 4), vec![(0, 4), (4, 8)]);
        let ranges = morsel_ranges(1_000_003, MORSEL_ROWS);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 1_000_003);
        assert!(ranges.windows(2).all(|w| w[0].1 == w[1].0));
    }

    #[test]
    fn forced_level_is_clamped_to_hardware() {
        set_simd_level(Some(SimdLevel::Avx2));
        assert!(simd_level() <= hw_level());
        set_simd_level(Some(SimdLevel::Scalar));
        assert_eq!(simd_level(), SimdLevel::Scalar);
        set_simd_level(None);
        assert_eq!(simd_level(), default_level());
    }

    fn selection_reference(values: &[bool], nulls: &NullMask, base: u32) -> Vec<u32> {
        (0..values.len())
            .filter(|&i| values[i] && !nulls.is_null(i))
            .map(|i| base + i as u32)
            .collect()
    }

    #[test]
    fn selection_matches_naive_loop() {
        for_each_level(|level| {
            let mut seed = 7u64;
            for len in LENGTHS {
                let values: Vec<bool> = (0..len).map(|_| splitmix(&mut seed) & 1 == 1).collect();
                let nulls = random_mask(&mut seed, len, 4);
                assert_eq!(
                    bool_selection(&values, &nulls, 3),
                    selection_reference(&values, &nulls, 3),
                    "len {len} level {level:?}"
                );
            }
        });
    }

    #[test]
    fn selection_with_all_valid_mask() {
        let values: Vec<bool> = (0..150).map(|i| i % 3 == 0).collect();
        let nulls = NullMask::all_valid(150);
        assert_eq!(
            bool_selection(&values, &nulls, 0),
            selection_reference(&values, &nulls, 0)
        );
    }

    #[test]
    fn pack_unpack_roundtrip_at_adversarial_lengths() {
        for_each_level(|level| {
            let mut seed = 17u64;
            for len in LENGTHS {
                let values: Vec<bool> = (0..len).map(|_| splitmix(&mut seed) & 1 == 1).collect();
                let words = pack_bools(&values);
                assert_eq!(words.len(), len.div_ceil(64), "len {len} level {level:?}");
                for (i, &v) in values.iter().enumerate() {
                    assert_eq!(words[i / 64] >> (i % 64) & 1 == 1, v, "bit {i} len {len}");
                }
                if let Some(last) = words.last() {
                    if len % 64 != 0 {
                        assert_eq!(
                            last & !((1u64 << (len % 64)) - 1),
                            0,
                            "tail dirty len {len}"
                        );
                    }
                }
                assert_eq!(
                    unpack_words(&words, len),
                    values,
                    "len {len} level {level:?}"
                );
            }
        });
    }

    #[test]
    fn zero_nulls_matches_reference() {
        let mut seed = 23u64;
        for len in LENGTHS {
            let values: Vec<bool> = (0..len).map(|_| splitmix(&mut seed) & 1 == 1).collect();
            let nulls = random_mask(&mut seed, len, 3);
            let mut got = values.clone();
            zero_nulls(&mut got, &nulls);
            let want: Vec<bool> = (0..len).map(|i| values[i] && !nulls.is_null(i)).collect();
            assert_eq!(got, want, "len {len}");
        }
    }

    #[test]
    fn cmp_i64_matches_float_compare_reference() {
        // Constants cover fractions (no exact int), exact ints, the 2^53
        // precision edge, extremes beyond i64, infinities, NaN and -0.0.
        let consts = [
            700.0,
            0.5,
            -3.25,
            0.0,
            -0.0,
            9_007_199_254_740_992.0,     // 2^53
            9_007_199_254_740_993.0_f64, // rounds to 2^53
            -9.3e18,
            1.9e19,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for_each_level(|level| {
            let mut seed = 31u64;
            for len in LENGTHS {
                let values: Vec<i64> = (0..len)
                    .map(|_| match splitmix(&mut seed) % 4 {
                        0 => (splitmix(&mut seed) % 2000) as i64 - 500,
                        1 => splitmix(&mut seed) as i64, // full range
                        2 => 9_007_199_254_740_992 + (splitmix(&mut seed) % 8) as i64,
                        _ => i64::MIN + (splitmix(&mut seed) % 8) as i64,
                    })
                    .collect();
                for &c in &consts {
                    for op in OPS {
                        let got = cmp_i64(&values, c, op);
                        let want: Vec<bool> =
                            values.iter().map(|&v| ref_cmp(v as f64, c, op)).collect();
                        assert_eq!(got, want, "len {len} c {c} op {op:?} level {level:?}");
                    }
                }
            }
        });
    }

    #[test]
    fn cmp_f64_matches_ieee_reference() {
        let consts = [700.5, 0.0, -0.0, f64::NAN, f64::INFINITY, -1.0e300];
        for_each_level(|level| {
            let mut seed = 37u64;
            for len in LENGTHS {
                let values: Vec<f64> = (0..len)
                    .map(|_| match splitmix(&mut seed) % 8 {
                        0 => f64::NAN,
                        1 => 0.0,
                        2 => -0.0,
                        3 => f64::INFINITY,
                        _ => (splitmix(&mut seed) % 4000) as f64 / 2.0 - 700.0,
                    })
                    .collect();
                for &c in &consts {
                    for op in OPS {
                        let got = cmp_f64(&values, c, op);
                        let want: Vec<bool> = values.iter().map(|&v| ref_cmp(v, c, op)).collect();
                        assert_eq!(got, want, "len {len} c {c} op {op:?} level {level:?}");
                    }
                }
            }
        });
    }

    #[test]
    fn cmp_u32_matches_reference_at_boundaries() {
        let consts = [0u32, 1, 7, 254, 255, 256, u32::MAX - 1, u32::MAX];
        for_each_level(|level| {
            let mut seed = 41u64;
            for len in LENGTHS {
                let values: Vec<u32> = (0..len)
                    .map(|_| match splitmix(&mut seed) % 3 {
                        0 => (splitmix(&mut seed) % 256) as u32,
                        1 => u32::MAX - (splitmix(&mut seed) % 4) as u32,
                        _ => splitmix(&mut seed) as u32,
                    })
                    .collect();
                for &c in &consts {
                    for op in OPS {
                        let got = cmp_u32(&values, c, op);
                        let want: Vec<bool> = values.iter().map(|&v| ref_cmp(v, c, op)).collect();
                        assert_eq!(got, want, "len {len} c {c} op {op:?} level {level:?}");
                    }
                }
            }
        });
    }

    #[test]
    fn in_set_u32_matches_reference_on_all_paths() {
        let sets: [&[u32]; 5] = [
            &[],                               // empty
            &[3],                              // SIMD chain
            &[0, 5, 7, 200, 255],              // SIMD chain
            &[0, 1, 2, 3, 4, 5, 6, 7, 8, 100], // table path
            &[1, 4_294_967_290, u32::MAX],     // binary-search path (huge span)
        ];
        for_each_level(|level| {
            let mut seed = 43u64;
            for len in LENGTHS {
                let values: Vec<u32> = (0..len)
                    .map(|_| match splitmix(&mut seed) % 3 {
                        0 => (splitmix(&mut seed) % 10) as u32,
                        1 => u32::MAX - (splitmix(&mut seed) % 8) as u32,
                        _ => (splitmix(&mut seed) % 300) as u32,
                    })
                    .collect();
                for set in sets {
                    let got = in_set_u32(&values, set);
                    let want: Vec<bool> = values.iter().map(|v| set.contains(v)).collect();
                    assert_eq!(got, want, "len {len} set {set:?} level {level:?}");
                }
            }
        });
    }

    #[test]
    fn has_nan_detects_every_position() {
        for_each_level(|_| {
            for len in LENGTHS {
                let clean = vec![1.5f64; len];
                assert!(!has_nan(&clean));
                for pos in [0, len / 2, len.saturating_sub(1)] {
                    if len == 0 {
                        continue;
                    }
                    let mut v = clean.clone();
                    v[pos] = f64::NAN;
                    assert!(has_nan(&v), "len {len} pos {pos}");
                }
            }
        });
    }

    /// Three-valued reference: `None` is NULL.
    fn bool3(v: bool, null: bool) -> Option<bool> {
        if null {
            None
        } else {
            Some(v)
        }
    }

    #[test]
    fn kleene_matches_three_valued_reference() {
        for_each_level(|level| {
            let mut seed = 47u64;
            for len in LENGTHS {
                let av: Vec<bool> = (0..len).map(|_| splitmix(&mut seed) & 1 == 1).collect();
                let bv: Vec<bool> = (0..len).map(|_| splitmix(&mut seed) & 1 == 1).collect();
                for (ae, be) in [(3, 3), (0, 3), (1, 0)] {
                    let an = random_mask(&mut seed, len, ae);
                    let bn = random_mask(&mut seed, len, be);
                    for op in [Kleene::And, Kleene::Or] {
                        let (gv, gn) = kleene(op, &av, &an, &bv, &bn);
                        for i in 0..len {
                            let a = bool3(av[i], an.is_null(i));
                            let b = bool3(bv[i], bn.is_null(i));
                            let want = match op {
                                Kleene::And => match (a, b) {
                                    (Some(false), _) | (_, Some(false)) => Some(false),
                                    (Some(true), Some(true)) => Some(true),
                                    _ => None,
                                },
                                Kleene::Or => match (a, b) {
                                    (Some(true), _) | (_, Some(true)) => Some(true),
                                    (Some(false), Some(false)) => Some(false),
                                    _ => None,
                                },
                            };
                            assert_eq!(
                                bool3(gv[i], gn.is_null(i)),
                                want,
                                "row {i} len {len} {op:?} level {level:?}"
                            );
                            // NULL slots must carry the false placeholder.
                            assert!(!gn.is_null(i) || !gv[i], "placeholder row {i}");
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn between_combine_matches_reference() {
        for_each_level(|_| {
            let mut seed = 53u64;
            for len in LENGTHS {
                let av: Vec<bool> = (0..len).map(|_| splitmix(&mut seed) & 1 == 1).collect();
                let bv: Vec<bool> = (0..len).map(|_| splitmix(&mut seed) & 1 == 1).collect();
                let an = random_mask(&mut seed, len, 3);
                let bn = random_mask(&mut seed, len, 4);
                for negated in [false, true] {
                    let (gv, gn) = between_combine(&av, &an, &bv, &bn, negated);
                    for i in 0..len {
                        if an.is_null(i) || bn.is_null(i) {
                            assert!(gn.is_null(i) && !gv[i], "row {i} len {len}");
                        } else {
                            assert!(!gn.is_null(i));
                            assert_eq!(gv[i], (av[i] && bv[i]) != negated, "row {i} len {len}");
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn null_flags_matches_mask() {
        let mut seed = 59u64;
        for len in LENGTHS {
            for every in [0, 1, 3] {
                // 0 ⇒ no nulls, 1 ⇒ all null, 3 ⇒ mixed.
                let mask = if every == 1 {
                    let mut m = NullMask::new();
                    for _ in 0..len {
                        m.push(true);
                    }
                    m
                } else {
                    random_mask(&mut seed, len, every)
                };
                for negated in [false, true] {
                    let got = null_flags(&mask, negated);
                    let want: Vec<bool> = (0..len).map(|i| mask.is_null(i) != negated).collect();
                    assert_eq!(got, want, "len {len} every {every} negated {negated}");
                }
            }
        }
    }

    /// The scalar engine's sum loop (`aggregate_over`): sequential
    /// `total += v as f64` in idx order.
    fn ref_sum_i64(values: &[i64], nulls: &NullMask, idx: &[u32]) -> (f64, usize) {
        let mut total = 0.0;
        let mut n = 0;
        for &i in idx {
            if !nulls.is_null(i as usize) {
                total += values[i as usize] as f64;
                n += 1;
            }
        }
        (total, n)
    }

    #[test]
    fn sum_i64_is_bit_identical_to_scalar_loop() {
        for_each_level(|level| {
            let mut seed = 61u64;
            for len in LENGTHS {
                for (mag, every) in [(2000u64, 0u64), (2000, 3), (1 << 62, 0), (1 << 62, 1)] {
                    let values: Vec<i64> = (0..len)
                        .map(|_| (splitmix(&mut seed) % mag) as i64 - (mag / 2) as i64)
                        .collect();
                    let nulls = if every == 1 {
                        let mut m = NullMask::new();
                        for _ in 0..len {
                            m.push(true);
                        }
                        m
                    } else {
                        random_mask(&mut seed, len, every)
                    };
                    let idx: Vec<u32> = (0..len as u32).rev().collect();
                    let got = sum_i64(&values, &nulls, &idx);
                    let want = ref_sum_i64(&values, &nulls, &idx);
                    assert_eq!(
                        (got.0.to_bits(), got.1),
                        (want.0.to_bits(), want.1),
                        "len {len} mag {mag} every {every} level {level:?}"
                    );
                }
            }
        });
    }

    #[test]
    fn sum_f64_keeps_sequential_order() {
        let mut seed = 67u64;
        for len in LENGTHS {
            let values: Vec<f64> = (0..len)
                .map(|_| (splitmix(&mut seed) % 1000) as f64 / 7.0 - 60.0)
                .collect();
            let nulls = random_mask(&mut seed, len, 3);
            let idx: Vec<u32> = (0..len as u32).collect();
            let (got, n) = sum_f64(&values, &nulls, &idx);
            let mut want = 0.0;
            let mut wn = 0;
            for &i in &idx {
                if !nulls.is_null(i as usize) {
                    want += values[i as usize];
                    wn += 1;
                }
            }
            assert_eq!((got.to_bits(), n), (want.to_bits(), wn), "len {len}");
        }
    }

    /// The scalar engine's min/max fold: first-tie-wins for min,
    /// last-tie-wins for max, over the engine comparator.
    fn ref_fold<T: Copy>(
        values: &[T],
        nulls: &NullMask,
        idx: &[u32],
        want_min: bool,
        cmp: impl Fn(T, T) -> Ordering,
    ) -> Option<T> {
        let mut best: Option<usize> = None;
        for &i in idx {
            let i = i as usize;
            if nulls.is_null(i) {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let ord = cmp(values[i], values[b]);
                    let replace = if want_min {
                        ord == Ordering::Less
                    } else {
                        ord != Ordering::Less
                    };
                    if replace {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        best.map(|b| values[b])
    }

    #[test]
    fn min_max_i64_matches_scalar_fold() {
        for_each_level(|level| {
            let mut seed = 71u64;
            for len in LENGTHS {
                for (mag, every) in [(5000u64, 0u64), (5000, 3), (u64::MAX, 0), (16, 1)] {
                    let values: Vec<i64> = (0..len)
                        .map(|_| {
                            if mag == u64::MAX {
                                splitmix(&mut seed) as i64 // full i64 range
                            } else {
                                (splitmix(&mut seed) % mag) as i64 - (mag / 2) as i64
                            }
                        })
                        .collect();
                    let nulls = if every == 1 {
                        let mut m = NullMask::new();
                        for _ in 0..len {
                            m.push(true);
                        }
                        m
                    } else {
                        random_mask(&mut seed, len, every)
                    };
                    let idx: Vec<u32> = (0..len as u32).collect();
                    for want_min in [true, false] {
                        let got = min_max_i64(&values, &nulls, &idx, want_min);
                        let want = ref_fold(&values, &nulls, &idx, want_min, |a, b| {
                            (a as f64).total_cmp(&(b as f64))
                        });
                        assert_eq!(got, want, "len {len} mag {mag} level {level:?}");
                    }
                }
            }
        });
    }

    #[test]
    fn min_max_f64_matches_scalar_fold_with_nan_and_signed_zero() {
        for_each_level(|level| {
            let mut seed = 73u64;
            for len in LENGTHS {
                for flavor in 0..3 {
                    let values: Vec<f64> = (0..len)
                        .map(|_| match (flavor, splitmix(&mut seed) % 6) {
                            (1, 0) => f64::NAN,
                            (2, 0) => 0.0,
                            (2, 1) => -0.0,
                            (2, _) => 0.0f64.max((splitmix(&mut seed) % 3) as f64),
                            _ => (splitmix(&mut seed) % 1000) as f64 / 4.0 - 100.0,
                        })
                        .collect();
                    let nulls = random_mask(&mut seed, len, if flavor == 0 { 0 } else { 4 });
                    let idx: Vec<u32> = (0..len as u32).collect();
                    for want_min in [true, false] {
                        let got = min_max_f64(&values, &nulls, &idx, want_min);
                        let want = ref_fold(&values, &nulls, &idx, want_min, cmp_f64_engine);
                        assert_eq!(
                            got.map(f64::to_bits),
                            want.map(f64::to_bits),
                            "len {len} flavor {flavor} min {want_min} level {level:?}"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn count_valid_matches_reference() {
        let mut seed = 79u64;
        for len in LENGTHS {
            let nulls = random_mask(&mut seed, len, 2);
            let idx: Vec<u32> = (0..len as u32).filter(|i| i % 3 != 1).collect();
            let want = idx.iter().filter(|&&i| !nulls.is_null(i as usize)).count();
            assert_eq!(count_valid(&nulls, &idx), want, "len {len}");
        }
    }

    #[test]
    fn nullmask_from_words_clears_tail_and_counts() {
        let m = NullMask::from_words(vec![!0u64], 10);
        assert_eq!(m.len(), 10);
        assert_eq!(m.null_count(), 10);
        for i in 0..10 {
            assert!(m.is_null(i));
        }
        let m = NullMask::from_words(vec![0b101, 0b11], 66);
        assert_eq!(m.null_count(), 4);
        assert!(m.is_null(0) && !m.is_null(1) && m.is_null(2) && m.is_null(64) && m.is_null(65));
        assert_eq!(NullMask::from_words(vec![], 0), NullMask::new());
    }

    #[test]
    fn nullmask_slice_matches_per_bit() {
        let mut seed = 11u64;
        let mut mask = NullMask::new();
        for _ in 0..300 {
            mask.push(splitmix(&mut seed).is_multiple_of(3));
        }
        for (lo, hi) in [(0, 300), (1, 300), (63, 200), (64, 128), (65, 66), (7, 7)] {
            let s = mask.slice(lo, hi);
            assert_eq!(s.len(), hi - lo);
            for i in 0..(hi - lo) {
                assert_eq!(s.is_null(i), mask.is_null(lo + i), "({lo},{hi}) bit {i}");
            }
            assert_eq!(
                s.null_count(),
                (lo..hi).filter(|&i| mask.is_null(i)).count()
            );
        }
    }

    #[test]
    fn nullmask_union_is_validity_intersection() {
        let mut seed = 13u64;
        let (mut a, mut b) = (NullMask::new(), NullMask::new());
        for _ in 0..130 {
            a.push(splitmix(&mut seed).is_multiple_of(3));
            b.push(splitmix(&mut seed).is_multiple_of(5));
        }
        let u = a.union(&b);
        for i in 0..130 {
            assert_eq!(u.is_null(i), a.is_null(i) || b.is_null(i));
        }
        let all = NullMask::all_valid(130);
        assert_eq!(a.union(&all), a);
        assert_eq!(all.union(&b), b);
    }
}
