#![warn(missing_docs)]
//! Data substrate for the PI2 reproduction: values, types, tables, the
//! database catalogue, and column statistics.
//!
//! The PI2 paper (§1) states that the system "only needs access to the query
//! grammar, a database connection to execute queries, and the database
//! catalogue". This crate provides the value model and the catalogue; the
//! query engine lives in `pi2-engine`.
//!
//! Everything here is deliberately self-contained: no external database is
//! required, tables live in memory, and the catalogue exposes exactly the
//! metadata PI2's mapping rules consume — attribute types, domains,
//! cardinalities (for the categorical/quantitative decision in §4.1), and
//! key-based functional dependencies (for the bar/line chart FD constraints
//! in Table 1).

pub mod catalog;
pub mod column;
pub mod date;
pub mod error;
pub mod hash;
pub mod kernels;
pub mod live;
pub mod memo;
pub mod stats;
pub mod table;
pub mod types;
pub mod value;
pub mod wire;

pub use catalog::{Catalog, CatalogDelta, FunctionSig, TableDelta, TableMeta};
pub use column::{ColumnData, NullMask};
pub use error::DataError;
pub use live::{AppendReceipt, LiveCatalog};
pub use memo::ShardedMemo;
pub use stats::ColumnStats;
pub use table::{chunk_rows, Column, Row, Schema, Table, DEFAULT_CHUNK_ROWS};
pub use types::DataType;
pub use value::Value;
