//! The live-catalogue cell: versioned, appendable, snapshot-consistent.
//!
//! A [`LiveCatalog`] holds the *current* [`Catalog`] behind an `Arc` swap.
//! Readers take a [`LiveCatalog::snapshot`] — an `Arc<Catalog>` that stays
//! immutable and consistent for as long as they hold it, no matter how many
//! appends land concurrently. Writers go through [`LiveCatalog::append`],
//! which builds the next catalogue version functionally (sharing all
//! existing chunk storage by `Arc`, see [`Table::append_table`]) and swaps
//! it in under a short write lock.
//!
//! Each append also reports which *old* catalogue fingerprint is now safe
//! to evict from process-wide memos: the version two epochs back. The
//! immediately-previous fingerprint is deliberately spared one round —
//! in-flight dispatches may still be reading that snapshot, and the
//! incremental view maintenance path reuses its cached results as the base
//! it folds the delta into.

use crate::catalog::Catalog;
use crate::error::DataError;
use crate::table::Table;
use parking_lot::RwLock;
use std::sync::Arc;

/// What one successful [`LiveCatalog::append`] produced.
#[derive(Debug, Clone)]
pub struct AppendReceipt {
    /// The new catalogue version (already installed as current).
    pub catalog: Arc<Catalog>,
    /// Its epoch (predecessor epoch + 1).
    pub epoch: u64,
    /// How many rows the append added.
    pub rows: usize,
    /// The table the rows were appended to (as registered, original case).
    pub table: String,
    /// Catalogue fingerprint now two epochs stale — safe to sweep from
    /// every memo. `None` for the first two appends after registration.
    pub evict_fingerprint: Option<u64>,
}

#[derive(Debug)]
struct LiveInner {
    current: Arc<Catalog>,
    /// Fingerprint one epoch back, pending eviction after the *next* append.
    prev_fingerprint: Option<u64>,
}

/// A shared, mutable handle to the current catalogue version.
#[derive(Debug)]
pub struct LiveCatalog {
    inner: RwLock<LiveInner>,
}

impl LiveCatalog {
    /// Wrap a catalogue as the initial live version.
    pub fn new(catalog: Catalog) -> Self {
        LiveCatalog {
            inner: RwLock::new(LiveInner {
                current: Arc::new(catalog),
                prev_fingerprint: None,
            }),
        }
    }

    /// The current catalogue version. Cheap (`Arc` clone under a read
    /// lock); the returned snapshot never changes under the caller.
    pub fn snapshot(&self) -> Arc<Catalog> {
        Arc::clone(&self.inner.read().current)
    }

    /// Append `rows` to `table`, installing the next catalogue version.
    /// Existing snapshots are untouched. Returns the receipt a service
    /// layer needs: the new version, its epoch, and which old fingerprint
    /// can now be swept from caches.
    pub fn append(&self, table: &str, rows: Table) -> Result<AppendReceipt, DataError> {
        let mut guard = self.inner.write();
        let added = rows.num_rows();
        let next = guard.current.append_rows(table, rows)?;
        let name = next
            .require_table(table)
            .expect("append_rows succeeded")
            .name
            .clone();
        let evict = guard.prev_fingerprint;
        guard.prev_fingerprint = Some(guard.current.fingerprint());
        let next = Arc::new(next);
        guard.current = Arc::clone(&next);
        Ok(AppendReceipt {
            epoch: next.epoch(),
            rows: added,
            table: name,
            catalog: next,
            evict_fingerprint: evict,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::value::Value;

    fn seed() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_rows(
            vec![("id", DataType::Int), ("v", DataType::Int)],
            vec![vec![Value::Int(1), Value::Int(10)]],
        )
        .unwrap();
        c.add_table("T", t, vec!["id"]);
        c
    }

    fn one_row(id: i64, v: i64) -> Table {
        Table::from_rows(
            vec![("id", DataType::Int), ("v", DataType::Int)],
            vec![vec![Value::Int(id), Value::Int(v)]],
        )
        .unwrap()
    }

    #[test]
    fn snapshots_are_immutable_under_appends() {
        let live = LiveCatalog::new(seed());
        let before = live.snapshot();
        let receipt = live.append("t", one_row(2, 20)).unwrap();
        assert_eq!(before.table("T").unwrap().table.num_rows(), 1);
        assert_eq!(receipt.catalog.table("T").unwrap().table.num_rows(), 2);
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.rows, 1);
        assert_eq!(receipt.table, "T");
        assert_ne!(before.fingerprint(), receipt.catalog.fingerprint());
        assert_eq!(live.snapshot().fingerprint(), receipt.catalog.fingerprint());
    }

    #[test]
    fn eviction_lags_two_epochs() {
        let live = LiveCatalog::new(seed());
        let fp0 = live.snapshot().fingerprint();
        let r1 = live.append("T", one_row(2, 20)).unwrap();
        assert_eq!(r1.evict_fingerprint, None, "fp0 still one epoch back");
        let r2 = live.append("T", one_row(3, 30)).unwrap();
        assert_eq!(r2.evict_fingerprint, Some(fp0));
        let r3 = live.append("T", one_row(4, 40)).unwrap();
        assert_eq!(r3.evict_fingerprint, Some(r1.catalog.fingerprint()));
    }

    #[test]
    fn append_to_unknown_table_fails() {
        let live = LiveCatalog::new(seed());
        assert!(live.append("missing", one_row(1, 1)).is_err());
        assert_eq!(live.snapshot().epoch(), 0);
    }

    #[test]
    fn delta_records_the_append() {
        let live = LiveCatalog::new(seed());
        let r = live.append("T", one_row(2, 20)).unwrap();
        let delta = r.catalog.delta().expect("append leaves a delta");
        assert_eq!(delta.epoch, 1);
        let td = delta.tables.get("t").expect("keyed lowercased");
        assert_eq!(td.base_rows, 1);
        assert_eq!(td.rows.num_rows(), 1);
    }
}
