//! A generic, cap-checked, lock-sharded memo table.
//!
//! One utility behind every process-wide cache in the workspace: the MCTS
//! reward/action transposition tables (`pi2-search`), the mapping-artifact
//! and executed-result caches (`pi2-interface`), and the bind / schema
//! signature / type-inference memos (`pi2-difftree`). All of them share the
//! same shape — hash-sharded `Mutex<HashMap>`s, a per-shard entry cap that
//! clears a shard instead of growing without bound, and "first writer wins"
//! insertion (every writer would store the same value, because cached
//! computations are pure functions of their key).
//!
//! The utility lives in `pi2-data` because it is the one crate every other
//! crate already depends on; `pi2-core` re-exports it as `pi2::memo`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};

/// Default shard count: enough that a dozen worker threads rarely contend
/// on one lock.
pub const DEFAULT_SHARDS: usize = 16;

/// A lock-sharded `K → V` memo with a per-shard entry cap.
pub struct ShardedMemo<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    cap_per_shard: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMemo<K, V> {
    /// A memo with [`DEFAULT_SHARDS`] shards and the given per-shard cap.
    pub fn new(cap_per_shard: usize) -> Self {
        Self::with_shards(DEFAULT_SHARDS, cap_per_shard)
    }

    /// A memo with an explicit shard count (rounded up to at least 1).
    pub fn with_shards(shards: usize, cap_per_shard: usize) -> Self {
        ShardedMemo {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            cap_per_shard,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let h = BuildHasherDefault::<DefaultHasher>::default().hash_one(key);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Insert, returning whether the key was new. When a shard exceeds its
    /// cap it is cleared first — a runaway session cannot grow the memo
    /// without bound.
    pub fn insert(&self, key: K, value: V) -> bool {
        let mut guard = self.shard(&key).lock();
        if guard.len() > self.cap_per_shard {
            guard.clear();
        }
        guard.insert(key, value).is_none()
    }

    /// `get` or compute-and-`insert`. The computation runs outside the
    /// shard lock, so concurrent callers may compute the same value; the
    /// first writer wins and all would have stored the same thing.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> V {
        if let Some(hit) = self.get(key) {
            return hit;
        }
        let value = compute();
        self.insert(key.clone(), value.clone());
        value
    }

    /// Total entries across shards (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Keep only the entries for which `keep` returns true — the eviction
    /// sweep behind catalogue-epoch invalidation. Runs shard by shard so
    /// readers on other shards are never blocked behind the whole sweep.
    pub fn retain(&self, mut keep: impl FnMut(&K, &mut V) -> bool) {
        for s in &self.shards {
            s.lock().retain(|k, v| keep(k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_round_trip() {
        let memo: ShardedMemo<u64, String> = ShardedMemo::new(8);
        assert_eq!(memo.get(&1), None);
        assert!(memo.insert(1, "one".into()));
        assert!(!memo.insert(1, "one".into()), "second insert is not new");
        assert_eq!(memo.get(&1), Some("one".into()));
    }

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let memo: ShardedMemo<u32, u32> = ShardedMemo::new(8);
        let mut calls = 0;
        let v = memo.get_or_insert_with(&7, || {
            calls += 1;
            49
        });
        assert_eq!(v, 49);
        let v = memo.get_or_insert_with(&7, || {
            calls += 1;
            0
        });
        assert_eq!(v, 49, "cached value wins");
        assert_eq!(calls, 1);
    }

    #[test]
    fn cap_clears_the_shard_instead_of_growing() {
        let memo: ShardedMemo<u32, u32> = ShardedMemo::with_shards(1, 4);
        for k in 0..64 {
            memo.insert(k, k);
        }
        assert!(memo.len() <= 5, "cap must bound the shard: {}", memo.len());
    }

    #[test]
    fn values_shared_across_threads() {
        let memo: ShardedMemo<u32, u32> = ShardedMemo::new(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let memo = &memo;
                s.spawn(move || {
                    for k in 0..100 {
                        memo.get_or_insert_with(&k, || k * 2);
                    }
                });
            }
        });
        assert_eq!(memo.get(&5), Some(10));
        assert_eq!(memo.len(), 100);
    }
}
