//! Column statistics backing the catalogue.
//!
//! PI2 consults these in three places: attribute-type domains for `VAL`
//! generalisation (§2 "initialized with the minimum and maximum of attribute
//! a and b's domains"), the cardinality-below-20 categorical rule (§4.1), and
//! widget initialisation (radio/dropdown option lists).

use crate::column::{f64_ord_key, ColumnData};
use crate::hash::FastSet;
use crate::table::Table;
use crate::value::Value;

/// Per-column summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub distinct_count: usize,
    /// Domain minimum (non-null), if the column is non-empty.
    pub min: Option<Value>,
    /// Domain maximum (non-null), if the column is non-empty.
    pub max: Option<Value>,
    /// The distinct values themselves, retained only when there are at most
    /// [`ColumnStats::DISTINCT_RETENTION_LIMIT`]; enough for widget domains.
    pub distinct_values: Option<Vec<Value>>,
    /// Whether all non-null values are unique (candidate key).
    pub unique: bool,
}

impl ColumnStats {
    /// Retain explicit distinct-value lists only for low-cardinality columns.
    /// The categorical cutoff in §4.1 is 20; we keep a little slack so that
    /// widget domains for borderline columns remain available.
    pub const DISTINCT_RETENTION_LIMIT: usize = 64;

    /// Compute statistics for column `idx` of `table` in one O(rows) pass
    /// over the typed storage: distinct values go through a primitive-keyed
    /// hash set (not a whole-column sort/dedup, which allocated a full copy
    /// and cost O(rows · log rows) on the 10⁷-row tier), min/max fold
    /// inline, and the non-null count reads the null bitmap. Only the
    /// retained distinct-value *list* (at most
    /// [`ColumnStats::DISTINCT_RETENTION_LIMIT`] entries) is ever sorted.
    /// The column is read in place — morsel-chunked scans elsewhere never
    /// re-materialize it here.
    pub fn compute(table: &Table, idx: usize) -> ColumnStats {
        // Fold one column variant: `K: the primitive distinct key`, ordered
        // by `ord`, materialized by `val`. Returns the finished stats so
        // every variant shares the retention/uniqueness logic.
        fn fold<K, I, Ord2, V>(rows: I, ord: Ord2, val: V, non_null_total: usize) -> ColumnStats
        where
            K: Copy + Eq + std::hash::Hash,
            I: Iterator<Item = K>,
            Ord2: Fn(&K, &K) -> std::cmp::Ordering,
            V: Fn(K) -> Value,
        {
            let mut seen: FastSet<K> = FastSet::default();
            let (mut min, mut max): (Option<K>, Option<K>) = (None, None);
            for k in rows {
                seen.insert(k);
                match &mut min {
                    Some(m) if ord(&k, m).is_lt() => *m = k,
                    None => min = Some(k),
                    _ => {}
                }
                match &mut max {
                    Some(m) if ord(&k, m).is_ge() => *m = k,
                    None => max = Some(k),
                    _ => {}
                }
            }
            let distinct_count = seen.len();
            let distinct_values =
                (distinct_count <= ColumnStats::DISTINCT_RETENTION_LIMIT).then(|| {
                    let mut keys: Vec<K> = seen.into_iter().collect();
                    keys.sort_unstable_by(&ord);
                    keys.into_iter().map(&val).collect()
                });
            ColumnStats {
                distinct_count,
                min: min.map(&val),
                max: max.map(&val),
                distinct_values,
                unique: non_null_total == distinct_count,
            }
        }

        // Non-null items of a typed column, in row order.
        fn valid<'a, T>(
            values: &'a [T],
            nulls: &'a crate::column::NullMask,
        ) -> impl Iterator<Item = &'a T> + 'a {
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| !nulls.is_null(*i))
                .map(|(_, v)| v)
        }

        let non_null_total = table.non_null_count(idx);
        match table.col(idx) {
            ColumnData::Int64 { values, nulls } => fold(
                valid(values, nulls).copied(),
                i64::cmp,
                Value::Int,
                non_null_total,
            ),
            ColumnData::Date64 { values, nulls } => fold(
                valid(values, nulls).copied(),
                i64::cmp,
                Value::Date,
                non_null_total,
            ),
            // Floats key by bit pattern (NaNs and -0.0/0.0 stay distinct,
            // matching `Table::distinct_values`) and order by the IEEE754
            // total order.
            ColumnData::Float64 { values, nulls } => fold(
                valid(values, nulls).map(|v| v.to_bits()),
                |a, b| f64_ord_key(f64::from_bits(*a)).cmp(&f64_ord_key(f64::from_bits(*b))),
                |bits| Value::Float(f64::from_bits(bits)),
                non_null_total,
            ),
            ColumnData::Utf8 { values, nulls } => fold(
                valid(values, nulls).map(String::as_str),
                |a, b| a.cmp(b),
                |s| Value::Str(s.to_string()),
                non_null_total,
            ),
            // Dictionary codes already order like their strings (sorted
            // dictionary invariant), so a seen-bitmap replaces the hash set.
            ColumnData::Dict { codes, dict, nulls } => {
                let mut seen = vec![false; dict.len()];
                for (i, &c) in codes.iter().enumerate() {
                    if !nulls.is_null(i) {
                        seen[c as usize] = true;
                    }
                }
                let used: Vec<u32> = (0..dict.len() as u32)
                    .filter(|&c| seen[c as usize])
                    .collect();
                fold(
                    used.into_iter(),
                    u32::cmp,
                    |c| Value::Str(dict[c as usize].clone()),
                    non_null_total,
                )
            }
            ColumnData::Bool { values, nulls } => fold(
                valid(values, nulls).copied(),
                bool::cmp,
                Value::Bool,
                non_null_total,
            ),
            // The rare heterogeneous escape hatch pays `Value` clones.
            ColumnData::Mixed(values) => {
                let vals: Vec<Value> = values.iter().filter(|v| !v.is_null()).cloned().collect();
                fold(
                    vals.iter().collect::<Vec<&Value>>().into_iter(),
                    |a, b| a.cmp(b),
                    |v| v.clone(),
                    non_null_total,
                )
            }
        }
    }

    /// The §4.1 rule: a column is usable as a categorical visual variable
    /// when its cardinality is below 20.
    pub fn is_low_cardinality(&self) -> bool {
        self.distinct_count > 0 && self.distinct_count < 20
    }

    /// Merge the stats of an appended chunk into a base column's stats
    /// incrementally (O(distinct), never O(rows)). Min/max are exact.
    /// When both sides retained their distinct-value lists the merged
    /// distinct count (and uniqueness, given the non-null totals) stays
    /// exact; otherwise the distinct count is the lower bound
    /// `max(base, delta)` and uniqueness degrades to `false` — stats are
    /// advisory (widget domains, categorical cutoffs), executor
    /// correctness never depends on them.
    pub fn merge(
        &self,
        delta: &ColumnStats,
        base_non_null: usize,
        delta_non_null: usize,
    ) -> ColumnStats {
        fn tighter(a: &Option<Value>, b: &Option<Value>, keep_lt: bool) -> Option<Value> {
            match (a, b) {
                (Some(x), Some(y)) => Some(if (y < x) == keep_lt {
                    y.clone()
                } else {
                    x.clone()
                }),
                (Some(x), None) => Some(x.clone()),
                (None, Some(y)) => Some(y.clone()),
                (None, None) => None,
            }
        }
        let min = tighter(&self.min, &delta.min, true);
        let max = tighter(&self.max, &delta.max, false);
        match (&self.distinct_values, &delta.distinct_values) {
            (Some(a), Some(b)) => {
                let mut union: Vec<Value> = a.iter().chain(b.iter()).cloned().collect();
                union.sort();
                union.dedup();
                let distinct_count = union.len();
                let unique = distinct_count == base_non_null + delta_non_null;
                ColumnStats {
                    distinct_count,
                    min,
                    max,
                    distinct_values: (distinct_count <= Self::DISTINCT_RETENTION_LIMIT)
                        .then_some(union),
                    unique,
                }
            }
            _ => ColumnStats {
                distinct_count: self.distinct_count.max(delta.distinct_count),
                min,
                max,
                distinct_values: None,
                unique: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Table};
    use crate::types::DataType;

    fn table_with_ints(vals: Vec<i64>) -> Table {
        Table::from_rows(
            vec![("x", DataType::Int)],
            vals.into_iter().map(|v| vec![Value::Int(v)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn basic_stats() {
        let t = table_with_ints(vec![3, 1, 2, 2, 3]);
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.distinct_count, 3);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(3)));
        assert!(!s.unique);
        assert_eq!(
            s.distinct_values,
            Some(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn uniqueness_detected() {
        let t = table_with_ints((0..10).collect());
        let s = ColumnStats::compute(&t, 0);
        assert!(s.unique);
    }

    #[test]
    fn cardinality_rule_matches_paper_threshold() {
        let t = table_with_ints((0..19).collect());
        assert!(ColumnStats::compute(&t, 0).is_low_cardinality());
        let t = table_with_ints((0..20).collect());
        assert!(!ColumnStats::compute(&t, 0).is_low_cardinality());
        // Empty columns are not categorical — there is nothing to enumerate.
        let t = table_with_ints(vec![]);
        assert!(!ColumnStats::compute(&t, 0).is_low_cardinality());
    }

    #[test]
    fn high_cardinality_drops_value_list() {
        let t = table_with_ints((0..100).collect());
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.distinct_count, 100);
        assert!(s.distinct_values.is_none());
        assert_eq!(s.min, Some(Value::Int(0)));
        assert_eq!(s.max, Some(Value::Int(99)));
    }

    /// The single-pass rewrite on a 10⁷-row generated column: exact
    /// distinct count, min/max, and no retained value list — without the
    /// old whole-column sort (this test is why `compute` must stay
    /// O(rows)).
    #[test]
    fn ten_million_row_column_single_pass() {
        let n = 10_000_000usize;
        let mut seed = 0x5EEDu64;
        let values: Vec<i64> = (0..n)
            .map(|_| {
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let z = (seed ^ (seed >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                (z % 1000) as i64
            })
            .collect();
        let schema = crate::table::Schema::new(vec![Column::new("x", DataType::Int)]);
        let t = Table::from_columns(schema, vec![ColumnData::ints(values)]).unwrap();
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.distinct_count, 1000);
        assert_eq!(s.min, Some(Value::Int(0)));
        assert_eq!(s.max, Some(Value::Int(999)));
        assert!(s.distinct_values.is_none());
        assert!(!s.unique);
    }

    #[test]
    fn nulls_excluded_from_stats() {
        let mut t = table_with_ints(vec![5]);
        t.push_row(vec![Value::Null]).unwrap();
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.distinct_count, 1);
        assert!(s.unique);
    }
}
