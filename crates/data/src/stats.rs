//! Column statistics backing the catalogue.
//!
//! PI2 consults these in three places: attribute-type domains for `VAL`
//! generalisation (§2 "initialized with the minimum and maximum of attribute
//! a and b's domains"), the cardinality-below-20 categorical rule (§4.1), and
//! widget initialisation (radio/dropdown option lists).

use crate::table::Table;
use crate::value::Value;

/// Per-column summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub distinct_count: usize,
    /// Domain minimum (non-null), if the column is non-empty.
    pub min: Option<Value>,
    /// Domain maximum (non-null), if the column is non-empty.
    pub max: Option<Value>,
    /// The distinct values themselves, retained only when there are at most
    /// [`ColumnStats::DISTINCT_RETENTION_LIMIT`]; enough for widget domains.
    pub distinct_values: Option<Vec<Value>>,
    /// Whether all non-null values are unique (candidate key).
    pub unique: bool,
}

impl ColumnStats {
    /// Retain explicit distinct-value lists only for low-cardinality columns.
    /// The categorical cutoff in §4.1 is 20; we keep a little slack so that
    /// widget domains for borderline columns remain available.
    pub const DISTINCT_RETENTION_LIMIT: usize = 64;

    /// Compute statistics for column `idx` of `table`. Runs over the typed
    /// column storage: distinct values sort/dedup primitive slices and the
    /// non-null count reads the null bitmap — no `Value` clones, no
    /// `Value`-keyed hash sets.
    pub fn compute(table: &Table, idx: usize) -> ColumnStats {
        let distinct = table.distinct_values(idx);
        let non_null_total = table.non_null_count(idx);
        let min = distinct.first().cloned();
        let max = distinct.last().cloned();
        let unique = non_null_total == distinct.len();
        let distinct_count = distinct.len();
        let distinct_values = if distinct_count <= Self::DISTINCT_RETENTION_LIMIT {
            Some(distinct)
        } else {
            None
        };
        ColumnStats {
            distinct_count,
            min,
            max,
            distinct_values,
            unique,
        }
    }

    /// The §4.1 rule: a column is usable as a categorical visual variable
    /// when its cardinality is below 20.
    pub fn is_low_cardinality(&self) -> bool {
        self.distinct_count > 0 && self.distinct_count < 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crate::types::DataType;

    fn table_with_ints(vals: Vec<i64>) -> Table {
        Table::from_rows(
            vec![("x", DataType::Int)],
            vals.into_iter().map(|v| vec![Value::Int(v)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn basic_stats() {
        let t = table_with_ints(vec![3, 1, 2, 2, 3]);
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.distinct_count, 3);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(3)));
        assert!(!s.unique);
        assert_eq!(
            s.distinct_values,
            Some(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn uniqueness_detected() {
        let t = table_with_ints((0..10).collect());
        let s = ColumnStats::compute(&t, 0);
        assert!(s.unique);
    }

    #[test]
    fn cardinality_rule_matches_paper_threshold() {
        let t = table_with_ints((0..19).collect());
        assert!(ColumnStats::compute(&t, 0).is_low_cardinality());
        let t = table_with_ints((0..20).collect());
        assert!(!ColumnStats::compute(&t, 0).is_low_cardinality());
        // Empty columns are not categorical — there is nothing to enumerate.
        let t = table_with_ints(vec![]);
        assert!(!ColumnStats::compute(&t, 0).is_low_cardinality());
    }

    #[test]
    fn high_cardinality_drops_value_list() {
        let t = table_with_ints((0..100).collect());
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.distinct_count, 100);
        assert!(s.distinct_values.is_none());
        assert_eq!(s.min, Some(Value::Int(0)));
        assert_eq!(s.max, Some(Value::Int(99)));
    }

    #[test]
    fn nulls_excluded_from_stats() {
        let mut t = table_with_ints(vec![5]);
        t.push_row(vec![Value::Null]).unwrap();
        let s = ColumnStats::compute(&t, 0);
        assert_eq!(s.distinct_count, 1);
        assert!(s.unique);
    }
}
