//! In-memory relational tables over typed columnar storage.

use crate::column::{f64_ord_key, ColumnData};
use crate::error::DataError;
use crate::types::DataType;
use crate::value::Value;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Default append-chunk granularity (rows per chunk).
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

/// Appends smaller than this coalesce into the tail chunk instead of
/// starting a new one, so high-frequency single-row appends cannot grow
/// the chunk list unboundedly. The copy this implies is bounded by
/// `min(chunk_rows, COALESCE_CAP)` rows.
const COALESCE_CAP: usize = 4_096;

/// The configured append-chunk granularity: `PI2_CHUNK_ROWS` (clamped to
/// at least 16), default [`DEFAULT_CHUNK_ROWS`]. Read once per process.
pub fn chunk_rows() -> usize {
    static ROWS: OnceLock<usize> = OnceLock::new();
    *ROWS.get_or_init(|| {
        std::env::var("PI2_CHUNK_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(16))
            .unwrap_or(DEFAULT_CHUNK_ROWS)
    })
}

/// A named, typed output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// The name.
    pub name: String,
    /// The dtype.
    pub dtype: DataType,
}

impl Column {
    /// New.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns.
    pub columns: Vec<Column>,
}

impl Schema {
    /// New.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Len.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Case-insensitive lookup of a column index by (optionally unqualified)
    /// name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Names.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A row of values; arity always matches the owning table's schema.
pub type Row = Vec<Value>;

/// Physical storage of a table: either one flat column vector, or — for
/// live (appendable) tables — a list of immutable `Arc`-shared chunks
/// with a lazily consolidated flat view. Appends share every existing
/// chunk and only the *scan side* pays the consolidation, once, the
/// first time a full execution needs flat columns.
#[derive(Debug, Clone)]
enum Repr {
    /// One flat column vector (every table starts here).
    Flat(Vec<Arc<ColumnData>>),
    /// Immutable chunks (each itself a flat table) plus the cached
    /// consolidated columns.
    Chunked {
        chunks: Vec<Arc<Table>>,
        flat: OnceLock<Vec<Arc<ColumnData>>>,
    },
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Flat(Vec::new())
    }
}

/// A column-oriented in-memory table: one typed [`ColumnData`] per schema
/// column, shared by `Arc` so cloning a table (or scanning it from the
/// query engine) never copies cell data. Tables grown by
/// [`Table::append_table`] hold their history as immutable chunks; see
/// the private `Repr` enum.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// The schema.
    pub schema: Schema,
    repr: Repr,
    len: usize,
}

impl PartialEq for Table {
    /// Value-level equality: same schema and same cell values, regardless
    /// of each column's storage representation (typed vs `Mixed`,
    /// chunked vs flat).
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.len == other.len
            && self
                .cols()
                .iter()
                .zip(other.cols().iter())
                .all(|(a, b)| a.semantic_eq(b))
    }
}

impl Table {
    /// New.
    pub fn new(schema: Schema) -> Self {
        let cols = schema
            .columns
            .iter()
            .map(|c| Arc::new(ColumnData::new_typed(c.dtype)))
            .collect();
        Table {
            schema,
            repr: Repr::Flat(cols),
            len: 0,
        }
    }

    /// The flat column vector, consolidating chunks on first use (cached;
    /// concurrent scans consolidate once).
    fn cols(&self) -> &[Arc<ColumnData>] {
        match &self.repr {
            Repr::Flat(cols) => cols,
            Repr::Chunked { chunks, flat } => {
                flat.get_or_init(|| Self::consolidate(&self.schema, chunks))
            }
        }
    }

    /// Concatenate per-column storage across chunks (or empty typed
    /// columns when there are no chunks).
    fn consolidate(schema: &Schema, chunks: &[Arc<Table>]) -> Vec<Arc<ColumnData>> {
        if chunks.is_empty() {
            return schema
                .columns
                .iter()
                .map(|c| Arc::new(ColumnData::new_typed(c.dtype)))
                .collect();
        }
        if let [only] = chunks {
            return only.cols().to_vec();
        }
        (0..schema.len())
            .map(|i| {
                let parts: Vec<&ColumnData> = chunks.iter().map(|c| c.col(i)).collect();
                Arc::new(ColumnData::concat(&parts))
            })
            .collect()
    }

    /// Switch to flat storage in place (mutating paths need `&mut`
    /// columns; chunked history is consolidated and dropped).
    fn make_flat(&mut self) {
        if matches!(self.repr, Repr::Flat(_)) {
            return;
        }
        let cols = self.cols().to_vec();
        self.repr = Repr::Flat(cols);
    }

    /// The flat columns, mutably (consolidating first if chunked).
    fn cols_mut(&mut self) -> &mut Vec<Arc<ColumnData>> {
        self.make_flat();
        match &mut self.repr {
            Repr::Flat(cols) => cols,
            Repr::Chunked { .. } => unreachable!("make_flat just ran"),
        }
    }

    /// Number of storage chunks: 1 for flat tables (even empty ones),
    /// the chunk count for appended tables.
    pub fn num_chunks(&self) -> usize {
        match &self.repr {
            Repr::Flat(_) => 1,
            Repr::Chunked { chunks, .. } => chunks.len().max(1),
        }
    }

    /// The storage chunks of an appended table (empty slice for flat
    /// tables). Each chunk is itself a flat table.
    pub fn chunks(&self) -> &[Arc<Table>] {
        match &self.repr {
            Repr::Flat(_) => &[],
            Repr::Chunked { chunks, .. } => chunks,
        }
    }

    /// The rows in `lo..hi` as a new flat table. Column storage is sliced
    /// per [`ColumnData::slice`]; dictionary columns share their
    /// dictionary `Arc`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Table {
        let hi = hi.min(self.len);
        let lo = lo.min(hi);
        let cols = self
            .cols()
            .iter()
            .map(|c| Arc::new(c.slice(lo, hi)))
            .collect();
        Table {
            schema: self.schema.clone(),
            repr: Repr::Flat(cols),
            len: hi - lo,
        }
    }

    /// Append `delta`'s rows *without copying existing data*: prior
    /// storage is shared by `Arc` as immutable chunks and the delta lands
    /// as new chunk(s) split at `chunk_rows` boundaries. A small tail
    /// chunk (at most `min(chunk_rows, 4096)` rows after the merge) is
    /// coalesced with the incoming rows — the one bounded copy — so
    /// high-frequency single-row appends keep the chunk list short.
    /// Dictionary columns coalesce through [`ColumnData::concat`], which
    /// remaps codes against the sorted union of the dictionaries.
    pub fn append_table(&self, delta: &Table, chunk_rows: usize) -> Result<Table, DataError> {
        if delta.num_columns() != self.num_columns() {
            return Err(DataError::ArityMismatch {
                expected: self.num_columns(),
                found: delta.num_columns(),
            });
        }
        let chunk_rows = chunk_rows.max(1);
        let mut chunks: Vec<Arc<Table>> = match &self.repr {
            Repr::Flat(_) if self.len == 0 => Vec::new(),
            Repr::Flat(_) => vec![Arc::new(self.clone())],
            Repr::Chunked { chunks, .. } => chunks.clone(),
        };
        let added = delta.num_rows();
        let cap = chunk_rows.min(COALESCE_CAP);
        let coalesce = added > 0
            && added <= cap
            && chunks
                .last()
                .is_some_and(|tail| tail.num_rows() + added <= cap);
        if coalesce {
            let tail = chunks.pop().expect("coalesce requires a tail");
            let merged_cols: Vec<Arc<ColumnData>> = (0..self.num_columns())
                .map(|i| Arc::new(ColumnData::concat(&[tail.col(i), delta.col(i)])))
                .collect();
            let merged = Table {
                schema: self.schema.clone(),
                repr: Repr::Flat(merged_cols),
                len: tail.num_rows() + added,
            };
            chunks.push(Arc::new(merged));
        } else {
            let mut lo = 0;
            while lo < added {
                let hi = (lo + chunk_rows).min(added);
                chunks.push(Arc::new(delta.slice_rows(lo, hi)));
                lo = hi;
            }
        }
        Ok(Table {
            schema: self.schema.clone(),
            repr: Repr::Chunked {
                chunks,
                flat: OnceLock::new(),
            },
            len: self.len + added,
        })
    }

    /// [`Table::append_table`] over materialized rows (arity-checked,
    /// value storage typed per the schema).
    pub fn append_rows(&self, rows: Vec<Row>, chunk_rows: usize) -> Result<Table, DataError> {
        let mut delta = Table::new(self.schema.clone());
        for row in rows {
            delta.push_row(row)?;
        }
        self.append_table(&delta, chunk_rows)
    }

    /// Build a table from `(name, type)` pairs and rows, validating arity.
    pub fn from_rows(columns: Vec<(&str, DataType)>, rows: Vec<Row>) -> Result<Self, DataError> {
        let schema = Schema::new(
            columns
                .into_iter()
                .map(|(n, t)| Column::new(n, t))
                .collect(),
        );
        let mut t = Table::new(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Build a table directly from columns, validating count and lengths.
    pub fn from_columns(schema: Schema, cols: Vec<ColumnData>) -> Result<Self, DataError> {
        Self::from_arc_columns(schema, cols.into_iter().map(Arc::new).collect())
    }

    /// Like [`Table::from_columns`], but sharing already-`Arc`ed columns —
    /// a projection of unmodified base columns is zero-copy.
    pub fn from_arc_columns(schema: Schema, cols: Vec<Arc<ColumnData>>) -> Result<Self, DataError> {
        if cols.len() != schema.len() {
            return Err(DataError::ArityMismatch {
                expected: schema.len(),
                found: cols.len(),
            });
        }
        let len = cols.first().map(|c| c.len()).unwrap_or(0);
        if let Some(short) = cols.iter().find(|c| c.len() != len) {
            return Err(DataError::ArityMismatch {
                expected: len,
                found: short.len(),
            });
        }
        Ok(Table {
            schema,
            repr: Repr::Flat(cols),
            len,
        })
    }

    /// Push row.
    pub fn push_row(&mut self, row: Row) -> Result<(), DataError> {
        if row.len() != self.schema.len() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (col, v) in self.cols_mut().iter_mut().zip(row) {
            Arc::make_mut(col).push(v);
        }
        self.len += 1;
        Ok(())
    }

    /// Num rows.
    pub fn num_rows(&self) -> usize {
        self.len
    }

    /// Num columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// The storage column at `idx` (consolidating a chunked table's
    /// storage on first use).
    pub fn col(&self, idx: usize) -> &ColumnData {
        &self.cols()[idx]
    }

    /// The shared storage column at `idx` (cheap to clone into the engine's
    /// relations — scans are zero-copy).
    pub fn col_arc(&self, idx: usize) -> &Arc<ColumnData> {
        &self.cols()[idx]
    }

    /// The cell at (`row`, `col`), materialized.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.cols()[col].value(row)
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.cols().iter().map(|c| c.value(i)).collect()
    }

    /// Iterate materialized rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Materialize every row (convenience for tests and small tables).
    pub fn to_rows(&self) -> Vec<Row> {
        self.iter_rows().collect()
    }

    /// Keep only the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        for col in self.cols_mut() {
            Arc::make_mut(col).truncate(n);
        }
        self.len = n;
    }

    /// All values in column `idx`, materialized.
    pub fn column_values(&self, idx: usize) -> impl Iterator<Item = Value> + '_ {
        self.cols()[idx].iter()
    }

    /// Number of non-NULL values in column `idx` (O(1): from the bitmap).
    pub fn non_null_count(&self, idx: usize) -> usize {
        self.len - self.cols()[idx].null_count()
    }

    /// Distinct non-null values in a column, sorted. Runs directly over the
    /// typed storage (no `Value` materialization until the result).
    pub fn distinct_values(&self, idx: usize) -> Vec<Value> {
        match self.cols()[idx].as_ref() {
            ColumnData::Int64 { values, nulls } => {
                let mut vals: Vec<i64> = values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .map(|(_, v)| *v)
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals.into_iter().map(Value::Int).collect()
            }
            ColumnData::Date64 { values, nulls } => {
                let mut vals: Vec<i64> = values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .map(|(_, v)| *v)
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals.into_iter().map(Value::Date).collect()
            }
            ColumnData::Float64 { values, nulls } => {
                let mut vals: Vec<f64> = values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .map(|(_, v)| *v)
                    .collect();
                vals.sort_unstable_by_key(|v| f64_ord_key(*v));
                vals.dedup_by(|a, b| a.to_bits() == b.to_bits());
                vals.into_iter().map(Value::Float).collect()
            }
            ColumnData::Utf8 { values, nulls } => {
                let mut refs: Vec<&String> = values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .map(|(_, v)| v)
                    .collect();
                refs.sort_unstable();
                refs.dedup();
                refs.into_iter().map(|s| Value::Str(s.clone())).collect()
            }
            ColumnData::Dict { codes, dict, nulls } => {
                // The dictionary is sorted, so marking the codes in use
                // yields the distinct values already ordered — no sort, no
                // string comparisons.
                let mut seen = vec![false; dict.len()];
                for (i, &c) in codes.iter().enumerate() {
                    if !nulls.is_null(i) {
                        seen[c as usize] = true;
                    }
                }
                dict.iter()
                    .enumerate()
                    .filter(|(c, _)| seen[*c])
                    .map(|(_, s)| Value::Str(s.clone()))
                    .collect()
            }
            ColumnData::Bool { values, nulls } => {
                let mut seen = [false, false];
                for (i, v) in values.iter().enumerate() {
                    if !nulls.is_null(i) {
                        seen[*v as usize] = true;
                    }
                }
                let mut out = Vec::new();
                if seen[0] {
                    out.push(Value::Bool(false));
                }
                if seen[1] {
                    out.push(Value::Bool(true));
                }
                out
            }
            ColumnData::Mixed(values) => {
                let mut vals: Vec<Value> =
                    values.iter().filter(|v| !v.is_null()).cloned().collect();
                vals.sort();
                vals.dedup();
                vals
            }
        }
    }

    /// (min, max) of a column's non-null values, if any.
    pub fn min_max(&self, idx: usize) -> Option<(Value, Value)> {
        fn typed<T: Copy, F: Fn(T, T) -> std::cmp::Ordering>(
            values: &[T],
            nulls: &crate::column::NullMask,
            cmp: F,
        ) -> Option<(T, T)> {
            let mut iter = values
                .iter()
                .enumerate()
                .filter(|(i, _)| !nulls.is_null(*i))
                .map(|(_, v)| *v);
            let first = iter.next()?;
            let (mut min, mut max) = (first, first);
            for v in iter {
                if cmp(v, min).is_lt() {
                    min = v;
                }
                if cmp(v, max).is_gt() {
                    max = v;
                }
            }
            Some((min, max))
        }
        match self.cols()[idx].as_ref() {
            ColumnData::Int64 { values, nulls } => {
                typed(values, nulls, |a, b| a.cmp(&b)).map(|(a, b)| (Value::Int(a), Value::Int(b)))
            }
            ColumnData::Date64 { values, nulls } => typed(values, nulls, |a, b| a.cmp(&b))
                .map(|(a, b)| (Value::Date(a), Value::Date(b))),
            ColumnData::Float64 { values, nulls } => {
                typed(values, nulls, |a, b| f64_ord_key(a).cmp(&f64_ord_key(b)))
                    .map(|(a, b)| (Value::Float(a), Value::Float(b)))
            }
            ColumnData::Bool { values, nulls } => typed(values, nulls, |a, b| a.cmp(&b))
                .map(|(a, b)| (Value::Bool(a), Value::Bool(b))),
            ColumnData::Utf8 { values, nulls } => {
                let mut iter = values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .map(|(_, v)| v);
                let first = iter.next()?;
                let (mut min, mut max) = (first, first);
                for v in iter {
                    if v < min {
                        min = v;
                    }
                    if v > max {
                        max = v;
                    }
                }
                Some((Value::Str(min.clone()), Value::Str(max.clone())))
            }
            ColumnData::Dict { codes, dict, nulls } => {
                // Sorted dictionary: min/max string = min/max code in use.
                typed(codes, nulls, |a, b| a.cmp(&b)).map(|(a, b)| {
                    (
                        Value::Str(dict[a as usize].clone()),
                        Value::Str(dict[b as usize].clone()),
                    )
                })
            }
            ColumnData::Mixed(values) => {
                let mut iter = values.iter().filter(|v| !v.is_null());
                let first = iter.next()?.clone();
                let mut min = first.clone();
                let mut max = first;
                for v in iter {
                    if *v < min {
                        min = v.clone();
                    }
                    if *v > max {
                        max = v.clone();
                    }
                }
                Some((min, max))
            }
        }
    }

    /// Whether the values in the given column are unique (no duplicates among
    /// non-null values). Used to infer functional dependencies (§4.1).
    pub fn column_is_unique(&self, idx: usize) -> bool {
        use std::collections::HashSet;
        match self.cols()[idx].as_ref() {
            ColumnData::Int64 { values, nulls } | ColumnData::Date64 { values, nulls } => {
                let mut seen = HashSet::with_capacity(values.len());
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .all(|(_, v)| seen.insert(*v))
            }
            ColumnData::Float64 { values, nulls } => {
                let mut seen = HashSet::with_capacity(values.len());
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .all(|(_, v)| seen.insert(v.to_bits()))
            }
            ColumnData::Utf8 { values, nulls } => {
                let mut seen = HashSet::with_capacity(values.len());
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .all(|(_, v)| seen.insert(v.as_str()))
            }
            ColumnData::Dict { codes, dict, nulls } => {
                let mut seen = vec![false; dict.len()];
                codes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .all(|(_, &c)| !std::mem::replace(&mut seen[c as usize], true))
            }
            ColumnData::Bool { values, nulls } => {
                let mut seen = HashSet::new();
                values
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !nulls.is_null(*i))
                    .all(|(_, v)| seen.insert(*v))
            }
            ColumnData::Mixed(values) => {
                let mut seen = HashSet::new();
                values
                    .iter()
                    .filter(|v| !v.is_null())
                    .all(|v| seen.insert(v.clone()))
            }
        }
    }
}

impl fmt::Display for Table {
    /// Fixed-width text rendering, used by the table "visualization" and the
    /// example binaries. Widths are measured in characters, not bytes, so
    /// non-ASCII cells stay aligned.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn width(s: &str) -> usize {
            s.chars().count()
        }
        let mut widths: Vec<usize> = self.schema.columns.iter().map(|c| width(&c.name)).collect();
        let rendered: Vec<Vec<String>> = self
            .iter_rows()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(width(cell));
            }
        }
        let pad = |f: &mut fmt::Formatter<'_>, s: &str, w: usize| -> fmt::Result {
            write!(f, "{s}")?;
            for _ in width(s)..w {
                write!(f, " ")?;
            }
            Ok(())
        };
        for (i, c) in self.schema.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            pad(f, &c.name, widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                pad(f, cell, widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            vec![("a", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![Value::Int(1), Value::Str("x".into())],
                vec![Value::Int(2), Value::Str("y".into())],
                vec![Value::Int(2), Value::Str("z".into())],
                vec![Value::Null, Value::Str("w".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_is_validated() {
        let mut t = sample();
        let err = t.push_row(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let t = sample();
        assert_eq!(t.schema.index_of("A"), Some(0));
        assert_eq!(t.schema.index_of("NAME"), Some(1));
        assert_eq!(t.schema.index_of("missing"), None);
    }

    #[test]
    fn distinct_skips_nulls_and_sorts() {
        let t = sample();
        assert_eq!(t.distinct_values(0), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn min_max() {
        let t = sample();
        assert_eq!(t.min_max(0), Some((Value::Int(1), Value::Int(2))));
        let empty = Table::from_rows(vec![("a", DataType::Int)], vec![]).unwrap();
        assert_eq!(empty.min_max(0), None);
    }

    #[test]
    fn uniqueness_check() {
        let t = sample();
        assert!(!t.column_is_unique(0)); // value 2 repeats
        assert!(t.column_is_unique(1));
    }

    #[test]
    fn display_renders_header_and_rows() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("a"));
        assert!(s.contains("name"));
        assert!(s.contains("NULL"));
        assert_eq!(s.lines().count(), 2 + t.num_rows());
    }

    #[test]
    fn display_aligns_non_ascii_cells() {
        let t = Table::from_rows(
            vec![("city", DataType::Str), ("n", DataType::Int)],
            vec![
                vec![Value::Str("Zürich".into()), Value::Int(1)],
                vec![Value::Str("Geneva".into()), Value::Int(2)],
            ],
        )
        .unwrap();
        let s = t.to_string();
        // Both city names are 6 characters: every line must share one width.
        let widths: Vec<usize> = s
            .lines()
            .map(|l| l.chars().position(|c| c == '|' || c == '+').unwrap())
            .collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "separator column drifted: {widths:?}\n{s}"
        );
    }

    #[test]
    fn storage_is_typed_per_schema() {
        let t = sample();
        assert!(matches!(t.col(0), ColumnData::Int64 { .. }));
        assert!(matches!(t.col(1), ColumnData::Utf8 { .. }));
        assert_eq!(t.non_null_count(0), 3);
        assert_eq!(t.row(3), vec![Value::Null, Value::Str("w".into())]);
    }

    #[test]
    fn from_columns_validates_lengths() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        let col = ColumnData::from_values(vec![Value::Int(1)], None);
        let t = Table::from_columns(schema.clone(), vec![col]).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert!(Table::from_columns(schema, vec![]).is_err());
    }

    #[test]
    fn equality_is_representation_agnostic() {
        let a = sample();
        let mut b = Table::new(a.schema.clone());
        for row in a.iter_rows() {
            b.push_row(row).unwrap();
        }
        assert_eq!(a, b);
        b.push_row(vec![Value::Int(9), Value::Str("q".into())])
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn negative_floats_order_numerically() {
        // Regression: the float ordering key must place negatives below
        // positives and order negatives by value (the SDSS `dec` column is
        // entirely negative).
        let t = Table::from_rows(
            vec![("x", DataType::Float)],
            vec![
                vec![Value::Float(1.0)],
                vec![Value::Float(-5.0)],
                vec![Value::Float(-0.05)],
                vec![Value::Float(1.0)],
                vec![Value::Float(-5.0)],
            ],
        )
        .unwrap();
        assert_eq!(t.min_max(0), Some((Value::Float(-5.0), Value::Float(1.0))));
        assert_eq!(
            t.distinct_values(0),
            vec![Value::Float(-5.0), Value::Float(-0.05), Value::Float(1.0)]
        );
        assert!(!t.column_is_unique(0));
    }

    #[test]
    fn dict_profiling_matches_utf8() {
        let vals = ["NY", "LA", "NY", "SF", "LA", "NY"];
        let plain = Table::from_columns(
            Schema::new(vec![Column::new("city", DataType::Str)]),
            vec![ColumnData::strs(
                vals.iter().map(|s| s.to_string()).collect(),
            )],
        )
        .unwrap();
        let dict = Table::from_columns(
            Schema::new(vec![Column::new("city", DataType::Str)]),
            vec![ColumnData::strs_dict(
                vals.iter().map(|s| s.to_string()).collect(),
            )],
        )
        .unwrap();
        assert!(matches!(dict.col(0), ColumnData::Dict { .. }));
        assert_eq!(dict.distinct_values(0), plain.distinct_values(0));
        assert_eq!(dict.min_max(0), plain.min_max(0));
        assert_eq!(dict.column_is_unique(0), plain.column_is_unique(0));
        assert_eq!(dict.non_null_count(0), plain.non_null_count(0));
        let mut with_null = dict.clone();
        with_null.push_row(vec![Value::Null]).unwrap();
        assert_eq!(with_null.non_null_count(0), 6);
        assert_eq!(with_null.distinct_values(0).len(), 3);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let mut t = sample();
        t.truncate(2);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1), vec![Value::Int(2), Value::Str("y".into())]);
    }

    fn int_table(n: usize) -> Table {
        Table::from_rows(
            vec![("a", DataType::Int)],
            (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn append_equals_rebuilt_from_scratch() {
        let base = int_table(10);
        let delta = Table::from_rows(
            vec![("a", DataType::Int)],
            (10..50).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        let appended = base.append_table(&delta, 16).unwrap();
        let rebuilt = int_table(50);
        assert_eq!(appended.num_rows(), 50);
        assert!(appended.num_chunks() > 1, "40-row delta at 16/chunk splits");
        assert_eq!(appended, rebuilt);
        assert_eq!(appended.min_max(0), rebuilt.min_max(0));
        assert_eq!(appended.distinct_values(0), rebuilt.distinct_values(0));
    }

    #[test]
    fn append_shares_existing_storage_by_arc() {
        // A base past the coalesce cap is never rewritten by an append.
        let base = int_table(5_000);
        let first = base.append_table(&int_table(1), 65_536).unwrap();
        assert!(Arc::ptr_eq(base.col_arc(0), first.chunks()[0].col_arc(0)));
        // A second small append coalesces only the 1-row tail; the big
        // chunk's Arc itself is reused.
        let second = first.append_table(&int_table(1), 65_536).unwrap();
        assert!(Arc::ptr_eq(&first.chunks()[0], &second.chunks()[0]));
        assert_eq!(second.num_rows(), 5_002);
        assert_eq!(second.num_chunks(), 2, "tail coalesced, not appended");
    }

    #[test]
    fn append_rows_builds_the_delta_chunk() {
        let base = sample();
        let appended = base
            .append_rows(vec![vec![Value::Int(7), Value::Str("q".into())]], 1024)
            .unwrap();
        assert_eq!(appended.num_rows(), 5);
        assert_eq!(appended.row(4), vec![Value::Int(7), Value::Str("q".into())]);
        // The original is untouched (functional update).
        assert_eq!(base.num_rows(), 4);
    }

    #[test]
    fn dict_columns_survive_chunked_appends() {
        let schema = Schema::new(vec![Column::new("city", DataType::Str)]);
        let mk = |vals: &[&str]| {
            Table::from_columns(
                schema.clone(),
                vec![ColumnData::strs_dict(
                    vals.iter().map(|s| s.to_string()).collect(),
                )],
            )
            .unwrap()
        };
        // Enough repetition that the dict_encode cardinality cutoff keeps
        // both sides dictionary-encoded.
        let base = mk(&["NY", "LA", "NY", "SF", "NY", "LA"]);
        assert!(matches!(base.col(0), ColumnData::Dict { .. }));
        // A delta whose dictionary overlaps but also extends the base's:
        // the sorted-union remap path.
        let delta = mk(&["SF", "AMS", "NY", "AMS", "AMS", "NY"]);
        assert!(matches!(delta.col(0), ColumnData::Dict { .. }));
        let appended = base.append_table(&delta, 6).unwrap();
        let rebuilt = mk(&[
            "NY", "LA", "NY", "SF", "NY", "LA", "SF", "AMS", "NY", "AMS", "AMS", "NY",
        ]);
        assert_eq!(appended, rebuilt);
        // Consolidated storage keeps the dictionary encoding.
        assert!(matches!(appended.col(0), ColumnData::Dict { .. }));
        assert_eq!(appended.distinct_values(0), rebuilt.distinct_values(0));
        assert_eq!(appended.min_max(0), rebuilt.min_max(0));
    }

    #[test]
    fn slice_rows_clamps_and_copies() {
        let t = int_table(10);
        let s = t.slice_rows(3, 7);
        assert_eq!(s.num_rows(), 4);
        assert_eq!(s.row(0), vec![Value::Int(3)]);
        assert_eq!(t.slice_rows(8, 100).num_rows(), 2);
        assert_eq!(t.slice_rows(5, 5).num_rows(), 0);
    }

    #[test]
    fn appended_table_wire_form_matches_rebuilt() {
        // Scans, serialization, and equality all go through consolidated
        // columns, so the chunked table is externally indistinguishable.
        let base = sample();
        let appended = base
            .append_rows(
                vec![
                    vec![Value::Int(5), Value::Str("p".into())],
                    vec![Value::Int(6), Value::Null],
                ],
                2,
            )
            .unwrap();
        let mut rebuilt = sample();
        rebuilt
            .push_row(vec![Value::Int(5), Value::Str("p".into())])
            .unwrap();
        rebuilt.push_row(vec![Value::Int(6), Value::Null]).unwrap();
        assert_eq!(
            crate::wire::table_to_json(&appended),
            crate::wire::table_to_json(&rebuilt)
        );
    }
}
