//! In-memory relational tables.

use crate::error::DataError;
use crate::types::DataType;
use crate::value::Value;
use std::fmt;

/// A named, typed output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// The name.
    pub name: String,
    /// The dtype.
    pub dtype: DataType,
}

impl Column {
    /// New.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns.
    pub columns: Vec<Column>,
}

impl Schema {
    /// New.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Len.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Case-insensitive lookup of a column index by (optionally unqualified)
    /// name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns
            .iter()
            .position(|c| c.name.to_ascii_lowercase() == lower)
    }

    /// Column.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Names.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A row of values; arity always matches the owning table's schema.
pub type Row = Vec<Value>;

/// A row-oriented in-memory table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// The schema.
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// New.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a table from `(name, type)` pairs and rows, validating arity.
    pub fn from_rows(columns: Vec<(&str, DataType)>, rows: Vec<Row>) -> Result<Self, DataError> {
        let schema = Schema::new(
            columns
                .into_iter()
                .map(|(n, t)| Column::new(n, t))
                .collect(),
        );
        let mut t = Table::new(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Push row.
    pub fn push_row(&mut self, row: Row) -> Result<(), DataError> {
        if row.len() != self.schema.len() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Num rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Num columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// All values in column `idx`.
    pub fn column_values(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[idx])
    }

    /// Distinct non-null values in a column, sorted.
    pub fn distinct_values(&self, idx: usize) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .column_values(idx)
            .filter(|v| !v.is_null())
            .cloned()
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// (min, max) of a column's non-null values, if any.
    pub fn min_max(&self, idx: usize) -> Option<(Value, Value)> {
        let mut iter = self.column_values(idx).filter(|v| !v.is_null());
        let first = iter.next()?.clone();
        let mut min = first.clone();
        let mut max = first;
        for v in iter {
            if *v < min {
                min = v.clone();
            }
            if *v > max {
                max = v.clone();
            }
        }
        Some((min, max))
    }

    /// Whether the values in the given column are unique (no duplicates among
    /// non-null values). Used to infer functional dependencies (§4.1).
    pub fn column_is_unique(&self, idx: usize) -> bool {
        let mut seen = std::collections::HashSet::new();
        for v in self.column_values(idx) {
            if v.is_null() {
                continue;
            }
            if !seen.insert(v.clone()) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Table {
    /// Fixed-width text rendering, used by the table "visualization" and the
    /// example binaries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.schema.columns.iter().map(|c| c.name.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, c) in self.schema.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{:width$}", c.name, width = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "-+-")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{:width$}", cell, width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            vec![("a", DataType::Int), ("name", DataType::Str)],
            vec![
                vec![Value::Int(1), Value::Str("x".into())],
                vec![Value::Int(2), Value::Str("y".into())],
                vec![Value::Int(2), Value::Str("z".into())],
                vec![Value::Null, Value::Str("w".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_is_validated() {
        let mut t = sample();
        let err = t.push_row(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let t = sample();
        assert_eq!(t.schema.index_of("A"), Some(0));
        assert_eq!(t.schema.index_of("NAME"), Some(1));
        assert_eq!(t.schema.index_of("missing"), None);
    }

    #[test]
    fn distinct_skips_nulls_and_sorts() {
        let t = sample();
        assert_eq!(t.distinct_values(0), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn min_max() {
        let t = sample();
        assert_eq!(t.min_max(0), Some((Value::Int(1), Value::Int(2))));
        let empty = Table::from_rows(vec![("a", DataType::Int)], vec![]).unwrap();
        assert_eq!(empty.min_max(0), None);
    }

    #[test]
    fn uniqueness_check() {
        let t = sample();
        assert!(!t.column_is_unique(0)); // value 2 repeats
        assert!(t.column_is_unique(1));
    }

    #[test]
    fn display_renders_header_and_rows() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("a"));
        assert!(s.contains("name"));
        assert!(s.contains("NULL"));
        assert_eq!(s.lines().count(), 2 + t.num_rows());
    }
}
