//! Database column types.
//!
//! Note these are *storage* types. The Difftree type hierarchy of §3.2.1
//! (`AST → str → num`, plus attribute types) lives in `pi2-difftree`; the
//! mapping from storage types onto that hierarchy is `DataType::is_numeric`.

use std::fmt;

/// The storage type of a table column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataType {
    /// `Bool`.
    Bool,
    /// `Int`.
    Int,
    /// `Float`.
    Float,
    /// `Str`.
    Str,
    /// `Date`.
    Date,
}

impl DataType {
    /// Whether values of this type map to the `num` primitive in the paper's
    /// type hierarchy. Dates count as numeric: they support range predicates,
    /// sliders, and axis scales.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Float | DataType::Date | DataType::Bool
        )
    }

    /// Least-common-supertype of two storage types, used when unioning result
    /// schemas (§3.2.2). `None` means the union falls back to `str`-level
    /// compatibility only if both are strings, otherwise the types are
    /// union-incompatible at the storage level.
    pub fn union(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        if self == other {
            return Some(self);
        }
        match (self, other) {
            (Int, Float) | (Float, Int) => Some(Float),
            (Bool, Int) | (Int, Bool) => Some(Int),
            (Bool, Float) | (Float, Bool) => Some(Float),
            (Date, Str) | (Str, Date) => Some(Str),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Date.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        use DataType::*;
        for a in [Bool, Int, Float, Str, Date] {
            assert_eq!(a.union(a), Some(a));
            for b in [Bool, Int, Float, Str, Date] {
                assert_eq!(a.union(b), b.union(a));
            }
        }
    }

    #[test]
    fn int_float_union_is_float() {
        assert_eq!(DataType::Int.union(DataType::Float), Some(DataType::Float));
    }

    #[test]
    fn str_int_union_is_incompatible() {
        assert_eq!(DataType::Str.union(DataType::Int), None);
    }
}
