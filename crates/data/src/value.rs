//! Runtime values flowing through tables, query evaluation, and interaction
//! event streams.

use crate::date::{format_iso_date, parse_iso_date};
use crate::types::DataType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single SQL value.
///
/// `Date` carries days since 1970-01-01 (see [`crate::date`]). `Float` uses
/// a total order (NaN sorts last) so values can live in sorted containers and
/// group-by keys.
#[derive(Debug, Clone)]
pub enum Value {
    /// `Null`.
    Null,
    /// `Bool`.
    Bool(bool),
    /// `Int`.
    Int(i64),
    /// `Float`.
    Float(f64),
    /// `Str`.
    Str(String),
    /// `Date`.
    Date(i64),
}

impl Value {
    /// The concrete type of this value; `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Dates are numeric (their day
    /// number) so range predicates and sliders work uniformly over them.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// As i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// As str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// True when the value is `Int`, `Float`, or `Date` — the types that map
    /// to quantitative visual variables (§4.1).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Date(_))
    }

    /// Interpret a string literal as a date when it parses as ISO
    /// `YYYY-MM-DD`; used when comparing string literals to date attributes.
    pub fn coerce_to_date(&self) -> Option<Value> {
        match self {
            Value::Date(d) => Some(Value::Date(*d)),
            Value::Str(s) => parse_iso_date(s).map(Value::Date),
            Value::Int(i) => Some(Value::Date(*i)),
            _ => None,
        }
    }

    /// SQL-comparison between two values. Returns `None` when either side is
    /// `NULL` or the types are incomparable; numeric types compare through
    /// `f64`, strings lexicographically, and ISO date strings compare with
    /// date values.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Date(_), Value::Str(s)) => {
                let d = parse_iso_date(s)?;
                self.sql_cmp(&Value::Date(d))
            }
            (Value::Str(s), Value::Date(_)) => {
                let d = parse_iso_date(s)?;
                Value::Date(d).sql_cmp(other)
            }
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality (`None` for NULL comparisons).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total-order key used for sorting/grouping (NULL first, then by type).
    fn total_key(&self) -> (u8, i64, u64, &str) {
        match self {
            Value::Null => (0, 0, 0, ""),
            Value::Bool(b) => (1, i64::from(*b), 0, ""),
            Value::Int(i) => (2, *i, 0, ""),
            Value::Float(f) => {
                // Map floats onto a monotone integer key (IEEE754 total
                // order; same mapping as `column::f64_ord_key`).
                (3, crate::column::f64_ord_key(*f), 0, "")
            }
            Value::Date(d) => (4, *d, 0, ""),
            Value::Str(s) => (5, 0, 0, s.as_str()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality (used for grouping keys); distinct from SQL
        // equality, where NULL != NULL.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            // Int/Float cross-type equality keeps grouping keys stable when
            // an aggregate produces Float for an Int column.
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                *b == *a as f64 && b.fract() == 0.0
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-numeric comparisons order by numeric value so ORDER BY over a
        // mixed Int/Float column behaves sensibly.
        if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
            if let Some(o) = a.partial_cmp(&b) {
                if o != Ordering::Equal
                    || std::mem::discriminant(self) == std::mem::discriminant(other)
                {
                    return o;
                }
            }
        }
        self.total_key().cmp(&other.total_key())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", format_iso_date(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(4.5).sql_cmp(&Value::Int(4)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn date_string_comparison() {
        let d = Value::Date(crate::date::parse_iso_date("2021-05-01").unwrap());
        assert_eq!(
            d.sql_cmp(&Value::Str("2021-01-01".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Str("2021-05-01".into()).sql_eq(&d), Some(true));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(
            Value::Str("CA".into()).sql_cmp(&Value::Str("NY".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("CA".into()).sql_eq(&Value::Str("CA".into())),
            Some(true)
        );
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn grouping_equality_treats_int_float_uniformly() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Int(3));
        assert!(s.contains(&Value::Float(3.0)));
    }

    #[test]
    fn total_order_sorts_nulls_first() {
        let mut vals = [
            Value::Int(5),
            Value::Null,
            Value::Int(-1),
            Value::Str("z".into()),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-1));
    }

    #[test]
    fn display_round_trips_key_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        let d = crate::date::parse_iso_date("2019-01-25").unwrap();
        assert_eq!(Value::Date(d).to_string(), "2019-01-25");
    }

    #[test]
    fn as_f64_covers_numeric_types() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Date(10).as_f64(), Some(10.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn coerce_to_date() {
        assert_eq!(
            Value::Str("1970-01-02".into()).coerce_to_date(),
            Some(Value::Date(1))
        );
        assert_eq!(Value::Str("nope".into()).coerce_to_date(), None);
        assert_eq!(Value::Date(7).coerce_to_date(), Some(Value::Date(7)));
    }
}
