//! Columnar JSON wire encoding for result tables.
//!
//! The session service ships result tables to front-ends column-by-column
//! (one `values` array per schema column) rather than row-by-row: the
//! encoder walks each typed column once, the payload carries the column
//! name and declared type, and decoders can rebuild typed columns without
//! sniffing cell-by-cell. Emission lives here, next to the storage layer;
//! the matching parser lives in `pi2-core`'s `protocol` module, which owns
//! the dependency-free JSON reader.
//!
//! ## Cell encoding
//!
//! Cells whose runtime [`Value`] matches the column's declared
//! [`DataType`] use the natural JSON scalar (`int` → number, `float` →
//! number, `str` → string, `bool` → bool, `date` → ISO-8601 string,
//! SQL NULL → `null`). A cell that *disagrees* with its column type (the
//! `Mixed` escape hatch) or cannot be a JSON number (non-finite floats) is
//! wrapped in a one-key tag object — `{"i":…}`, `{"f":…}`, `{"s":…}`,
//! `{"d":…}` — so decoding is exact for every value the engine can
//! produce, never a guess.

use crate::date::format_iso_date;
use crate::table::Table;
use crate::types::DataType;
use crate::value::Value;
use std::fmt::Write;

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The wire name of a column type.
pub fn dtype_name(t: DataType) -> &'static str {
    match t {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
        DataType::Date => "date",
    }
}

/// The column type named on the wire, if recognised.
pub fn dtype_from_name(name: &str) -> Option<DataType> {
    Some(match name {
        "bool" => DataType::Bool,
        "int" => DataType::Int,
        "float" => DataType::Float,
        "str" => DataType::Str,
        "date" => DataType::Date,
        _ => return None,
    })
}

/// Append a float as a JSON number (Rust's shortest round-trip `Display`),
/// or a tagged string for the non-finite values JSON cannot carry.
fn push_float(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Append one cell under the column's declared type (see module docs).
fn push_cell(out: &mut String, v: &Value, dtype: DataType) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            // A plain integer in a float column would decode as a float.
            if dtype == DataType::Float {
                let _ = write!(out, "{{\"i\":{i}}}");
            } else {
                let _ = write!(out, "{i}");
            }
        }
        Value::Float(x) => {
            if dtype == DataType::Float && x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("{\"f\":");
                push_float(out, *x);
                out.push('}');
            }
        }
        Value::Str(s) => {
            // A plain string in a date column would decode as a date.
            if dtype == DataType::Date {
                let _ = write!(out, "{{\"s\":\"{}\"}}", json_escape(s));
            } else {
                let _ = write!(out, "\"{}\"", json_escape(s));
            }
        }
        Value::Date(d) => {
            if dtype == DataType::Date {
                let _ = write!(out, "\"{}\"", format_iso_date(*d));
            } else {
                let _ = write!(out, "{{\"d\":\"{}\"}}", format_iso_date(*d));
            }
        }
    }
}

/// Serialise a table to the columnar wire shape:
/// `{"rows":N,"columns":[{"name":…,"type":…,"values":[…]},…]}`.
///
/// Dictionary-encoded string columns keep their encoding on the wire:
/// instead of `"values"`, the column carries `"dict":[…]` (the shared
/// string dictionary) and `"codes":[…]` (one index per row, `null` for SQL
/// NULL), so repeated strings are shipped once. Decoders accept both
/// forms; see `pi2_core::protocol::table_from_json`.
pub fn table_to_json(t: &Table) -> String {
    let mut out = String::with_capacity(64 + t.num_rows() * t.num_columns() * 8);
    let _ = write!(out, "{{\"rows\":{},\"columns\":[", t.num_rows());
    for idx in 0..t.num_columns() {
        if idx > 0 {
            out.push(',');
        }
        let col = t.schema.column(idx).expect("schema column");
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"type\":\"{}\",",
            json_escape(&col.name),
            dtype_name(col.dtype)
        );
        if let Some((codes, dict, nulls)) = t.col(idx).dict_parts() {
            out.push_str("\"dict\":[");
            for (k, s) in dict.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(s));
            }
            out.push_str("],\"codes\":[");
            for (row, c) in codes.iter().enumerate() {
                if row > 0 {
                    out.push(',');
                }
                if nulls.is_null(row) {
                    out.push_str("null");
                } else {
                    let _ = write!(out, "{c}");
                }
            }
            out.push(']');
        } else {
            out.push_str("\"values\":[");
            for (row, v) in t.column_values(idx).enumerate() {
                if row > 0 {
                    out.push(',');
                }
                push_cell(&mut out, &v, col.dtype);
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_columns_use_plain_scalars() {
        let t = Table::from_rows(
            vec![("a", DataType::Int), ("s", DataType::Str)],
            vec![
                vec![Value::Int(1), Value::Str("x \"q\"".into())],
                vec![Value::Null, Value::Str("y".into())],
            ],
        )
        .unwrap();
        let j = table_to_json(&t);
        assert!(j.starts_with("{\"rows\":2,"), "{j}");
        assert!(j.contains("\"values\":[1,null]"), "{j}");
        assert!(j.contains("x \\\"q\\\""), "{j}");
    }

    #[test]
    fn mismatched_cells_are_tagged() {
        let t = Table::from_rows(
            vec![("f", DataType::Float), ("d", DataType::Date)],
            vec![vec![Value::Int(2), Value::Str("not a date".into())]],
        )
        .unwrap();
        let j = table_to_json(&t);
        assert!(j.contains("{\"i\":2}"), "int in float column tagged: {j}");
        assert!(
            j.contains("{\"s\":\"not a date\"}"),
            "str in date column tagged: {j}"
        );
    }

    #[test]
    fn dates_and_floats_round_trip_textually() {
        let t = Table::from_rows(
            vec![("d", DataType::Date), ("f", DataType::Float)],
            vec![vec![Value::Date(0), Value::Float(2.5)]],
        )
        .unwrap();
        let j = table_to_json(&t);
        assert!(j.contains("\"1970-01-01\""), "{j}");
        assert!(j.contains("2.5"), "{j}");
    }

    #[test]
    fn dict_columns_ship_dict_and_codes() {
        use crate::column::ColumnData;
        use crate::table::{Column, Schema};
        let mut col =
            ColumnData::strs_dict(vec!["NY".into(), "LA".into(), "NY".into(), "LA".into()]);
        col.push(Value::Null);
        let t = Table::from_columns(
            Schema::new(vec![Column::new("city", DataType::Str)]),
            vec![col],
        )
        .unwrap();
        let j = table_to_json(&t);
        assert_eq!(
            j,
            "{\"rows\":5,\"columns\":[{\"name\":\"city\",\"type\":\"str\",\
             \"dict\":[\"LA\",\"NY\"],\"codes\":[1,0,1,0,null]}]}"
        );
    }

    #[test]
    fn dtype_names_round_trip() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
        ] {
            assert_eq!(dtype_from_name(dtype_name(t)), Some(t));
        }
    }
}
