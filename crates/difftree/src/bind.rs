//! Query bindings (§3.2.4) and Difftree resolution (§3.1).
//!
//! A *binding* parameterises the choice nodes of a Difftree so that it
//! resolves to one concrete AST:
//!
//! * `ANY` binds an index into its children,
//! * `VAL` binds a literal value,
//! * `MULTI` binds a list of per-repetition sub-bindings,
//! * `SUBSET` binds an ordered set of child indices,
//! * the `PushOPT1` pair (`OptLink`/`CO-OPT`) binds presence through a shared
//!   group id.
//!
//! [`bind_query`] matches a concrete query against a Difftree (backtracking
//! over optional/repeated elements in child lists) and returns the binding
//! needed to express it; [`resolve`] applies a binding to produce the
//! choice-free tree. PI2 uses the round trip `resolve(Δ, bind_query(Δ, q)) ==
//! q` as its expressiveness guarantee: every transform rule application is
//! validated by re-binding all input queries.

use crate::gst::{DNode, NodeKind, SyntaxKind};
use pi2_sql::ast::Literal;
use std::collections::BTreeMap;
use std::fmt;

/// A parameterisation of one choice node.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// `ANY` / `OptLink` (1 = present) / `CoOpt` (informational).
    Index(usize),
    /// `VAL`.
    Value(Literal),
    /// `MULTI`: one sub-binding per repetition, each keyed by the ids of the
    /// choice nodes inside the template.
    List(Vec<BindingMap>),
    /// `SUBSET`: chosen child indices, ascending.
    Indices(Vec<usize>),
}

/// Bindings for all choice nodes of a Difftree, keyed by node id.
pub type BindingMap = BTreeMap<u32, Binding>;

/// Errors raised when a binding does not fit a Difftree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// `MissingBinding`.
    MissingBinding(u32),
    /// `BadBinding`.
    BadBinding(u32, String),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::MissingBinding(id) => {
                write!(f, "missing binding for choice node {id}")
            }
            ResolveError::BadBinding(id, m) => write!(f, "bad binding for node {id}: {m}"),
        }
    }
}

impl std::error::Error for ResolveError {}

// ---------------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------------

/// Match a concrete (choice-free) query GST against a Difftree, returning
/// the binding that expresses it, or `None` when the Difftree cannot.
pub fn bind_query(difftree: &DNode, concrete: &DNode) -> Option<BindingMap> {
    let mut map = BindingMap::new();
    if match_node(difftree, concrete, &mut map) {
        Some(map)
    } else {
        None
    }
}

/// Match one Difftree node against one concrete node.
fn match_node(delta: &DNode, conc: &DNode, out: &mut BindingMap) -> bool {
    match &delta.kind {
        NodeKind::Syntax(k) => {
            let NodeKind::Syntax(ck) = &conc.kind else {
                return false;
            };
            if k != ck {
                return false;
            }
            match_seq(&delta.children, &conc.children, out)
        }
        NodeKind::Any => {
            for (i, alt) in delta.children.iter().enumerate() {
                // Childless CoOpt group markers are metadata, not
                // alternatives.
                if matches!(alt.kind, NodeKind::CoOpt { .. }) && alt.children.is_empty() {
                    continue;
                }
                if alt.is_empty_node() {
                    if conc.is_empty_node() {
                        out.insert(delta.id, Binding::Index(i));
                        return true;
                    }
                    continue;
                }
                let mark = snapshot(out);
                if match_node(alt, conc, out) {
                    out.insert(delta.id, Binding::Index(i));
                    return true;
                }
                rollback(out, mark);
            }
            false
        }
        NodeKind::Val => {
            if let NodeKind::Syntax(SyntaxKind::Lit(lit)) = &conc.kind {
                out.insert(delta.id, Binding::Value(lit.0.clone()));
                true
            } else {
                false
            }
        }
        // MULTI/SUBSET only make sense inside child lists; as a direct
        // single-node match they must express exactly one element.
        NodeKind::Multi => {
            let Some(template) = delta.children.first() else {
                return false;
            };
            let mut sub = BindingMap::new();
            if match_node(template, conc, &mut sub) {
                out.insert(delta.id, Binding::List(vec![sub]));
                true
            } else {
                false
            }
        }
        NodeKind::Subset => {
            for (i, child) in delta.children.iter().enumerate() {
                let mark = snapshot(out);
                if match_node(child, conc, out) {
                    out.insert(delta.id, Binding::Indices(vec![i]));
                    return true;
                }
                rollback(out, mark);
            }
            false
        }
        NodeKind::CoOpt { .. } => {
            // Present: match the wrapped subtree (childless group markers
            // never match a concrete node).
            let Some(child) = delta.children.first() else {
                return false;
            };
            if match_node(child, conc, out) {
                out.insert(delta.id, Binding::Index(1));
                return true;
            }
            false
        }
    }
}

/// Ordered sequence matching with backtracking: `OPT` children may consume
/// zero or one concrete element, `MULTI` any number, `SUBSET` an ordered
/// subset, everything else exactly one.
fn match_seq(ds: &[DNode], cs: &[DNode], out: &mut BindingMap) -> bool {
    let Some((d, rest_d)) = ds.split_first() else {
        return cs.is_empty();
    };
    match &d.kind {
        NodeKind::Any => {
            for (i, alt) in d.children.iter().enumerate() {
                if matches!(alt.kind, NodeKind::CoOpt { .. }) && alt.children.is_empty() {
                    continue;
                }
                let mark = snapshot(out);
                if alt.is_empty_node() {
                    // Consume nothing.
                    if match_seq(rest_d, cs, out) {
                        out.insert(d.id, Binding::Index(i));
                        return true;
                    }
                } else if let Some((c0, rest_c)) = cs.split_first() {
                    if match_node(alt, c0, out) && match_seq(rest_d, rest_c, out) {
                        out.insert(d.id, Binding::Index(i));
                        return true;
                    }
                }
                rollback(out, mark);
            }
            false
        }
        NodeKind::Val => {
            let Some((c0, rest_c)) = cs.split_first() else {
                return false;
            };
            let NodeKind::Syntax(SyntaxKind::Lit(lit)) = &c0.kind else {
                return false;
            };
            if match_seq(rest_d, rest_c, out) {
                out.insert(d.id, Binding::Value(lit.0.clone()));
                true
            } else {
                false
            }
        }
        NodeKind::Multi => {
            let template = &d.children[0];
            // Greedy: consume as many elements as possible, backtracking down
            // to zero.
            let mut max_k = 0;
            let mut params: Vec<BindingMap> = Vec::new();
            for c in cs {
                let mut sub = BindingMap::new();
                if match_node(template, c, &mut sub) {
                    params.push(sub);
                    max_k += 1;
                } else {
                    break;
                }
            }
            for k in (0..=max_k).rev() {
                let mark = snapshot(out);
                if match_seq(rest_d, &cs[k..], out) {
                    out.insert(d.id, Binding::List(params[..k].to_vec()));
                    return true;
                }
                rollback(out, mark);
            }
            false
        }
        NodeKind::Subset => {
            // Try each ordered subset of d.children against a prefix of cs,
            // then continue with rest_d.
            fn try_subset(
                children: &[DNode],
                ci: usize,
                cs: &[DNode],
                rest_d: &[DNode],
                chosen: &mut Vec<usize>,
                subset_id: u32,
                out: &mut BindingMap,
            ) -> bool {
                // Option A: stop choosing; the rest of the sequence matches
                // the remaining concrete elements.
                {
                    let mark = snapshot(out);
                    if match_seq(rest_d, cs, out) {
                        out.insert(subset_id, Binding::Indices(chosen.clone()));
                        return true;
                    }
                    rollback(out, mark);
                }
                // Option B: choose a further child matching the next element.
                if let Some((c0, rest_c)) = cs.split_first() {
                    for j in ci..children.len() {
                        let mark = snapshot(out);
                        if match_node(&children[j], c0, out) {
                            chosen.push(j);
                            if try_subset(children, j + 1, rest_c, rest_d, chosen, subset_id, out) {
                                return true;
                            }
                            chosen.pop();
                        }
                        rollback(out, mark);
                    }
                }
                false
            }
            let mut chosen = Vec::new();
            try_subset(&d.children, 0, cs, rest_d, &mut chosen, d.id, out)
        }
        NodeKind::CoOpt { group } => {
            let Some(child) = d.children.first() else {
                // A bare marker consumes nothing.
                return match_seq(rest_d, cs, out);
            };
            // Present: consume one element.
            if let Some((c0, rest_c)) = cs.split_first() {
                let mark = snapshot(out);
                if match_node(child, c0, out) && match_seq(rest_d, rest_c, out) {
                    out.insert(d.id, Binding::Index(1));
                    return true;
                }
                rollback(out, mark);
            }
            // Absent: consume nothing, and record the linked OPTs inside the
            // subtree as "off" so their query bindings reflect this query.
            let mark = snapshot(out);
            if match_seq(rest_d, cs, out) {
                out.insert(d.id, Binding::Index(0));
                bind_linked_opts_absent(child, *group, out);
                return true;
            }
            rollback(out, mark);
            false
        }
        NodeKind::Syntax(_) => {
            let Some((c0, rest_c)) = cs.split_first() else {
                return false;
            };
            let mark = snapshot(out);
            if match_node(d, c0, out) && match_seq(rest_d, rest_c, out) {
                true
            } else {
                rollback(out, mark);
                false
            }
        }
    }
}

/// When a `CO-OPT` subtree is matched absent, bind each linked OPT inside it
/// (ANY nodes carrying the same group marker) to its `Empty` alternative so
/// downstream widgets see the toggle's "off" state.
fn bind_linked_opts_absent(node: &DNode, group: u32, out: &mut BindingMap) {
    if let NodeKind::Any = node.kind {
        if opt_group(node) == Some(group) {
            if let Some(empty_idx) = node.children.iter().position(|c| c.is_empty_node()) {
                out.entry(node.id).or_insert(Binding::Index(empty_idx));
            }
        }
    }
    for c in &node.children {
        bind_linked_opts_absent(c, group, out);
    }
}

/// Cheap rollback for the backtracking matcher: remember the key set size
/// and inserted keys. Because ids are unique per node and each node inserts
/// at most once, removing keys inserted after the snapshot is sufficient.
fn snapshot(map: &BindingMap) -> Vec<u32> {
    map.keys().copied().collect()
}

fn rollback(map: &mut BindingMap, keys_before: Vec<u32>) {
    let keep: std::collections::BTreeSet<u32> = keys_before.into_iter().collect();
    map.retain(|k, _| keep.contains(k));
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

/// Apply a binding to a Difftree, producing a choice-free GST.
pub fn resolve(node: &DNode, map: &BindingMap) -> Result<DNode, ResolveError> {
    // Pre-pass: OPT-link presence by group (PushOPT1 pairs).
    let mut presence: BTreeMap<u32, bool> = BTreeMap::new();
    collect_presence(node, map, &mut presence)?;
    let mut out = Vec::with_capacity(1);
    resolve_into(node, map, &presence, &mut out)?;
    match out.len() {
        1 => Ok(out.pop().unwrap()),
        n => Err(ResolveError::BadBinding(
            node.id,
            format!("root resolved to {n} nodes"),
        )),
    }
}

/// Find each `CoOpt` group's presence from the binding of the ANY node that
/// carries the matching group marker child. An unbound linked OPT counts as
/// absent: it happens when the whole `CO-OPT` subtree (which contains the
/// OPT) was matched absent, so nothing inside it was bound.
fn collect_presence(
    node: &DNode,
    map: &BindingMap,
    out: &mut BTreeMap<u32, bool>,
) -> Result<(), ResolveError> {
    if let NodeKind::Any = node.kind {
        if let Some(group) = opt_group(node) {
            let present = match map.get(&node.id) {
                Some(Binding::Index(i)) => node
                    .children
                    .get(*i)
                    .map(|c| !c.is_empty_node())
                    .unwrap_or(false),
                _ => false,
            };
            out.insert(group, present);
        }
    }
    for c in &node.children {
        collect_presence(c, map, out)?;
    }
    Ok(())
}

/// If this ANY is a `PushOPT1` link (its Empty child is tagged by being the
/// sibling of a `CoOpt` with the same group), return the group id. We encode
/// the link by storing the group id on the ANY node itself via a dedicated
/// child marker: a `CoOpt` node with no children.
fn opt_group(node: &DNode) -> Option<u32> {
    node.children.iter().find_map(|c| match c.kind {
        NodeKind::CoOpt { group } if c.children.is_empty() => Some(group),
        _ => None,
    })
}

fn resolve_into(
    node: &DNode,
    map: &BindingMap,
    presence: &BTreeMap<u32, bool>,
    out: &mut Vec<DNode>,
) -> Result<(), ResolveError> {
    match &node.kind {
        NodeKind::Syntax(SyntaxKind::Empty) => Ok(()), // empties vanish
        NodeKind::Syntax(kind) => {
            let mut children = Vec::with_capacity(node.children.len());
            for c in &node.children {
                resolve_into(c, map, presence, &mut children)?;
            }
            out.push(DNode::syntax(kind.clone(), children));
            Ok(())
        }
        NodeKind::Any => {
            let Some(Binding::Index(i)) = map.get(&node.id) else {
                return Err(ResolveError::MissingBinding(node.id));
            };
            let child = node.children.get(*i).ok_or_else(|| {
                ResolveError::BadBinding(node.id, format!("index {i} out of range"))
            })?;
            // Group-marker CoOpt children are metadata, never resolvable.
            if matches!(child.kind, NodeKind::CoOpt { .. }) && child.children.is_empty() {
                return Err(ResolveError::BadBinding(node.id, "bound to marker".into()));
            }
            resolve_into(child, map, presence, out)
        }
        NodeKind::Val => {
            let Some(Binding::Value(lit)) = map.get(&node.id) else {
                return Err(ResolveError::MissingBinding(node.id));
            };
            out.push(DNode::leaf(SyntaxKind::Lit(crate::gst::LitVal(
                lit.clone(),
            ))));
            Ok(())
        }
        NodeKind::Multi => {
            let Some(Binding::List(params)) = map.get(&node.id) else {
                return Err(ResolveError::MissingBinding(node.id));
            };
            let template = &node.children[0];
            for p in params {
                resolve_into(template, p, presence, out)?;
            }
            Ok(())
        }
        NodeKind::Subset => {
            let Some(Binding::Indices(indices)) = map.get(&node.id) else {
                return Err(ResolveError::MissingBinding(node.id));
            };
            for &i in indices {
                let child = node.children.get(i).ok_or_else(|| {
                    ResolveError::BadBinding(node.id, format!("index {i} out of range"))
                })?;
                resolve_into(child, map, presence, out)?;
            }
            Ok(())
        }
        NodeKind::CoOpt { group } => {
            if node.children.is_empty() {
                // A bare group marker inside an ANY: resolves to nothing.
                return Ok(());
            }
            let present = presence.get(group).copied().unwrap_or_else(|| {
                // No linked OPT found: fall back to this node's own binding.
                matches!(map.get(&node.id), Some(Binding::Index(1)))
            });
            if present {
                resolve_into(&node.children[0], map, presence, out)
            } else {
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gst::{lower_query, raise_query, LitVal};
    use pi2_sql::parse_query;

    fn gst(sql: &str) -> DNode {
        lower_query(&parse_query(sql).unwrap())
    }

    /// Assert the Difftree expresses the query and the binding round-trips.
    fn assert_expresses(delta: &DNode, sql: &str) -> BindingMap {
        let conc = gst(sql);
        let map =
            bind_query(delta, &conc).unwrap_or_else(|| panic!("difftree does not express {sql}"));
        let resolved = resolve(delta, &map).unwrap();
        assert_eq!(
            raise_query(&resolved).unwrap(),
            parse_query(sql).unwrap(),
            "resolution disagreed with the bound query"
        );
        map
    }

    /// ANY over two whole queries expresses both.
    #[test]
    fn any_of_two_queries() {
        let q1 = gst("SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p");
        let q2 = gst("SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p");
        let mut delta = DNode::any(vec![q1, q2]);
        delta.renumber(0);
        let m1 = assert_expresses(&delta, "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p");
        assert_eq!(m1.get(&delta.id), Some(&Binding::Index(0)));
        let m2 = assert_expresses(&delta, "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p");
        assert_eq!(m2.get(&delta.id), Some(&Binding::Index(1)));
        assert!(bind_query(&delta, &gst("SELECT a FROM T")).is_none());
    }

    /// VAL in a literal position expresses any literal (Figure 3c).
    #[test]
    fn val_generalises_literals() {
        let mut delta = gst("SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p");
        // Replace the literal under Where with VAL.
        let lit = DNode::leaf(SyntaxKind::Lit(LitVal(pi2_sql::ast::Literal::Int(1))));
        let where_ = &mut delta.children[3];
        where_.children[0].children[1] = DNode::val(vec![lit]);
        delta.renumber(0);

        let m = assert_expresses(&delta, "SELECT p, count(*) FROM T WHERE a = 5 GROUP BY p");
        let val_id = delta.choice_nodes()[0].id;
        assert_eq!(
            m.get(&val_id),
            Some(&Binding::Value(pi2_sql::ast::Literal::Int(5)))
        );
        // Still cannot express structurally different queries.
        assert!(bind_query(&delta, &gst("SELECT p FROM T WHERE a = 5")).is_none());
    }

    /// OPT over a WHERE conjunct makes the predicate optional.
    #[test]
    fn opt_makes_conjunct_optional() {
        let mut delta = gst("SELECT p FROM T WHERE a = 1 AND b = 2");
        let where_ = &mut delta.children[3];
        let pred = where_.children.remove(1);
        where_.children.push(DNode::any(vec![pred, DNode::empty()]));
        delta.renumber(0);

        assert_expresses(&delta, "SELECT p FROM T WHERE a = 1 AND b = 2");
        assert_expresses(&delta, "SELECT p FROM T WHERE a = 1");
        assert!(bind_query(&delta, &gst("SELECT p FROM T WHERE b = 2")).is_none());
    }

    /// MULTI over select items expresses any repetition (Figure 7b).
    #[test]
    fn multi_expresses_repetition() {
        let mut delta = gst("SELECT a FROM T");
        let item = delta.children[1].children.remove(0);
        // Template: SELECT item choosing between columns a and b.
        let col_a = item.children[0].clone();
        let col_b = DNode::leaf(SyntaxKind::ColumnRef {
            table: None,
            column: "b".into(),
        });
        let template = DNode::syntax(SyntaxKind::SelectItem, vec![DNode::any(vec![col_a, col_b])]);
        delta.children[1].children.push(DNode::multi(template));
        delta.renumber(0);

        assert_expresses(&delta, "SELECT a FROM T");
        assert_expresses(&delta, "SELECT a, a FROM T");
        let m = assert_expresses(&delta, "SELECT b, a, b FROM T");
        let multi_id = delta.choice_nodes()[0].id;
        let Some(Binding::List(params)) = m.get(&multi_id) else {
            panic!()
        };
        assert_eq!(params.len(), 3);
        assert!(bind_query(&delta, &gst("SELECT c FROM T")).is_none());
    }

    /// SUBSET over WHERE conjuncts expresses any ordered subset.
    #[test]
    fn subset_expresses_ordered_subsets() {
        let mut delta = gst("SELECT p FROM T WHERE a = 1 AND b = 2 AND c = 3");
        let where_ = &mut delta.children[3];
        let conjuncts: Vec<DNode> = where_.children.drain(..).collect();
        where_.children.push(DNode::subset(conjuncts));
        delta.renumber(0);

        assert_expresses(&delta, "SELECT p FROM T WHERE a = 1 AND b = 2 AND c = 3");
        assert_expresses(&delta, "SELECT p FROM T WHERE a = 1 AND c = 3");
        assert_expresses(&delta, "SELECT p FROM T");
        let m = assert_expresses(&delta, "SELECT p FROM T WHERE b = 2");
        let subset_id = delta.choice_nodes()[0].id;
        assert_eq!(m.get(&subset_id), Some(&Binding::Indices(vec![1])));
        // Out-of-order subsets are not expressible (sep order is fixed).
        assert!(bind_query(&delta, &gst("SELECT p FROM T WHERE c = 3 AND a = 1")).is_none());
    }

    /// Nested choices: ANY inside an OPT'd conjunct.
    #[test]
    fn nested_choice_nodes() {
        let mut delta = gst("SELECT p FROM T WHERE a = 1");
        let where_ = &mut delta.children[3];
        let mut pred = where_.children.remove(0);
        // a = ANY(1, 2)
        let lit1 = pred.children[1].clone();
        let lit2 = DNode::leaf(SyntaxKind::Lit(LitVal(pi2_sql::ast::Literal::Int(2))));
        pred.children[1] = DNode::any(vec![lit1, lit2]);
        where_.children.push(DNode::any(vec![pred, DNode::empty()]));
        delta.renumber(0);

        assert_expresses(&delta, "SELECT p FROM T WHERE a = 1");
        assert_expresses(&delta, "SELECT p FROM T WHERE a = 2");
        assert_expresses(&delta, "SELECT p FROM T");
        assert!(bind_query(&delta, &gst("SELECT p FROM T WHERE a = 3")).is_none());
    }

    #[test]
    fn missing_binding_is_an_error() {
        let mut delta = DNode::any(vec![gst("SELECT a FROM T")]);
        delta.renumber(0);
        let empty = BindingMap::new();
        assert_eq!(
            resolve(&delta, &empty),
            Err(ResolveError::MissingBinding(delta.id))
        );
    }

    #[test]
    fn out_of_range_binding_is_an_error() {
        let mut delta = DNode::any(vec![gst("SELECT a FROM T")]);
        delta.renumber(0);
        let mut map = BindingMap::new();
        map.insert(delta.id, Binding::Index(5));
        assert!(matches!(
            resolve(&delta, &map),
            Err(ResolveError::BadBinding(_, _))
        ));
    }

    /// The PushOPT1 pair: an OPT link controls a CO-OPT'd subtree elsewhere.
    #[test]
    fn co_opt_presence_follows_linked_opt() {
        // Difftree for: SELECT a FROM T [WHERE x = 1 AND y = 2] where both
        // conjuncts exist only together. Model: the first conjunct is an
        // OPT carrying group marker 7; the second is CoOpt{7}.
        let mut delta = gst("SELECT a FROM T WHERE x = 1 AND y = 2");
        let where_ = &mut delta.children[3];
        let second = where_.children.remove(1);
        let first = where_.children.remove(0);
        let marker = DNode {
            id: 0,
            kind: NodeKind::CoOpt { group: 7 },
            children: vec![],
        };
        let opt = DNode::any(vec![first, DNode::empty(), marker]);
        let coopt = DNode {
            id: 0,
            kind: NodeKind::CoOpt { group: 7 },
            children: vec![second],
        };
        where_.children.push(opt);
        where_.children.push(coopt);
        delta.renumber(0);

        assert_expresses(&delta, "SELECT a FROM T WHERE x = 1 AND y = 2");
        assert_expresses(&delta, "SELECT a FROM T");
    }

    /// bind → resolve round trip over a batch of real workload queries.
    #[test]
    fn identity_binding_round_trips() {
        for sql in [
            "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60",
            "SELECT date, price FROM sp500",
            "SELECT hour, count(*) FROM flights GROUP BY hour",
            "SELECT DISTINCT ra, dec FROM specObj WHERE ra BETWEEN 213.2 AND 213.6",
            "SELECT date, cases FROM covid WHERE state = 'CA'",
        ] {
            let mut delta = gst(sql);
            delta.renumber(0);
            let map = bind_query(&delta, &gst(sql)).unwrap();
            assert!(map.is_empty(), "choice-free trees need no bindings");
            let resolved = resolve(&delta, &map).unwrap();
            assert_eq!(raise_query(&resolved).unwrap(), parse_query(sql).unwrap());
        }
    }
}
