//! The search state: a set of Difftrees plus the machinery to check that it
//! still expresses every input query.
//!
//! The paper's guarantee (§6.1): "All rules are guaranteed to preserve or
//! increase the expressiveness of the Difftrees; since the initial set of
//! Difftrees directly corresponds to the input queries, any reachable set
//! of Difftrees can also express those queries." We enforce this
//! *operationally*: every candidate transform is validated by re-binding all
//! input queries ([`Forest::bind_all`]), and resolutions are checked to
//! reproduce the bound query exactly.
//!
//! # State representation
//!
//! A [`Forest`] holds its Difftrees as [`Arc<Tree>`]: cloning a forest (the
//! innermost MCTS operation) bumps reference counts instead of copying
//! nodes, and a transform rule copies only the tree it rewrites while every
//! other tree stays shared with the parent state. Each [`Tree`] carries a
//! precomputed 64-bit structural fingerprint (ids excluded), computed once
//! at construction; [`Forest::key`] combines them into a [`ForestKey`] used
//! by the search's transposition table and by the per-(tree, query) binding
//! cache — no tree is ever re-hashed on lookup.
//!
//! Node ids are **tree-local DFS positions**: every tree root has id 0 and
//! ids follow pre-order within the tree. Bindings, actions, and type maps
//! are therefore stable under edits to *sibling* trees. Layers that need
//! forest-global ids (interface covers, exact-cover bookkeeping) offset
//! local ids by [`Forest::base`].

use crate::bind::{bind_query, resolve, Binding, BindingMap};
use crate::gst::{lower_query, DNode};
use crate::schema::{result_schema, ResultSchema};
use pi2_data::Catalog;
use pi2_engine::{analyze_query, QueryInfo};
use pi2_sql::ast::Query;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Shared, immutable context for a generation session: the input queries and
/// the catalogue, plus per-query artifacts that are pure functions of the
/// workload (lowered GSTs, GST fingerprints, analyzed schema info) so the
/// search never recomputes them per state.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The input queries.
    pub queries: Vec<Query>,
    /// The lowered GST of each query.
    pub gsts: Vec<DNode>,
    /// Structural fingerprint of each GST (binding-cache keys).
    pub gst_fps: Vec<u64>,
    /// Analyzed schema info per query; `None` when analysis fails.
    pub infos: Vec<Option<QueryInfo>>,
    /// The catalogue the queries run against.
    pub catalog: Catalog,
}

impl Workload {
    /// Build a workload: lower every query and precompute its fingerprint
    /// and schema analysis.
    pub fn new(queries: Vec<Query>, catalog: Catalog) -> Workload {
        let gsts: Vec<DNode> = queries.iter().map(lower_query).collect();
        let gst_fps = gsts.iter().map(structural_fingerprint).collect();
        let infos = queries
            .iter()
            .map(|q| analyze_query(q, &catalog).ok())
            .collect();
        Workload {
            queries,
            gsts,
            gst_fps,
            infos,
            catalog,
        }
    }

    /// Number of input queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Per-query assignment: which tree expresses it, with which binding.
/// Binding keys are **local** to the assigned tree (root id 0).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Index of the tree expressing the query.
    pub tree: usize,
    /// The query's binding over that tree's choice nodes (tree-local ids).
    pub binding: BindingMap,
}

/// One Difftree with its cached structural fingerprint and DFS-local ids.
///
/// `Tree` is immutable once built: construction renumbers the root to
/// tree-local DFS ids (root = 0) and fingerprints the structure. It derefs
/// to [`DNode`], so read-only tree traversals work unchanged.
#[derive(Debug)]
pub struct Tree {
    root: DNode,
    fp: u64,
    size: u32,
}

impl Tree {
    /// Seal a node as a tree: assign DFS-local ids and fingerprint it.
    pub fn new(mut root: DNode) -> Tree {
        let size = root.renumber(0);
        let fp = structural_fingerprint(&root);
        Tree { root, fp, size }
    }

    /// The 64-bit structural fingerprint (ids excluded).
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The tree's root node.
    pub fn node(&self) -> &DNode {
        &self.root
    }

    /// An owned copy of the root node (for building derived trees).
    pub fn to_dnode(&self) -> DNode {
        self.root.clone()
    }

    /// Node count (cached).
    pub fn len(&self) -> u32 {
        self.size
    }

    /// Whether the tree is empty (never true: a tree has ≥ 1 node).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

impl Deref for Tree {
    type Target = DNode;

    fn deref(&self) -> &DNode {
        &self.root
    }
}

impl PartialEq for Tree {
    fn eq(&self, other: &Self) -> bool {
        self.fp == other.fp && self.size == other.size && self.root == other.root
    }
}

impl Eq for Tree {}

impl Hash for Tree {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fp);
    }
}

/// Deterministic structural fingerprint of a subtree: hashes kinds and
/// shape, ignores ids. Equal trees always collide; unequal trees collide
/// with probability ~2⁻⁶⁴ (all fingerprint consumers also key on size, and
/// exact-correctness paths fall back to structural equality).
pub fn structural_fingerprint(node: &DNode) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

/// The transposition-table key of a forest: an order-sensitive combination
/// of the per-tree fingerprints plus the total node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ForestKey {
    /// Combined structural hash across trees (order-sensitive).
    pub hash: u64,
    /// Total node count across trees.
    pub size: u32,
}

impl ForestKey {
    /// A stable 64-bit seed derived from the key (reward-sampling RNG).
    pub fn seed(&self) -> u64 {
        self.hash ^ ((self.size as u64) << 32)
    }
}

/// A set of Difftrees — one MCTS search state. Trees are structurally
/// shared ([`Arc`]); cloning a forest is O(#trees).
#[derive(Debug, Clone)]
pub struct Forest {
    /// The trees. Always constructed through [`Forest::new`] /
    /// [`Forest::from_trees`], which seal fingerprints.
    pub trees: Vec<Arc<Tree>>,
}

impl PartialEq for Forest {
    fn eq(&self, other: &Self) -> bool {
        self.trees.len() == other.trees.len()
            && self
                .trees
                .iter()
                .zip(&other.trees)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl Eq for Forest {}

impl Hash for Forest {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.key().hash);
    }
}

impl Forest {
    /// Seal a list of root nodes into a forest.
    pub fn new(trees: Vec<DNode>) -> Forest {
        Forest {
            trees: trees.into_iter().map(|t| Arc::new(Tree::new(t))).collect(),
        }
    }

    /// Build from already-sealed trees (structural sharing across states).
    pub fn from_trees(trees: Vec<Arc<Tree>>) -> Forest {
        Forest { trees }
    }

    /// Initial state: one (choice-free) Difftree per input query.
    pub fn from_workload(w: &Workload) -> Forest {
        Forest::new(w.gsts.clone())
    }

    /// The forest's transposition key (O(#trees), no node hashing).
    pub fn key(&self) -> ForestKey {
        let mut hash: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut size: u32 = 0;
        for t in &self.trees {
            hash = (hash.rotate_left(7) ^ t.fp).wrapping_mul(0x100_0000_01b3);
            size += t.size;
        }
        ForestKey { hash, size }
    }

    /// Global id of tree `i`'s root: the sum of preceding tree sizes.
    /// Forest-global node ids are `base(tree) + local id`.
    pub fn base(&self, i: usize) -> u32 {
        self.trees[..i].iter().map(|t| t.size).sum()
    }

    /// Map a forest-global node id back to `(tree index, local id)`.
    pub fn locate(&self, global: u32) -> Option<(usize, u32)> {
        let mut base = 0u32;
        for (i, t) in self.trees.iter().enumerate() {
            if global < base + t.size {
                return Some((i, global - base));
            }
            base += t.size;
        }
        None
    }

    /// The node with forest-global id `global`, if it lies in tree `tree`.
    pub fn node_in_tree(&self, tree: usize, global: u32) -> Option<&DNode> {
        let base = self.base(tree);
        let local = global.checked_sub(base)?;
        if local >= self.trees.get(tree)?.size {
            return None;
        }
        self.trees[tree].find(local)
    }

    /// Total node count across trees (cached per tree).
    pub fn size(&self) -> usize {
        self.trees.iter().map(|t| t.size as usize).sum()
    }

    /// Total number of choice nodes.
    pub fn choice_count(&self) -> usize {
        self.trees.iter().map(|t| t.choice_nodes().len()).sum()
    }

    /// Bind every input query to some tree. Returns `None` if any query is
    /// inexpressible (the candidate state violates the §6.1 guarantee).
    /// Bindings are verified by resolving and comparing to the original.
    ///
    /// Results are memoized per (tree fingerprint, query fingerprint) in a
    /// thread-local cache: search states share most of their trees, ids are
    /// tree-local, and fingerprints are precomputed, so a cache probe costs
    /// two u64 compares instead of re-hashing the tree.
    pub fn bind_all(&self, w: &Workload) -> Option<Vec<Assignment>> {
        let mut out = Vec::with_capacity(w.gsts.len());
        'queries: for (qi, gst) in w.gsts.iter().enumerate() {
            for (ti, tree) in self.trees.iter().enumerate() {
                if let Some(binding) = bind_tree_cached(tree, gst, w.gst_fps[qi]) {
                    out.push(Assignment { tree: ti, binding });
                    continue 'queries;
                }
            }
            return None;
        }
        Some(out)
    }

    /// §3.2.4 query bindings: for each node of `tree_idx`, the set of
    /// distinct bindings needed across all input queries (descending into
    /// `MULTI` sub-bindings). Keys are tree-local ids.
    pub fn node_bindings(
        &self,
        tree_idx: usize,
        assignments: &[Assignment],
    ) -> HashMap<u32, Vec<Binding>> {
        let mut out: HashMap<u32, Vec<Binding>> = HashMap::new();
        for a in assignments {
            if a.tree != tree_idx {
                continue;
            }
            accumulate_bindings(&a.binding, &mut out);
        }
        out
    }

    /// Queries (by index) expressed by each tree under `assignments`.
    pub fn queries_per_tree(&self, assignments: &[Assignment]) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.trees.len()];
        for (qi, a) in assignments.iter().enumerate() {
            out[a.tree].push(qi);
        }
        out
    }

    /// The resolved (typed) queries a tree expresses for the input workload.
    ///
    /// Binding verification guarantees `resolve(tree, binding)` reproduces
    /// the bound query *exactly*, so this is the identity on the workload's
    /// queries — no re-resolution or re-raising per state.
    pub fn resolved_queries(
        &self,
        tree_idx: usize,
        w: &Workload,
        assignments: &[Assignment],
    ) -> Vec<(usize, Query)> {
        assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tree == tree_idx)
            .map(|(qi, _)| (qi, w.queries[qi].clone()))
            .collect()
    }

    /// Analyzed schema info for every input query a tree expresses
    /// (precomputed once per workload).
    pub fn tree_infos(
        &self,
        tree_idx: usize,
        w: &Workload,
        assignments: &[Assignment],
    ) -> Vec<QueryInfo> {
        assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tree == tree_idx)
            .filter_map(|(qi, _)| w.infos[qi].clone())
            .collect()
    }

    /// §3.2.2 result schema of a tree; `None` when undefined (not
    /// union-compatible) or when the tree expresses no input query.
    pub fn tree_result_schema(
        &self,
        tree_idx: usize,
        w: &Workload,
        assignments: &[Assignment],
    ) -> Option<ResultSchema> {
        let infos = self.tree_infos(tree_idx, w, assignments);
        if infos.is_empty() {
            return None;
        }
        result_schema(&infos)
    }
}

/// Cached, verified bind of one query against one sealed tree. Bindings are
/// tree-local (the tree root is id 0), so cache entries transfer between
/// forests sharing the tree without any id shifting. The memo is
/// process-global and lock-sharded ([`pi2_data::ShardedMemo`]): binds are
/// pure functions of (tree, query), so search workers share hits.
fn bind_tree_cached(tree: &Tree, gst: &DNode, gst_fp: u64) -> Option<BindingMap> {
    use pi2_data::ShardedMemo;
    use std::sync::OnceLock;
    /// (tree fp, tree size, query gst fp) → verified tree-local binding.
    static BIND_CACHE: OnceLock<ShardedMemo<(u64, u32, u64), Option<BindingMap>>> = OnceLock::new();
    let cache =
        BIND_CACHE.get_or_init(|| ShardedMemo::new(200_000 / pi2_data::memo::DEFAULT_SHARDS));
    let key = (tree.fp, tree.size, gst_fp);
    cache.get_or_insert_with(&key, || {
        bind_query(tree.node(), gst).and_then(|binding| {
            // Verify the round trip: resolve must reproduce the query.
            match resolve(tree.node(), &binding) {
                Ok(resolved) if &resolved == gst => Some(binding),
                _ => None,
            }
        })
    })
}

/// Merge one query's binding map into the per-node accumulation, recursing
/// into `MULTI` parameterisations.
fn accumulate_bindings(map: &BindingMap, out: &mut HashMap<u32, Vec<Binding>>) {
    for (id, b) in map {
        if let Binding::List(params) = b {
            for p in params {
                accumulate_bindings(p, out);
            }
        }
        let entry = out.entry(*id).or_default();
        if !entry.contains(b) {
            entry.push(b.clone());
        }
    }
}

/// Convenience for tests and examples: does this forest express the query?
pub fn expresses(forest: &Forest, query: &Query) -> bool {
    let gst = lower_query(query);
    forest.trees.iter().any(|t| {
        bind_query(t.node(), &gst)
            .and_then(|b| resolve(t.node(), &b).ok())
            .is_some_and(|r| r == gst)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gst::SyntaxKind;
    use pi2_data::{DataType, Table, Value};
    use pi2_sql::parse_query;

    fn workload(sqls: &[&str]) -> Workload {
        let mut catalog = Catalog::new();
        let t = Table::from_rows(
            vec![
                ("p", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Int),
            ],
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(1), Value::Int(20)],
                vec![Value::Int(3), Value::Int(2), Value::Int(30)],
            ],
        )
        .unwrap();
        catalog.add_table("T", t, vec!["p"]);
        let queries = sqls.iter().map(|s| parse_query(s).unwrap()).collect();
        Workload::new(queries, catalog)
    }

    #[test]
    fn initial_forest_expresses_all_inputs() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
            "SELECT a, count(*) FROM T GROUP BY a",
        ]);
        let f = Forest::from_workload(&w);
        assert_eq!(f.trees.len(), 3);
        let assignments = f.bind_all(&w).unwrap();
        assert_eq!(assignments.len(), 3);
        // Identity assignment: query i → tree i.
        for (i, a) in assignments.iter().enumerate() {
            assert_eq!(a.tree, i);
            assert!(a.binding.is_empty());
        }
    }

    #[test]
    fn merged_forest_reassigns_queries() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
        ]);
        let merged = Forest::new(vec![DNode::any(w.gsts.clone())]);
        let assignments = merged.bind_all(&w).unwrap();
        assert_eq!(assignments[0].tree, 0);
        assert_eq!(assignments[1].tree, 0);
        assert_ne!(assignments[0].binding, assignments[1].binding);
        let per_tree = merged.queries_per_tree(&assignments);
        assert_eq!(per_tree, vec![vec![0, 1]]);
    }

    #[test]
    fn binding_failure_detected() {
        let w = workload(&["SELECT p FROM T", "SELECT a FROM T"]);
        // A forest holding only the first query cannot express the second.
        let f = Forest::new(vec![w.gsts[0].clone()]);
        assert!(f.bind_all(&w).is_none());
    }

    #[test]
    fn node_bindings_union_across_queries() {
        let w = workload(&["SELECT p FROM T WHERE a = 1", "SELECT p FROM T WHERE a = 2"]);
        // Difftree: SELECT p FROM T WHERE a = VAL(1)
        let mut tree = w.gsts[0].clone();
        let pred = &mut tree.children[3].children[0];
        let lit = pred.children[1].clone();
        pred.children[1] = DNode::val(vec![lit]);
        let f = Forest::new(vec![tree]);
        let assignments = f.bind_all(&w).unwrap();
        let val_id = f.trees[0].choice_nodes()[0].id;
        let nb = f.node_bindings(0, &assignments);
        let vals = nb.get(&val_id).unwrap();
        assert_eq!(vals.len(), 2, "VAL should accumulate both literals");
    }

    #[test]
    fn result_schema_of_merged_tree() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT a, count(*) FROM T GROUP BY a",
        ]);
        let merged = Forest::new(vec![DNode::any(w.gsts.clone())]);
        let assignments = merged.bind_all(&w).unwrap();
        let rs = merged.tree_result_schema(0, &w, &assignments).unwrap();
        assert_eq!(rs.cols.len(), 2);
        assert_eq!(rs.cols[0].display_name(), "p∪a");
    }

    #[test]
    fn expresses_helper() {
        let w = workload(&["SELECT p FROM T WHERE a = 1"]);
        let f = Forest::from_workload(&w);
        assert!(expresses(
            &f,
            &parse_query("SELECT p FROM T WHERE a = 1").unwrap()
        ));
        assert!(!expresses(
            &f,
            &parse_query("SELECT p FROM T WHERE a = 2").unwrap()
        ));
    }

    #[test]
    fn forest_key_is_structural() {
        let w = workload(&["SELECT p FROM T"]);
        let f1 = Forest::from_workload(&w);
        let f2 = Forest::from_workload(&w);
        assert_eq!(f1.key(), f2.key());
        assert_eq!(f1, f2);
        // Different structure → different key (with overwhelming probability).
        let w2 = workload(&["SELECT a FROM T"]);
        let f3 = Forest::from_workload(&w2);
        assert_ne!(f1.key(), f3.key());
    }

    #[test]
    fn forest_clone_shares_trees() {
        let w = workload(&["SELECT p FROM T", "SELECT a FROM T"]);
        let f = Forest::from_workload(&w);
        let g = f.clone();
        for (a, b) in f.trees.iter().zip(&g.trees) {
            assert!(Arc::ptr_eq(a, b), "clone must share tree allocations");
        }
    }

    #[test]
    fn bases_and_locate_round_trip() {
        let w = workload(&["SELECT p FROM T WHERE a = 1", "SELECT a FROM T"]);
        let f = Forest::from_workload(&w);
        assert_eq!(f.base(0), 0);
        assert_eq!(f.base(1), f.trees[0].len());
        let total = f.size() as u32;
        for g in 0..total {
            let (t, local) = f.locate(g).unwrap();
            assert_eq!(f.base(t) + local, g);
            assert_eq!(f.trees[t].find(local).unwrap().id, local);
        }
        assert!(f.locate(total).is_none());
        // node_in_tree rejects ids outside the tree's range.
        assert!(f.node_in_tree(0, f.base(1)).is_none());
        assert!(f.node_in_tree(1, 0).is_none());
    }

    #[test]
    fn size_and_choice_count() {
        let w = workload(&["SELECT p FROM T WHERE a = 1"]);
        let f = Forest::from_workload(&w);
        assert!(f.size() > 5);
        assert_eq!(f.choice_count(), 0);
        let mut tree = f.trees[0].to_dnode();
        let pred = &mut tree.children[3].children[0];
        let lit = pred.children[1].clone();
        pred.children[1] = DNode::val(vec![lit]);
        let f = Forest::new(vec![tree]);
        assert_eq!(f.choice_count(), 1);
    }

    #[test]
    fn resolved_queries_round_trip() {
        let w = workload(&["SELECT p FROM T WHERE a = 1", "SELECT p FROM T WHERE a = 2"]);
        let mut tree = w.gsts[0].clone();
        let pred = &mut tree.children[3].children[0];
        let lit = pred.children[1].clone();
        pred.children[1] = DNode::val(vec![lit]);
        let f = Forest::new(vec![tree]);
        let assignments = f.bind_all(&w).unwrap();
        let resolved = f.resolved_queries(0, &w, &assignments);
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].1, w.queries[0]);
        assert_eq!(resolved[1].1, w.queries[1]);
    }

    #[test]
    fn empty_select_item_kind_sanity() {
        // Guard against accidental SyntaxKind contract changes used by
        // transforms.
        assert!(SyntaxKind::Where.is_list());
        assert!(SyntaxKind::SelectList.is_list());
        assert!(!SyntaxKind::Query.is_list());
        assert_eq!(SyntaxKind::Where.separator(), " AND ");
        assert_eq!(SyntaxKind::SelectList.separator(), ", ");
    }
}
