//! The search state: a set of Difftrees plus the machinery to check that it
//! still expresses every input query.
//!
//! The paper's guarantee (§6.1): "All rules are guaranteed to preserve or
//! increase the expressiveness of the Difftrees; since the initial set of
//! Difftrees directly corresponds to the input queries, any reachable set
//! of Difftrees can also express those queries." We enforce this
//! *operationally*: every candidate transform is validated by re-binding all
//! input queries ([`Forest::bind_all`]), and resolutions are checked to
//! reproduce the bound query exactly.

use crate::bind::{bind_query, resolve, Binding, BindingMap};
use crate::gst::{lower_query, raise_query, DNode};
use crate::schema::{result_schema, ResultSchema};
use pi2_data::Catalog;
use pi2_engine::{analyze_query, QueryInfo};
use pi2_sql::ast::Query;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Shared, immutable context for a generation session: the input queries and
/// the catalogue. Separated from [`Forest`] so that search states stay cheap
/// to clone.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries.
    pub queries: Vec<Query>,
    /// The gsts.
    pub gsts: Vec<DNode>,
    /// The catalog.
    pub catalog: Catalog,
}

impl Workload {
    /// New.
    pub fn new(queries: Vec<Query>, catalog: Catalog) -> Workload {
        let gsts = queries.iter().map(lower_query).collect();
        Workload { queries, gsts, catalog }
    }

    /// Len.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Per-query assignment: which tree expresses it, with which binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The tree.
    pub tree: usize,
    /// The binding.
    pub binding: BindingMap,
}

/// A set of Difftrees — one MCTS search state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Forest {
    /// The trees.
    pub trees: Vec<DNode>,
}

impl Hash for Forest {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.trees.hash(state);
    }
}

impl Forest {
    /// Initial state: one (choice-free) Difftree per input query, ids
    /// renumbered.
    pub fn from_workload(w: &Workload) -> Forest {
        let mut f = Forest { trees: w.gsts.clone() };
        f.renumber();
        f
    }

    /// Renumber node ids across all trees so they are globally unique.
    pub fn renumber(&mut self) {
        let mut next = 0;
        for t in &mut self.trees {
            next = t.renumber(next);
        }
    }

    /// Total node count across trees.
    pub fn size(&self) -> usize {
        self.trees.iter().map(|t| t.size()).sum()
    }

    /// Total number of choice nodes.
    pub fn choice_count(&self) -> usize {
        self.trees.iter().map(|t| t.choice_nodes().len()).sum()
    }

    /// Bind every input query to some tree. Returns `None` if any query is
    /// inexpressible (the candidate state violates the §6.1 guarantee).
    /// Bindings are verified by resolving and comparing to the original.
    ///
    /// Results are memoized per (tree, query) in a thread-local cache:
    /// search states share most of their trees, and bindings are stored with
    /// root-relative node ids (DFS renumbering makes them position-stable),
    /// so the cache transfers across states.
    pub fn bind_all(&self, w: &Workload) -> Option<Vec<Assignment>> {
        let mut out = Vec::with_capacity(w.gsts.len());
        'queries: for gst in &w.gsts {
            for (ti, tree) in self.trees.iter().enumerate() {
                if let Some(binding) = bind_tree_cached(tree, gst) {
                    out.push(Assignment { tree: ti, binding });
                    continue 'queries;
                }
            }
            return None;
        }
        Some(out)
    }

    /// §3.2.4 query bindings: for each node of `tree_idx`, the set of
    /// distinct bindings needed across all input queries (descending into
    /// `MULTI` sub-bindings).
    pub fn node_bindings(
        &self,
        tree_idx: usize,
        assignments: &[Assignment],
    ) -> HashMap<u32, Vec<Binding>> {
        let mut out: HashMap<u32, Vec<Binding>> = HashMap::new();
        for a in assignments {
            if a.tree != tree_idx {
                continue;
            }
            accumulate_bindings(&a.binding, &mut out);
        }
        out
    }

    /// Queries (by index) expressed by each tree under `assignments`.
    pub fn queries_per_tree(&self, assignments: &[Assignment]) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.trees.len()];
        for (qi, a) in assignments.iter().enumerate() {
            out[a.tree].push(qi);
        }
        out
    }

    /// The resolved (typed) queries a tree expresses for the input workload.
    pub fn resolved_queries(
        &self,
        tree_idx: usize,
        _w: &Workload,
        assignments: &[Assignment],
    ) -> Vec<(usize, Query)> {
        let mut out = Vec::new();
        for (qi, a) in assignments.iter().enumerate() {
            if a.tree != tree_idx {
                continue;
            }
            if let Ok(resolved) = resolve(&self.trees[tree_idx], &a.binding) {
                if let Ok(q) = raise_query(&resolved) {
                    out.push((qi, q));
                }
            }
        }
        out
    }

    /// Analyzed schema info for every input query a tree expresses.
    pub fn tree_infos(
        &self,
        tree_idx: usize,
        w: &Workload,
        assignments: &[Assignment],
    ) -> Vec<QueryInfo> {
        self.resolved_queries(tree_idx, w, assignments)
            .into_iter()
            .filter_map(|(_, q)| analyze_query(&q, &w.catalog).ok())
            .collect()
    }

    /// §3.2.2 result schema of a tree; `None` when undefined (not
    /// union-compatible) or when the tree expresses no input query.
    pub fn tree_result_schema(
        &self,
        tree_idx: usize,
        w: &Workload,
        assignments: &[Assignment],
    ) -> Option<ResultSchema> {
        let infos = self.tree_infos(tree_idx, w, assignments);
        if infos.is_empty() {
            return None;
        }
        result_schema(&infos)
    }
}

thread_local! {
    /// (tree hash, tree size, query hash) → verified root-relative binding.
    static BIND_CACHE: std::cell::RefCell<HashMap<(u64, usize, u64), Option<BindingMap>>> =
        std::cell::RefCell::new(HashMap::new());
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Shift every node id in a binding map by `delta` (including MULTI
/// sub-maps), converting between absolute and root-relative keys.
fn shift_map(map: &BindingMap, delta: i64) -> BindingMap {
    map.iter()
        .map(|(id, b)| {
            let nid = (*id as i64 + delta) as u32;
            let nb = match b {
                Binding::List(params) => {
                    Binding::List(params.iter().map(|p| shift_map(p, delta)).collect())
                }
                other => other.clone(),
            };
            (nid, nb)
        })
        .collect()
}

/// Cached, verified bind of one query against one tree.
fn bind_tree_cached(tree: &DNode, gst: &DNode) -> Option<BindingMap> {
    let key = (hash_of(tree), tree.size(), hash_of(gst));
    let root = tree.id as i64;
    let cached = BIND_CACHE.with(|c| c.borrow().get(&key).cloned());
    if let Some(entry) = cached {
        return entry.map(|rel| shift_map(&rel, root));
    }
    let result = bind_query(tree, gst).and_then(|binding| {
        // Verify the round trip: resolve must reproduce the query.
        match resolve(tree, &binding) {
            Ok(resolved) if &resolved == gst => Some(binding),
            _ => None,
        }
    });
    BIND_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if c.len() > 200_000 {
            c.clear();
        }
        c.insert(key, result.as_ref().map(|b| shift_map(b, -root)));
    });
    result
}

/// Merge one query's binding map into the per-node accumulation, recursing
/// into `MULTI` parameterisations.
fn accumulate_bindings(map: &BindingMap, out: &mut HashMap<u32, Vec<Binding>>) {
    for (id, b) in map {
        if let Binding::List(params) = b {
            for p in params {
                accumulate_bindings(p, out);
            }
        }
        let entry = out.entry(*id).or_default();
        if !entry.contains(b) {
            entry.push(b.clone());
        }
    }
}

/// Convenience for tests and examples: does this forest express the query?
pub fn expresses(forest: &Forest, query: &Query) -> bool {
    let gst = lower_query(query);
    forest.trees.iter().any(|t| {
        bind_query(t, &gst)
            .and_then(|b| resolve(t, &b).ok())
            .is_some_and(|r| r == gst)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gst::SyntaxKind;
    use pi2_data::{DataType, Table, Value};
    use pi2_sql::parse_query;

    fn workload(sqls: &[&str]) -> Workload {
        let mut catalog = Catalog::new();
        let t = Table::from_rows(
            vec![("p", DataType::Int), ("a", DataType::Int), ("b", DataType::Int)],
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(1), Value::Int(20)],
                vec![Value::Int(3), Value::Int(2), Value::Int(30)],
            ],
        )
        .unwrap();
        catalog.add_table("T", t, vec!["p"]);
        let queries = sqls.iter().map(|s| parse_query(s).unwrap()).collect();
        Workload::new(queries, catalog)
    }

    #[test]
    fn initial_forest_expresses_all_inputs() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
            "SELECT a, count(*) FROM T GROUP BY a",
        ]);
        let f = Forest::from_workload(&w);
        assert_eq!(f.trees.len(), 3);
        let assignments = f.bind_all(&w).unwrap();
        assert_eq!(assignments.len(), 3);
        // Identity assignment: query i → tree i.
        for (i, a) in assignments.iter().enumerate() {
            assert_eq!(a.tree, i);
            assert!(a.binding.is_empty());
        }
    }

    #[test]
    fn merged_forest_reassigns_queries() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
        ]);
        let f0 = Forest::from_workload(&w);
        let mut merged = Forest { trees: vec![DNode::any(f0.trees.clone())] };
        merged.renumber();
        let assignments = merged.bind_all(&w).unwrap();
        assert_eq!(assignments[0].tree, 0);
        assert_eq!(assignments[1].tree, 0);
        assert_ne!(assignments[0].binding, assignments[1].binding);
        let per_tree = merged.queries_per_tree(&assignments);
        assert_eq!(per_tree, vec![vec![0, 1]]);
    }

    #[test]
    fn binding_failure_detected() {
        let w = workload(&["SELECT p FROM T", "SELECT a FROM T"]);
        // A forest holding only the first query cannot express the second.
        let f = Forest { trees: vec![w.gsts[0].clone()] };
        assert!(f.bind_all(&w).is_none());
    }

    #[test]
    fn node_bindings_union_across_queries() {
        let w = workload(&[
            "SELECT p FROM T WHERE a = 1",
            "SELECT p FROM T WHERE a = 2",
        ]);
        // Difftree: SELECT p FROM T WHERE a = VAL(1)
        let mut tree = w.gsts[0].clone();
        let pred = &mut tree.children[3].children[0];
        let lit = pred.children[1].clone();
        pred.children[1] = DNode::val(vec![lit]);
        let mut f = Forest { trees: vec![tree] };
        f.renumber();
        let assignments = f.bind_all(&w).unwrap();
        let val_id = f.trees[0].choice_nodes()[0].id;
        let nb = f.node_bindings(0, &assignments);
        let vals = nb.get(&val_id).unwrap();
        assert_eq!(vals.len(), 2, "VAL should accumulate both literals");
    }

    #[test]
    fn result_schema_of_merged_tree() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT a, count(*) FROM T GROUP BY a",
        ]);
        let f0 = Forest::from_workload(&w);
        let mut merged = Forest { trees: vec![DNode::any(f0.trees.clone())] };
        merged.renumber();
        let assignments = merged.bind_all(&w).unwrap();
        let rs = merged.tree_result_schema(0, &w, &assignments).unwrap();
        assert_eq!(rs.cols.len(), 2);
        assert_eq!(rs.cols[0].display_name(), "p∪a");
    }

    #[test]
    fn expresses_helper() {
        let w = workload(&["SELECT p FROM T WHERE a = 1"]);
        let f = Forest::from_workload(&w);
        assert!(expresses(&f, &parse_query("SELECT p FROM T WHERE a = 1").unwrap()));
        assert!(!expresses(&f, &parse_query("SELECT p FROM T WHERE a = 2").unwrap()));
    }

    #[test]
    fn forest_hash_ignores_ids() {
        use std::collections::hash_map::DefaultHasher;
        let w = workload(&["SELECT p FROM T"]);
        let mut f1 = Forest::from_workload(&w);
        let f2 = Forest::from_workload(&w);
        f1.renumber();
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        f1.hash(&mut h1);
        f2.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
        assert_eq!(f1, f2);
    }

    #[test]
    fn size_and_choice_count() {
        let w = workload(&["SELECT p FROM T WHERE a = 1"]);
        let mut f = Forest::from_workload(&w);
        assert!(f.size() > 5);
        assert_eq!(f.choice_count(), 0);
        let pred = &mut f.trees[0].children[3].children[0];
        let lit = pred.children[1].clone();
        pred.children[1] = DNode::val(vec![lit]);
        f.renumber();
        assert_eq!(f.choice_count(), 1);
    }

    #[test]
    fn resolved_queries_round_trip() {
        let w = workload(&[
            "SELECT p FROM T WHERE a = 1",
            "SELECT p FROM T WHERE a = 2",
        ]);
        let mut tree = w.gsts[0].clone();
        let pred = &mut tree.children[3].children[0];
        let lit = pred.children[1].clone();
        pred.children[1] = DNode::val(vec![lit]);
        let mut f = Forest { trees: vec![tree] };
        f.renumber();
        let assignments = f.bind_all(&w).unwrap();
        let resolved = f.resolved_queries(0, &w, &assignments);
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].1, w.queries[0]);
        assert_eq!(resolved[1].1, w.queries[1]);
    }

    #[test]
    fn empty_select_item_kind_sanity() {
        // Guard against accidental SyntaxKind contract changes used by
        // transforms.
        assert!(SyntaxKind::Where.is_list());
        assert!(SyntaxKind::SelectList.is_list());
        assert!(!SyntaxKind::Query.is_list());
        assert_eq!(SyntaxKind::Where.separator(), " AND ");
        assert_eq!(SyntaxKind::SelectList.separator(), ", ");
    }
}
