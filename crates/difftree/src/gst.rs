//! Generic syntax trees (GSTs) and Difftree nodes.
//!
//! The typed AST in `pi2-sql` is convenient for execution but awkward for
//! tree diffing: PI2's choice nodes can replace *any* production, so we work
//! over a uniform tree of [`DNode`]s. Lowering is canonicalising:
//!
//! * every query node always has the same eight clause children (missing
//!   clauses become empty clause wrappers), so trees from different queries
//!   align positionally;
//! * `AND` chains are flattened into the `Where` clause's child list, making
//!   conjunct presence/absence a list-alignment problem (handled by `OPT`).
//!
//! `raise_query` is the inverse: a choice-free GST back to a typed AST.

use pi2_sql::ast::{BinOp, Expr, Literal, OrderItem, Query, SelectItem, TableRef, UnaryOp};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A literal wrapper giving [`Literal`] structural `Eq`/`Hash` (floats via
/// bit patterns) so subtrees can be deduplicated and aligned.
#[derive(Debug, Clone)]
pub struct LitVal(pub Literal);

impl PartialEq for LitVal {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (Literal::Float(a), Literal::Float(b)) => a.to_bits() == b.to_bits(),
            (a, b) => a == b,
        }
    }
}

impl Eq for LitVal {}

impl Hash for LitVal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match &self.0 {
            Literal::Int(i) => (0u8, i).hash(state),
            Literal::Float(f) => (1u8, f.to_bits()).hash(state),
            Literal::Str(s) => (2u8, s).hash(state),
            Literal::Bool(b) => (3u8, b).hash(state),
            Literal::Null => 4u8.hash(state),
        }
    }
}

/// Comparison operators kept separate from logical/arithmetic ones in the
/// GST so choice nodes can generalise over them cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`.
    Eq,
    /// `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `LIKE`.
    Like,
}

impl CmpOp {
    /// The corresponding AST binary operator.
    pub fn to_binop(self) -> BinOp {
        match self {
            CmpOp::Eq => BinOp::Eq,
            CmpOp::NotEq => BinOp::NotEq,
            CmpOp::Lt => BinOp::Lt,
            CmpOp::LtEq => BinOp::LtEq,
            CmpOp::Gt => BinOp::Gt,
            CmpOp::GtEq => BinOp::GtEq,
            CmpOp::Like => BinOp::Like,
        }
    }

    fn from_binop(op: BinOp) -> Option<CmpOp> {
        Some(match op {
            BinOp::Eq => CmpOp::Eq,
            BinOp::NotEq => CmpOp::NotEq,
            BinOp::Lt => CmpOp::Lt,
            BinOp::LtEq => CmpOp::LtEq,
            BinOp::Gt => CmpOp::Gt,
            BinOp::GtEq => CmpOp::GtEq,
            BinOp::Like => CmpOp::Like,
            _ => return None,
        })
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

impl ArithOp {
    /// The corresponding AST binary operator.
    pub fn to_binop(self) -> BinOp {
        match self {
            ArithOp::Add => BinOp::Add,
            ArithOp::Sub => BinOp::Sub,
            ArithOp::Mul => BinOp::Mul,
            ArithOp::Div => BinOp::Div,
        }
    }
}

/// Grammar production labels for non-choice nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum SyntaxKind {
    /// A query; children are exactly the eight clause wrappers, in order:
    /// `DistinctFlag, SelectList, From, Where, GroupBy, Having, OrderBy,
    /// Limit`.
    Query,
    /// `DistinctFlag`.
    DistinctFlag(bool),
    /// The projection list.
    SelectList,
    /// `expr [AS alias]`; children: `[expr]` or `[expr, AliasName]`.
    SelectItem,
    /// `AliasName`.
    AliasName(String),
    /// The `*` projection / `count(*)` argument.
    Star,
    /// The FROM clause (list of table references).
    From,
    /// A base table reference; children: `[TableName]` or `[TableName,
    /// AliasName]`.
    TableRef,
    /// `TableName`.
    TableName(String),
    /// A subquery in FROM; children: `[Query]` or `[Query, AliasName]`.
    SubqueryRef,
    /// WHERE clause as an n-ary conjunct list (possibly empty).
    Where,
    /// The GROUP BY clause (list of grouping expressions).
    GroupBy,
    /// HAVING clause: zero or one child expression.
    Having,
    /// The ORDER BY clause (list of sort items).
    OrderBy,
    /// `expr [DESC]`; child: the sort expression.
    OrderItemNode { desc: bool },
    /// LIMIT clause: zero or one `Lit` child.
    Limit,
    /// n-ary conjunction (only nested under `Or`; top-level conjuncts live
    /// directly under `Where`).
    And,
    /// n-ary disjunction.
    Or,
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `Compare`.
    Compare(CmpOp),
    /// `Arith`.
    Arith(ArithOp),
    /// `Between`.
    Between { negated: bool },
    /// `expr IN (items…)`; children: `[expr, item1, …, itemk]`.
    InList { negated: bool },
    /// `expr IN (subquery)`; children: `[expr, Query]`.
    InSubquery { negated: bool },
    /// `IsNull`.
    IsNull { negated: bool },
    /// Function call; children are the arguments.
    FuncCall(String),
    /// `ColumnRef`.
    ColumnRef {
        table: Option<String>,
        column: String,
    },
    /// `Lit`.
    Lit(LitVal),
    /// `ScalarSubquery`.
    ScalarSubquery,
    /// The empty subtree — only appears as a child of `ANY` (forming `OPT`).
    Empty,
}

impl SyntaxKind {
    /// List kinds have a variable number of ordered children; choice nodes
    /// `MULTI`/`SUBSET` and `OPT` splicing apply inside them.
    pub fn is_list(&self) -> bool {
        matches!(
            self,
            SyntaxKind::SelectList
                | SyntaxKind::From
                | SyntaxKind::Where
                | SyntaxKind::GroupBy
                | SyntaxKind::Having
                | SyntaxKind::OrderBy
                | SyntaxKind::Limit
                | SyntaxKind::And
                | SyntaxKind::Or
                | SyntaxKind::InList { .. }
                | SyntaxKind::FuncCall(_)
        )
    }

    /// The separator used when this list's children are joined — the `sep`
    /// parameter of `MULTI[sep]` / `SUBSET[sep]` (§3.1).
    pub fn separator(&self) -> &'static str {
        match self {
            SyntaxKind::Where | SyntaxKind::And => " AND ",
            SyntaxKind::Or => " OR ",
            _ => ", ",
        }
    }

    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            SyntaxKind::Query => "Query".into(),
            SyntaxKind::DistinctFlag(b) => format!("Distinct({b})"),
            SyntaxKind::SelectList => "SelectList".into(),
            SyntaxKind::SelectItem => "SelectItem".into(),
            SyntaxKind::AliasName(a) => format!("Alias({a})"),
            SyntaxKind::Star => "*".into(),
            SyntaxKind::From => "From".into(),
            SyntaxKind::TableRef => "TableRef".into(),
            SyntaxKind::TableName(t) => format!("Table({t})"),
            SyntaxKind::SubqueryRef => "SubqueryRef".into(),
            SyntaxKind::Where => "Where".into(),
            SyntaxKind::GroupBy => "GroupBy".into(),
            SyntaxKind::Having => "Having".into(),
            SyntaxKind::OrderBy => "OrderBy".into(),
            SyntaxKind::OrderItemNode { desc } => format!("OrderItem(desc={desc})"),
            SyntaxKind::Limit => "Limit".into(),
            SyntaxKind::And => "AND".into(),
            SyntaxKind::Or => "OR".into(),
            SyntaxKind::Not => "NOT".into(),
            SyntaxKind::Neg => "-".into(),
            SyntaxKind::Compare(op) => op.to_binop().sql().into(),
            SyntaxKind::Arith(op) => op.to_binop().sql().into(),
            SyntaxKind::Between { negated } => {
                if *negated { "NOT BETWEEN" } else { "BETWEEN" }.into()
            }
            SyntaxKind::InList { negated } | SyntaxKind::InSubquery { negated } => {
                if *negated { "NOT IN" } else { "IN" }.into()
            }
            SyntaxKind::IsNull { negated } => {
                if *negated { "IS NOT NULL" } else { "IS NULL" }.into()
            }
            SyntaxKind::FuncCall(f) => format!("{f}()"),
            SyntaxKind::ColumnRef { table, column } => match table {
                Some(t) => format!("{t}.{column}"),
                None => column.clone(),
            },
            SyntaxKind::Lit(l) => l.0.to_string(),
            SyntaxKind::ScalarSubquery => "Subquery".into(),
            SyntaxKind::Empty => "ε".into(),
        }
    }
}

/// Difftree node kinds: a grammar production or one of the §3.1 choice
/// nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum NodeKind {
    /// `Syntax`.
    Syntax(SyntaxKind),
    /// `ANY(c1,…,ck)` — choose one child. `OPT` is an `ANY` with an `Empty`
    /// child.
    Any,
    /// `VAL(c1,…,ck)` — a pass-through literal; children are the observed
    /// literals defining its (relaxable) domain.
    Val,
    /// `MULTI[sep](c)` — repeat the single child template 0+ times.
    Multi,
    /// `SUBSET[sep](c1,…,ck)` — keep an ordered subset of the children.
    Subset,
    /// Companion marker from `PushOPT1`: this subtree exists only when the
    /// linked `OPT` (same `group`) is present.
    CoOpt { group: u32 },
}

/// A Difftree node. `id` identifies the node within its forest (reassigned
/// by `DNode::renumber` during forest construction); equality and hashing ignore it.
#[derive(Debug, Clone)]
pub struct DNode {
    /// Tree-local DFS position (root = 0), assigned by `renumber`.
    pub id: u32,
    /// Grammar production or choice-node kind.
    pub kind: NodeKind,
    /// Ordered child subtrees.
    pub children: Vec<DNode>,
}

impl PartialEq for DNode {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.children == other.children
    }
}

impl Eq for DNode {}

impl Hash for DNode {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
        self.children.hash(state);
    }
}

impl DNode {
    /// A grammar-production node.
    pub fn syntax(kind: SyntaxKind, children: Vec<DNode>) -> DNode {
        DNode {
            id: 0,
            kind: NodeKind::Syntax(kind),
            children,
        }
    }

    /// A childless grammar node.
    pub fn leaf(kind: SyntaxKind) -> DNode {
        DNode::syntax(kind, vec![])
    }

    /// An `ANY` choice over `children`.
    pub fn any(children: Vec<DNode>) -> DNode {
        DNode {
            id: 0,
            kind: NodeKind::Any,
            children,
        }
    }

    /// A `VAL` pass-through literal with observed-literal children.
    pub fn val(children: Vec<DNode>) -> DNode {
        DNode {
            id: 0,
            kind: NodeKind::Val,
            children,
        }
    }

    /// A `MULTI` repetition over one template child.
    pub fn multi(child: DNode) -> DNode {
        DNode {
            id: 0,
            kind: NodeKind::Multi,
            children: vec![child],
        }
    }

    /// A `SUBSET` over ordered alternatives.
    pub fn subset(children: Vec<DNode>) -> DNode {
        DNode {
            id: 0,
            kind: NodeKind::Subset,
            children,
        }
    }

    /// The empty subtree `ε` (forms `OPT` under `ANY`).
    pub fn empty() -> DNode {
        DNode::leaf(SyntaxKind::Empty)
    }

    /// Whether this node is one of the four choice kinds.
    pub fn is_choice(&self) -> bool {
        matches!(
            self.kind,
            NodeKind::Any | NodeKind::Val | NodeKind::Multi | NodeKind::Subset
        )
    }

    /// Whether this is the empty subtree `ε`.
    pub fn is_empty_node(&self) -> bool {
        matches!(self.kind, NodeKind::Syntax(SyntaxKind::Empty))
    }

    /// `OPT` special case (§3.1): an `ANY` with exactly one `Empty` child
    /// among its alternatives.
    pub fn is_opt(&self) -> bool {
        self.kind == NodeKind::Any && self.children.iter().any(|c| c.is_empty_node())
    }

    /// Whether this subtree contains any choice node (i.e. this node is
    /// *dynamic* per §3.2.3).
    pub fn is_dynamic(&self) -> bool {
        self.is_choice() || self.children.iter().any(|c| c.is_dynamic())
    }

    /// DFS pre-order traversal.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a DNode>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }

    /// All choice nodes in DFS order (Algorithm 1's `clist`).
    pub fn choice_nodes(&self) -> Vec<&DNode> {
        let mut all = Vec::new();
        self.walk(&mut all);
        all.into_iter().filter(|n| n.is_choice()).collect()
    }

    /// Find a node by id.
    pub fn find(&self, id: u32) -> Option<&DNode> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(id))
    }

    /// Find a node by id, mutably.
    pub fn find_mut(&mut self, id: u32) -> Option<&mut DNode> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter_mut().find_map(|c| c.find_mut(id))
    }

    /// Renumber ids in DFS order starting at `next`; returns the next free
    /// id.
    pub fn renumber(&mut self, mut next: u32) -> u32 {
        self.id = next;
        next += 1;
        for c in &mut self.children {
            next = c.renumber(next);
        }
        next
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    /// Pretty multi-line tree rendering, used in debugging output and the
    /// examples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let label = match &self.kind {
            NodeKind::Syntax(k) => k.label(),
            NodeKind::Any => {
                if self.is_opt() {
                    "OPT".into()
                } else {
                    "ANY".into()
                }
            }
            NodeKind::Val => "VAL".into(),
            NodeKind::Multi => "MULTI".into(),
            NodeKind::Subset => "SUBSET".into(),
            NodeKind::CoOpt { group } => format!("CO-OPT#{group}"),
        };
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), label);
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

impl fmt::Display for DNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

// ---------------------------------------------------------------------------
// Lowering: typed AST → GST
// ---------------------------------------------------------------------------

/// Lower a parsed query into its canonical GST.
pub fn lower_query(q: &Query) -> DNode {
    let distinct = DNode::leaf(SyntaxKind::DistinctFlag(q.distinct));
    let select = DNode::syntax(
        SyntaxKind::SelectList,
        q.select.iter().map(lower_select_item).collect(),
    );
    let from = DNode::syntax(
        SyntaxKind::From,
        q.from.iter().map(lower_table_ref).collect(),
    );
    let where_ = DNode::syntax(
        SyntaxKind::Where,
        q.where_clause
            .as_ref()
            .map(lower_conjuncts)
            .unwrap_or_default(),
    );
    let group_by = DNode::syntax(
        SyntaxKind::GroupBy,
        q.group_by.iter().map(lower_expr).collect(),
    );
    let having = DNode::syntax(
        SyntaxKind::Having,
        q.having.iter().map(lower_expr).collect(),
    );
    let order_by = DNode::syntax(
        SyntaxKind::OrderBy,
        q.order_by.iter().map(lower_order_item).collect(),
    );
    let limit = DNode::syntax(
        SyntaxKind::Limit,
        q.limit
            .map(|l| vec![DNode::leaf(SyntaxKind::Lit(LitVal(Literal::Int(l as i64))))])
            .unwrap_or_default(),
    );
    DNode::syntax(
        SyntaxKind::Query,
        vec![
            distinct, select, from, where_, group_by, having, order_by, limit,
        ],
    )
}

fn lower_select_item(item: &SelectItem) -> DNode {
    match item {
        SelectItem::Star => {
            DNode::syntax(SyntaxKind::SelectItem, vec![DNode::leaf(SyntaxKind::Star)])
        }
        SelectItem::Expr { expr, alias } => {
            let mut children = vec![lower_expr(expr)];
            if let Some(a) = alias {
                children.push(DNode::leaf(SyntaxKind::AliasName(a.clone())));
            }
            DNode::syntax(SyntaxKind::SelectItem, children)
        }
    }
}

fn lower_table_ref(t: &TableRef) -> DNode {
    match t {
        TableRef::Table { name, alias } => {
            let mut children = vec![DNode::leaf(SyntaxKind::TableName(name.clone()))];
            if let Some(a) = alias {
                children.push(DNode::leaf(SyntaxKind::AliasName(a.clone())));
            }
            DNode::syntax(SyntaxKind::TableRef, children)
        }
        TableRef::Subquery { query, alias } => {
            let mut children = vec![lower_query(query)];
            if let Some(a) = alias {
                children.push(DNode::leaf(SyntaxKind::AliasName(a.clone())));
            }
            DNode::syntax(SyntaxKind::SubqueryRef, children)
        }
    }
}

fn lower_order_item(o: &OrderItem) -> DNode {
    DNode::syntax(
        SyntaxKind::OrderItemNode { desc: o.desc },
        vec![lower_expr(&o.expr)],
    )
}

/// Flatten an AND chain into a conjunct list (the `Where` node's children).
fn lower_conjuncts(e: &Expr) -> Vec<DNode> {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            let mut out = lower_conjuncts(left);
            out.extend(lower_conjuncts(right));
            out
        }
        other => vec![lower_expr(other)],
    }
}

/// Flatten an OR chain.
fn lower_disjuncts(e: &Expr) -> Vec<DNode> {
    match e {
        Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } => {
            let mut out = lower_disjuncts(left);
            out.extend(lower_disjuncts(right));
            out
        }
        other => vec![lower_expr(other)],
    }
}

fn lower_expr(e: &Expr) -> DNode {
    match e {
        Expr::Column { table, name } => DNode::leaf(SyntaxKind::ColumnRef {
            table: table.clone(),
            column: name.clone(),
        }),
        Expr::Literal(l) => DNode::leaf(SyntaxKind::Lit(LitVal(l.clone()))),
        Expr::Star => DNode::leaf(SyntaxKind::Star),
        Expr::Unary { op, expr } => {
            let kind = match op {
                UnaryOp::Neg => SyntaxKind::Neg,
                UnaryOp::Not => SyntaxKind::Not,
            };
            DNode::syntax(kind, vec![lower_expr(expr)])
        }
        Expr::Binary { left, op, right } => match op {
            BinOp::And => DNode::syntax(SyntaxKind::And, lower_conjuncts(e)),
            BinOp::Or => DNode::syntax(SyntaxKind::Or, lower_disjuncts(e)),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let aop = match op {
                    BinOp::Add => ArithOp::Add,
                    BinOp::Sub => ArithOp::Sub,
                    BinOp::Mul => ArithOp::Mul,
                    _ => ArithOp::Div,
                };
                DNode::syntax(
                    SyntaxKind::Arith(aop),
                    vec![lower_expr(left), lower_expr(right)],
                )
            }
            other => {
                let cmp = CmpOp::from_binop(*other).expect("comparison operator");
                DNode::syntax(
                    SyntaxKind::Compare(cmp),
                    vec![lower_expr(left), lower_expr(right)],
                )
            }
        },
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => DNode::syntax(
            SyntaxKind::Between { negated: *negated },
            vec![lower_expr(expr), lower_expr(low), lower_expr(high)],
        ),
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let mut children = vec![lower_expr(expr)];
            children.extend(list.iter().map(lower_expr));
            DNode::syntax(SyntaxKind::InList { negated: *negated }, children)
        }
        Expr::InSubquery {
            expr,
            negated,
            query,
        } => DNode::syntax(
            SyntaxKind::InSubquery { negated: *negated },
            vec![lower_expr(expr), lower_query(query)],
        ),
        Expr::IsNull { expr, negated } => DNode::syntax(
            SyntaxKind::IsNull { negated: *negated },
            vec![lower_expr(expr)],
        ),
        Expr::Func { name, args } => DNode::syntax(
            SyntaxKind::FuncCall(name.clone()),
            args.iter().map(lower_expr).collect(),
        ),
        Expr::ScalarSubquery(q) => DNode::syntax(SyntaxKind::ScalarSubquery, vec![lower_query(q)]),
    }
}

// ---------------------------------------------------------------------------
// Raising: choice-free GST → typed AST
// ---------------------------------------------------------------------------

/// Error raised when a GST cannot be converted back into a typed AST — most
/// commonly because a choice node was not resolved first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaiseError(pub String);

impl fmt::Display for RaiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot raise GST to AST: {}", self.0)
    }
}

impl std::error::Error for RaiseError {}

/// Raise a choice-free GST back into a typed [`Query`].
pub fn raise_query(node: &DNode) -> Result<Query, RaiseError> {
    let NodeKind::Syntax(SyntaxKind::Query) = &node.kind else {
        return Err(RaiseError(format!(
            "expected Query root, got {:?}",
            node.kind
        )));
    };
    // Children may have been restructured by transforms; identify clauses by
    // kind rather than position for robustness.
    let mut q = Query::default();
    for child in &node.children {
        let NodeKind::Syntax(kind) = &child.kind else {
            return Err(RaiseError("unresolved choice node in query".into()));
        };
        let kids: Vec<&DNode> = child
            .children
            .iter()
            .filter(|c| !c.is_empty_node())
            .collect();
        match kind {
            SyntaxKind::DistinctFlag(b) => q.distinct = *b,
            SyntaxKind::SelectList => {
                for item in kids {
                    q.select.push(raise_select_item(item)?);
                }
            }
            SyntaxKind::From => {
                for t in kids {
                    q.from.push(raise_table_ref(t)?);
                }
            }
            SyntaxKind::Where => {
                let conjuncts = kids
                    .iter()
                    .map(|c| raise_expr(c))
                    .collect::<Result<Vec<_>, _>>()?;
                q.where_clause = fold_and(conjuncts);
            }
            SyntaxKind::GroupBy => {
                for g in kids {
                    q.group_by.push(raise_expr(g)?);
                }
            }
            SyntaxKind::Having => {
                let conjuncts = kids
                    .iter()
                    .map(|c| raise_expr(c))
                    .collect::<Result<Vec<_>, _>>()?;
                q.having = fold_and(conjuncts);
            }
            SyntaxKind::OrderBy => {
                for o in kids {
                    let NodeKind::Syntax(SyntaxKind::OrderItemNode { desc }) = &o.kind else {
                        return Err(RaiseError("bad ORDER BY item".into()));
                    };
                    let expr = raise_expr(
                        o.children
                            .first()
                            .ok_or_else(|| RaiseError("empty order item".into()))?,
                    )?;
                    q.order_by.push(OrderItem { expr, desc: *desc });
                }
            }
            SyntaxKind::Limit => {
                if let Some(l) = kids.first() {
                    match &l.kind {
                        NodeKind::Syntax(SyntaxKind::Lit(LitVal(Literal::Int(v)))) if *v >= 0 => {
                            q.limit = Some(*v as u64)
                        }
                        _ => return Err(RaiseError("bad LIMIT value".into())),
                    }
                }
            }
            other => {
                return Err(RaiseError(format!("unexpected clause {other:?}")));
            }
        }
    }
    if q.select.is_empty() {
        return Err(RaiseError("query with empty select list".into()));
    }
    Ok(q)
}

fn fold_and(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    match conjuncts.len() {
        0 => None,
        1 => Some(conjuncts.pop().unwrap()),
        _ => {
            let mut iter = conjuncts.into_iter();
            let first = iter.next().unwrap();
            Some(iter.fold(first, |acc, e| Expr::bin(acc, BinOp::And, e)))
        }
    }
}

fn fold_or(mut disjuncts: Vec<Expr>) -> Option<Expr> {
    match disjuncts.len() {
        0 => None,
        1 => Some(disjuncts.pop().unwrap()),
        _ => {
            let mut iter = disjuncts.into_iter();
            let first = iter.next().unwrap();
            Some(iter.fold(first, |acc, e| Expr::bin(acc, BinOp::Or, e)))
        }
    }
}

fn raise_select_item(node: &DNode) -> Result<SelectItem, RaiseError> {
    let NodeKind::Syntax(SyntaxKind::SelectItem) = &node.kind else {
        return Err(RaiseError(format!(
            "expected SelectItem, got {:?}",
            node.kind
        )));
    };
    let kids: Vec<&DNode> = node
        .children
        .iter()
        .filter(|c| !c.is_empty_node())
        .collect();
    let first = kids
        .first()
        .ok_or_else(|| RaiseError("empty select item".into()))?;
    if matches!(first.kind, NodeKind::Syntax(SyntaxKind::Star)) && kids.len() == 1 {
        return Ok(SelectItem::Star);
    }
    let expr = raise_expr(first)?;
    let alias = match kids.get(1) {
        Some(a) => match &a.kind {
            NodeKind::Syntax(SyntaxKind::AliasName(name)) => Some(name.clone()),
            _ => return Err(RaiseError("bad alias".into())),
        },
        None => None,
    };
    Ok(SelectItem::Expr { expr, alias })
}

fn raise_table_ref(node: &DNode) -> Result<TableRef, RaiseError> {
    let kids: Vec<&DNode> = node
        .children
        .iter()
        .filter(|c| !c.is_empty_node())
        .collect();
    let alias = match kids.get(1) {
        Some(a) => match &a.kind {
            NodeKind::Syntax(SyntaxKind::AliasName(name)) => Some(name.clone()),
            _ => return Err(RaiseError("bad table alias".into())),
        },
        None => None,
    };
    match &node.kind {
        NodeKind::Syntax(SyntaxKind::TableRef) => {
            let first = kids
                .first()
                .ok_or_else(|| RaiseError("empty table ref".into()))?;
            match &first.kind {
                NodeKind::Syntax(SyntaxKind::TableName(name)) => Ok(TableRef::Table {
                    name: name.clone(),
                    alias,
                }),
                _ => Err(RaiseError("bad table name".into())),
            }
        }
        NodeKind::Syntax(SyntaxKind::SubqueryRef) => {
            let first = kids
                .first()
                .ok_or_else(|| RaiseError("empty subquery ref".into()))?;
            Ok(TableRef::Subquery {
                query: Box::new(raise_query(first)?),
                alias,
            })
        }
        other => Err(RaiseError(format!("expected table ref, got {other:?}"))),
    }
}

fn raise_expr(node: &DNode) -> Result<Expr, RaiseError> {
    let NodeKind::Syntax(kind) = &node.kind else {
        return Err(RaiseError(format!(
            "unresolved choice node {:?}",
            node.kind
        )));
    };
    let kids: Vec<&DNode> = node
        .children
        .iter()
        .filter(|c| !c.is_empty_node())
        .collect();
    match kind {
        SyntaxKind::ColumnRef { table, column } => Ok(Expr::Column {
            table: table.clone(),
            name: column.clone(),
        }),
        SyntaxKind::Lit(LitVal(l)) => Ok(Expr::Literal(l.clone())),
        SyntaxKind::Star => Ok(Expr::Star),
        SyntaxKind::Neg => Ok(Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(raise_expr(
                kids.first()
                    .ok_or_else(|| RaiseError("empty negation".into()))?,
            )?),
        }),
        SyntaxKind::Not => Ok(Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(raise_expr(
                kids.first().ok_or_else(|| RaiseError("empty NOT".into()))?,
            )?),
        }),
        SyntaxKind::And => {
            let parts = kids
                .iter()
                .map(|c| raise_expr(c))
                .collect::<Result<Vec<_>, _>>()?;
            fold_and(parts).ok_or_else(|| RaiseError("empty AND".into()))
        }
        SyntaxKind::Or => {
            let parts = kids
                .iter()
                .map(|c| raise_expr(c))
                .collect::<Result<Vec<_>, _>>()?;
            fold_or(parts).ok_or_else(|| RaiseError("empty OR".into()))
        }
        SyntaxKind::Compare(op) => {
            let (l, r) = two(&kids, "comparison")?;
            Ok(Expr::bin(raise_expr(l)?, op.to_binop(), raise_expr(r)?))
        }
        SyntaxKind::Arith(op) => {
            let (l, r) = two(&kids, "arithmetic")?;
            Ok(Expr::bin(raise_expr(l)?, op.to_binop(), raise_expr(r)?))
        }
        SyntaxKind::Between { negated } => {
            if kids.len() != 3 {
                return Err(RaiseError("BETWEEN needs 3 children".into()));
            }
            Ok(Expr::Between {
                expr: Box::new(raise_expr(kids[0])?),
                negated: *negated,
                low: Box::new(raise_expr(kids[1])?),
                high: Box::new(raise_expr(kids[2])?),
            })
        }
        SyntaxKind::InList { negated } => {
            let first = kids.first().ok_or_else(|| RaiseError("empty IN".into()))?;
            let list = kids[1..]
                .iter()
                .map(|c| raise_expr(c))
                .collect::<Result<Vec<_>, _>>()?;
            if list.is_empty() {
                return Err(RaiseError("IN with empty list".into()));
            }
            Ok(Expr::InList {
                expr: Box::new(raise_expr(first)?),
                negated: *negated,
                list,
            })
        }
        SyntaxKind::InSubquery { negated } => {
            let (e, q) = two(&kids, "IN subquery")?;
            Ok(Expr::InSubquery {
                expr: Box::new(raise_expr(e)?),
                negated: *negated,
                query: Box::new(raise_query(q)?),
            })
        }
        SyntaxKind::IsNull { negated } => Ok(Expr::IsNull {
            expr: Box::new(raise_expr(
                kids.first()
                    .ok_or_else(|| RaiseError("empty IS NULL".into()))?,
            )?),
            negated: *negated,
        }),
        SyntaxKind::FuncCall(name) => Ok(Expr::Func {
            name: name.clone(),
            args: kids
                .iter()
                .map(|c| raise_expr(c))
                .collect::<Result<Vec<_>, _>>()?,
        }),
        SyntaxKind::ScalarSubquery => Ok(Expr::ScalarSubquery(Box::new(raise_query(
            kids.first()
                .ok_or_else(|| RaiseError("empty scalar subquery".into()))?,
        )?))),
        other => Err(RaiseError(format!("unexpected expression node {other:?}"))),
    }
}

/// Best-effort SQL snippet for a choice-free subtree — used to label widget
/// options ("a = 1", "SELECT …"). Falls back to the node's kind label.
pub fn sql_snippet(node: &DNode) -> String {
    if !node.is_dynamic() {
        if let Ok(e) = raise_expr(node) {
            return e.to_string();
        }
        if let Ok(q) = raise_query(node) {
            let s = q.to_string();
            // Truncate on a char boundary: byte-slicing panics mid-UTF-8.
            return match s.char_indices().nth(40) {
                Some((cut, _)) => format!("{}…", &s[..cut]),
                None => s,
            };
        }
    }
    match &node.kind {
        NodeKind::Syntax(k) => k.label(),
        other => format!("{other:?}"),
    }
}

fn two<'a>(kids: &[&'a DNode], what: &str) -> Result<(&'a DNode, &'a DNode), RaiseError> {
    if kids.len() != 2 {
        return Err(RaiseError(format!(
            "{what} needs 2 children, got {}",
            kids.len()
        )));
    }
    Ok((kids[0], kids[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_sql::parse_query;

    fn round_trip(sql: &str) -> DNode {
        let q = parse_query(sql).unwrap();
        let gst = lower_query(&q);
        let back = raise_query(&gst).unwrap();
        assert_eq!(q, back, "lower/raise changed the query for {sql:?}");
        gst
    }

    #[test]
    fn query_always_has_eight_clause_children() {
        let gst = round_trip("SELECT a FROM t");
        assert_eq!(gst.children.len(), 8);
        // WHERE is present but empty.
        assert_eq!(gst.children[3].kind, NodeKind::Syntax(SyntaxKind::Where));
        assert!(gst.children[3].children.is_empty());
    }

    #[test]
    fn and_chains_flatten_into_where() {
        let gst = round_trip("SELECT a FROM t WHERE a = 1 AND b = 2 AND c BETWEEN 3 AND 4");
        assert_eq!(gst.children[3].children.len(), 3);
    }

    #[test]
    fn nested_or_keeps_structure() {
        let gst = round_trip("SELECT a FROM t WHERE a = 1 OR b = 2 OR c = 3");
        let where_ = &gst.children[3];
        assert_eq!(where_.children.len(), 1);
        assert_eq!(where_.children[0].kind, NodeKind::Syntax(SyntaxKind::Or));
        assert_eq!(where_.children[0].children.len(), 3);
    }

    #[test]
    fn subquery_in_from_round_trips() {
        round_trip("SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) AS sq WHERE x < 5");
    }

    #[test]
    fn correlated_having_round_trips() {
        round_trip(
            "SELECT city, sum(total) FROM sales AS ss GROUP BY city \
             HAVING sum(total) >= (SELECT max(t) FROM (SELECT sum(total) AS t \
             FROM sales AS s WHERE s.city = ss.city GROUP BY s.product) AS m)",
        );
    }

    #[test]
    fn distinct_order_limit_round_trip() {
        round_trip("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3");
    }

    #[test]
    fn in_list_and_functions_round_trip() {
        round_trip(
            "SELECT mpg, id IN (1, 2) AS color FROM Cars \
             WHERE date > date(today(), '-30 days')",
        );
    }

    #[test]
    fn equality_ignores_ids() {
        let mut a = round_trip("SELECT a FROM t WHERE a = 1");
        let b = round_trip("SELECT a FROM t WHERE a = 1");
        a.renumber(100);
        assert_eq!(a, b);
    }

    #[test]
    fn renumber_assigns_dfs_ids() {
        let mut gst = round_trip("SELECT a FROM t");
        let next = gst.renumber(0);
        assert_eq!(next as usize, gst.size());
        let mut all = Vec::new();
        gst.walk(&mut all);
        for (i, n) in all.iter().enumerate() {
            assert_eq!(n.id as usize, i);
        }
    }

    #[test]
    fn opt_detection() {
        let opt = DNode::any(vec![DNode::leaf(SyntaxKind::Star), DNode::empty()]);
        assert!(opt.is_opt());
        assert!(opt.is_choice());
        let any = DNode::any(vec![DNode::leaf(SyntaxKind::Star)]);
        assert!(!any.is_opt());
    }

    #[test]
    fn dynamic_detection() {
        let mut gst = round_trip("SELECT a FROM t WHERE a = 1");
        assert!(!gst.is_dynamic());
        // Replace the literal with a VAL choice node.
        let where_ = &mut gst.children[3];
        where_.children[0].children[1] =
            DNode::val(vec![DNode::leaf(SyntaxKind::Lit(LitVal(Literal::Int(1))))]);
        assert!(gst.is_dynamic());
        assert_eq!(gst.choice_nodes().len(), 1);
    }

    #[test]
    fn raising_choice_node_fails() {
        let any = DNode::any(vec![]);
        assert!(raise_expr(&any).is_err());
    }

    #[test]
    fn find_by_id() {
        let mut gst = round_trip("SELECT a FROM t WHERE a = 1");
        gst.renumber(0);
        let n = gst.find(3).unwrap();
        assert_eq!(n.id, 3);
        assert!(gst.find(10_000).is_none());
    }

    #[test]
    fn render_shows_tree_shape() {
        let gst = round_trip("SELECT a FROM t WHERE a = 1");
        let s = gst.render();
        assert!(s.contains("Query"));
        assert!(s.contains("Where"));
        assert!(s.contains("="));
    }

    #[test]
    fn litval_eq_and_hash_for_floats() {
        use std::collections::HashSet;
        let a = LitVal(Literal::Float(2.5));
        let b = LitVal(Literal::Float(2.5));
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }
}
