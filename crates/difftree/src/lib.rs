#![warn(missing_docs)]
//! Difftrees: the PI2 paper's central data structure (§3).
//!
//! A Difftree extends an abstract syntax tree with four kinds of *choice
//! nodes* — `ANY`, `VAL`, `MULTI`, and `SUBSET` (plus the `OPT` special case
//! of `ANY` and the `CO-OPT` companion produced by `PushOPT1`) — that encode
//! systematic variations between queries. Each choice node corresponds to a
//! production rule in a PEG grammar, so any tree a Difftree expresses is
//! syntactically valid.
//!
//! Module map:
//! * [`gst`] — the generic syntax tree (GST) that mirrors the SQL grammar's
//!   productions; lowering from / raising to `pi2-sql` ASTs,
//! * [`bind`] — query bindings (§3.2.4): matching a concrete query against a
//!   Difftree, and resolving a Difftree + bindings back to a query,
//! * [`types`] — the `AST → str → num` type hierarchy with attribute types
//!   (§3.2.1) and type inference over trees,
//! * [`schema`] — node schemas (§3.2.3) and result schemas (§3.2.2),
//! * [`transform`] — the four categories of transformation rules (§6.1,
//!   Fig. 13) that define PI2's search space,
//! * [`forest`] — a set of Difftrees plus the input queries they must keep
//!   expressing (the search state).

pub mod bind;
pub mod forest;
pub mod gst;
pub mod schema;
pub mod transform;
pub mod types;

pub use bind::{bind_query, resolve, Binding, BindingMap, ResolveError};
pub use forest::{
    expresses, structural_fingerprint, Assignment, Forest, ForestKey, Tree, Workload,
};
pub use gst::{
    lower_query, raise_query, sql_snippet, ArithOp, CmpOp, DNode, LitVal, NodeKind, SyntaxKind,
};
pub use schema::{
    node_schema, result_schema, type_or_schema, NodeSchema, ResultCol, ResultSchema, SchemaExpr,
    TypeOrSchema,
};
pub use transform::{applicable_actions, apply_action, candidate_actions, Action, Rule};
pub use types::{infer_types, infer_types_cached, AttrRef, NodeType, PrimType, TypeMap};
