//! Node schemas (§3.2.3) and result schemas (§3.2.2).
//!
//! *Node schemas* describe the structural variation a dynamic node (a choice
//! node or an ancestor of one) can express. A schema `<e1, …, en>` is a list
//! of type expressions built with `|` (or, from `ANY`), `?` (optional, from
//! `OPT`/`SUBSET`), and `*` (repetition, from `MULTI`) over types and nested
//! schemas. Interaction mapping (§4.2) matches these against widget schemas.
//!
//! *Result schemas* describe a Difftree's output table. They are defined
//! when all expressible ASTs are union-compatible; we compute them over the
//! resolved input queries the tree expresses, which is exactly the set the
//! paper's guarantee quantifies over.

use crate::gst::{DNode, NodeKind};
use crate::types::{AttrRef, NodeType, TypeMap};
use pi2_data::DataType;
use pi2_engine::{ColType, QueryInfo};
use std::collections::BTreeSet;
use std::fmt;

/// A type, or a nested schema (for hierarchical widgets such as tabs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeOrSchema {
    /// `Type`.
    Type(NodeType),
    /// `Schema`.
    Schema(NodeSchema),
}

impl TypeOrSchema {
    /// The underlying type when this is a plain (non-nested) type.
    pub fn as_type(&self) -> Option<&NodeType> {
        match self {
            TypeOrSchema::Type(t) => Some(t),
            TypeOrSchema::Schema(_) => None,
        }
    }
}

impl fmt::Display for TypeOrSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeOrSchema::Type(t) => write!(f, "{t}"),
            TypeOrSchema::Schema(s) => write!(f, "{s}"),
        }
    }
}

/// One type expression of a node schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaExpr {
    /// `Atom`.
    Atom(TypeOrSchema),
    /// `Or`.
    Or(Vec<SchemaExpr>),
    /// `Opt`.
    Opt(Box<SchemaExpr>),
    /// `Star`.
    Star(Box<SchemaExpr>),
}

impl SchemaExpr {
    /// The plain type of this expression, if it is an unadorned atom.
    pub fn atom_type(&self) -> Option<&NodeType> {
        match self {
            SchemaExpr::Atom(t) => t.as_type(),
            _ => None,
        }
    }

    /// The type inside `Opt(Atom(t))` / `Star(Atom(t))` wrappers.
    pub fn inner_type(&self) -> Option<&NodeType> {
        match self {
            SchemaExpr::Atom(t) => t.as_type(),
            SchemaExpr::Opt(e) | SchemaExpr::Star(e) => e.inner_type(),
            SchemaExpr::Or(_) => None,
        }
    }

    /// Is opt.
    pub fn is_opt(&self) -> bool {
        matches!(self, SchemaExpr::Opt(_))
    }

    /// Is star.
    pub fn is_star(&self) -> bool {
        matches!(self, SchemaExpr::Star(_))
    }
}

impl fmt::Display for SchemaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaExpr::Atom(t) => write!(f, "{t}"),
            SchemaExpr::Or(alts) => {
                let parts: Vec<String> = alts.iter().map(|a| a.to_string()).collect();
                write!(f, "{}", parts.join("|"))
            }
            SchemaExpr::Opt(e) => write!(f, "{e}?"),
            SchemaExpr::Star(e) => write!(f, "{e}*"),
        }
    }
}

/// A node schema: an ordered list of type expressions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSchema {
    /// The ordered type expressions.
    pub elems: Vec<SchemaExpr>,
}

impl NodeSchema {
    /// Number of schema elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the schema has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

impl fmt::Display for NodeSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.elems.iter().map(|e| e.to_string()).collect();
        write!(f, "<{}>", parts.join(", "))
    }
}

/// The `T(N)` helper of §3.2.3: a static node's type, a dynamic node's
/// schema.
pub fn type_or_schema(node: &DNode, types: &TypeMap) -> TypeOrSchema {
    if node.is_dynamic() {
        TypeOrSchema::Schema(node_schema(node, types))
    } else {
        TypeOrSchema::Type(static_type(node, types))
    }
}

/// A static subtree's type: its annotated leaf type, `AST` for internal
/// nodes (§3.2.1 "internal nodes are of type AST").
fn static_type(node: &DNode, types: &TypeMap) -> NodeType {
    if node.children.is_empty() {
        types.get(&node.id).cloned().unwrap_or_else(NodeType::ast)
    } else {
        NodeType::ast()
    }
}

/// Infer the node schema of a dynamic node per the §3.2.3 rules.
pub fn node_schema(node: &DNode, types: &TypeMap) -> NodeSchema {
    match &node.kind {
        NodeKind::Any => {
            // Partition children: empty alternatives make this an OPT;
            // group-marker CoOpt children are metadata.
            let alts: Vec<&DNode> = node
                .children
                .iter()
                .filter(|c| {
                    !(c.is_empty_node()
                        || matches!(c.kind, NodeKind::CoOpt { .. }) && c.children.is_empty())
                })
                .collect();
            let has_empty = node.children.iter().any(|c| c.is_empty_node());
            let all_static = alts.iter().all(|c| !c.is_dynamic());
            let inner: SchemaExpr = if all_static {
                // <∪ T(ci)>: least compatible type of the children.
                let mut ty: Option<NodeType> = None;
                for c in &alts {
                    let t = static_type(c, types);
                    ty = Some(match ty {
                        Some(acc) => acc.union(&t),
                        None => t,
                    });
                }
                SchemaExpr::Atom(TypeOrSchema::Type(ty.unwrap_or_else(NodeType::ast)))
            } else if alts.len() == 1 {
                SchemaExpr::Atom(type_or_schema(alts[0], types))
            } else {
                SchemaExpr::Or(
                    alts.iter()
                        .map(|c| SchemaExpr::Atom(type_or_schema(c, types)))
                        .collect(),
                )
            };
            let expr = if has_empty {
                SchemaExpr::Opt(Box::new(inner))
            } else {
                inner
            };
            NodeSchema { elems: vec![expr] }
        }
        NodeKind::Val => {
            let ty = types.get(&node.id).cloned().unwrap_or_else(NodeType::str_);
            NodeSchema {
                elems: vec![SchemaExpr::Atom(TypeOrSchema::Type(ty))],
            }
        }
        NodeKind::Multi => {
            let inner = SchemaExpr::Atom(type_or_schema(&node.children[0], types));
            NodeSchema {
                elems: vec![SchemaExpr::Star(Box::new(inner))],
            }
        }
        NodeKind::Subset => NodeSchema {
            elems: node
                .children
                .iter()
                .map(|c| SchemaExpr::Opt(Box::new(SchemaExpr::Atom(type_or_schema(c, types)))))
                .collect(),
        },
        NodeKind::CoOpt { .. } => {
            if node.children.is_empty() {
                NodeSchema::default()
            } else {
                NodeSchema {
                    elems: vec![SchemaExpr::Opt(Box::new(SchemaExpr::Atom(type_or_schema(
                        &node.children[0],
                        types,
                    ))))],
                }
            }
        }
        NodeKind::Syntax(_) => {
            // Cross product of the dynamic children's schemas: concatenate
            // their elements (Figure 8b).
            let mut elems = Vec::new();
            for c in &node.children {
                if c.is_dynamic() {
                    elems.extend(node_schema(c, types).elems);
                }
            }
            NodeSchema { elems }
        }
    }
}

// ---------------------------------------------------------------------------
// Result schemas (§3.2.2)
// ---------------------------------------------------------------------------

/// One column of a Difftree's result schema: the union of the corresponding
/// columns across all expressible (input) queries.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultCol {
    /// Unique attribute names, concatenated for display (`{T.a ∪ T.p}`).
    pub names: Vec<String>,
    /// Unioned storage type.
    pub dtype: DataType,
    /// Source attributes across all queries.
    pub attrs: BTreeSet<AttrRef>,
    /// Group key in every expressible query.
    pub is_group_key: bool,
    /// Unique in every expressible query.
    pub unique: bool,
    /// Maximum estimated cardinality; `None` when unbounded.
    pub cardinality: Option<usize>,
}

impl ResultCol {
    /// Display name.
    pub fn display_name(&self) -> String {
        self.names.join("∪")
    }

    /// §4.1 compatibility: quantitative visual variables accept numeric
    /// columns.
    pub fn is_quantitative(&self) -> bool {
        self.dtype.is_numeric() && self.dtype != DataType::Bool
    }

    /// §4.1 compatibility: categorical visual variables accept str and num
    /// columns whose cardinality is below 20.
    pub fn is_categorical(&self) -> bool {
        self.cardinality.is_some_and(|c| c > 0 && c < 20)
    }
}

/// A Difftree's result schema plus the aggregate structure shared by its
/// expressible queries.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSchema {
    /// The unioned output columns.
    pub cols: Vec<ResultCol>,
    /// Every expressible query aggregates.
    pub is_aggregate: bool,
    /// Column indices forming the shared group key (empty if queries disagree).
    pub group_key_indices: Vec<usize>,
}

impl ResultSchema {
    /// §4.1 FD check, delegated to the per-query structure: do the given
    /// columns functionally determine the rest?
    pub fn functionally_determines(&self, determinants: &[usize]) -> bool {
        if self.is_aggregate
            && !self.group_key_indices.is_empty()
            && self
                .group_key_indices
                .iter()
                .all(|k| determinants.contains(k))
        {
            return true;
        }
        determinants
            .iter()
            .any(|&i| self.cols.get(i).is_some_and(|c| c.unique))
    }
}

/// Union the analyzed schemas of every query a Difftree expresses
/// (§3.2.2). Returns `None` when they are not union-compatible.
pub fn result_schema(infos: &[QueryInfo]) -> Option<ResultSchema> {
    let first = infos.first()?;
    let arity = first.cols.len();
    if infos.iter().any(|i| i.cols.len() != arity) {
        return None;
    }
    let mut cols = Vec::with_capacity(arity);
    for i in 0..arity {
        let mut names: Vec<String> = Vec::new();
        let mut attrs = BTreeSet::new();
        let mut dtype: Option<DataType> = None;
        let mut is_group_key = true;
        let mut unique = true;
        let mut cardinality: Option<usize> = Some(0);
        for info in infos {
            let c = &info.cols[i];
            if !names.contains(&c.name) {
                names.push(c.name.clone());
            }
            if let ColType::Attr {
                table,
                column,
                dtype,
            } = &c.ty
            {
                attrs.insert(AttrRef {
                    table: table.clone(),
                    column: column.clone(),
                    dtype: *dtype,
                });
            }
            dtype = Some(match dtype {
                None => c.ty.dtype(),
                Some(d) => d.union(c.ty.dtype())?,
            });
            is_group_key &= c.is_group_key;
            unique &= c.unique;
            cardinality = match (cardinality, c.cardinality) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }
        cols.push(ResultCol {
            names,
            dtype: dtype?,
            attrs,
            is_group_key,
            unique,
            cardinality,
        });
    }
    let is_aggregate = infos.iter().all(|i| i.is_aggregate);
    // Group keys must agree across queries for the FD inference to hold.
    let group_key_indices = if infos
        .iter()
        .all(|i| i.group_key_indices == first.group_key_indices)
    {
        first.group_key_indices.clone()
    } else {
        vec![]
    };
    Some(ResultSchema {
        cols,
        is_aggregate,
        group_key_indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gst::{lower_query, LitVal, SyntaxKind};
    use crate::types::infer_types;
    use pi2_data::{Catalog, Table, Value};
    use pi2_engine::analyze_query;
    use pi2_sql::ast::Literal;
    use pi2_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_rows(
            vec![
                ("p", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Int),
            ],
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(7)],
                vec![Value::Int(2), Value::Int(20), Value::Int(8)],
            ],
        )
        .unwrap();
        c.add_table("T", t, vec!["p"]);
        c
    }

    /// Figure 3(a): ANY over two static predicates → schema is the union of
    /// the children's types, which are internal nodes, so AST.
    #[test]
    fn any_over_static_predicates_is_ast() {
        let q1 = lower_query(&parse_query("SELECT p FROM T WHERE a = 1").unwrap());
        let pred = q1.children[3].children[0].clone();
        let pred2 = {
            let q2 = lower_query(&parse_query("SELECT p FROM T WHERE b = 2").unwrap());
            q2.children[3].children[0].clone()
        };
        let mut any = DNode::any(vec![pred, pred2]);
        any.renumber(0);
        let types = infer_types(&any, &catalog());
        let s = node_schema(&any, &types);
        assert_eq!(s.len(), 1);
        assert_eq!(s.elems[0].atom_type().unwrap().prim(), crate::PrimType::Ast);
    }

    /// Figure 3(c)-style VAL: schema is the specialised attribute type.
    #[test]
    fn val_schema_is_attribute_type() {
        let mut gst = lower_query(&parse_query("SELECT p FROM T WHERE a = 1").unwrap());
        let pred = &mut gst.children[3].children[0];
        let lit = pred.children[1].clone();
        pred.children[1] = DNode::val(vec![lit]);
        gst.renumber(0);
        let types = infer_types(&gst, &catalog());
        let val = gst.choice_nodes()[0];
        let s = node_schema(val, &types);
        assert_eq!(s.to_string(), "<T.a>");
        assert!(s.elems[0].atom_type().unwrap().is_num());
    }

    /// Figure 8(a): a BETWEEN with two ANY literal children has the cross
    /// product schema <a1:T.a, a2:T.a>.
    #[test]
    fn between_with_two_anys_has_two_element_schema() {
        let mut gst = lower_query(&parse_query("SELECT p FROM T WHERE a BETWEEN 1 AND 3").unwrap());
        let pred = &mut gst.children[3].children[0];
        for i in [1usize, 2] {
            let lit = pred.children[i].clone();
            let lit2 = DNode::leaf(SyntaxKind::Lit(LitVal(Literal::Int(99))));
            pred.children[i] = DNode::any(vec![lit, lit2]);
        }
        gst.renumber(0);
        let types = infer_types(&gst, &catalog());
        let pred = &gst.children[3].children[0];
        let s = node_schema(pred, &types);
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "<T.a, T.a>");
    }

    /// OPT wraps its inner schema in `?` (Figure 7b).
    #[test]
    fn opt_schema() {
        let mut gst = lower_query(&parse_query("SELECT p FROM T WHERE a = 1").unwrap());
        let where_ = &mut gst.children[3];
        let pred = where_.children.remove(0);
        where_.children.push(DNode::any(vec![pred, DNode::empty()]));
        gst.renumber(0);
        let types = infer_types(&gst, &catalog());
        let opt = gst.choice_nodes()[0];
        let s = node_schema(opt, &types);
        assert_eq!(s.len(), 1);
        assert!(s.elems[0].is_opt());
        assert_eq!(s.to_string(), "<AST?>");
    }

    /// MULTI applies `*` (Figure 7b) and SUBSET yields per-child `?`
    /// elements (Figure 7c).
    #[test]
    fn multi_and_subset_schemas() {
        let col = |n: &str| {
            DNode::leaf(SyntaxKind::ColumnRef {
                table: None,
                column: n.into(),
            })
        };
        let mut multi = DNode::multi(DNode::any(vec![col("a"), col("b")]));
        multi.renumber(0);
        let types = infer_types(&multi, &catalog());
        let s = node_schema(&multi, &types);
        assert_eq!(s.len(), 1);
        assert!(s.elems[0].is_star());

        let mut subset = DNode::subset(vec![col("a"), col("b")]);
        subset.renumber(0);
        let types = infer_types(&subset, &catalog());
        let s = node_schema(&subset, &types);
        assert_eq!(s.len(), 2);
        assert!(s.elems.iter().all(|e| e.is_opt()));
    }

    /// Nested dynamic ANY (Figure 7a): <AST|<T.a>>-style nested schema.
    #[test]
    fn nested_any_schema() {
        let mut gst = lower_query(&parse_query("SELECT p FROM T WHERE a = 1").unwrap());
        // inner: a = ANY(1, 2); outer: ANY(b, inner-pred)
        let pred = &mut gst.children[3].children[0];
        let lit = pred.children[1].clone();
        let lit2 = DNode::leaf(SyntaxKind::Lit(LitVal(Literal::Int(2))));
        pred.children[1] = DNode::any(vec![lit, lit2]);
        let inner_pred = gst.children[3].children[0].clone();
        let other = DNode::leaf(SyntaxKind::ColumnRef {
            table: None,
            column: "b".into(),
        });
        gst.children[3].children[0] = DNode::any(vec![other, inner_pred]);
        gst.renumber(0);
        let types = infer_types(&gst, &catalog());
        let outer = &gst.children[3].children[0];
        let s = node_schema(outer, &types);
        assert_eq!(s.len(), 1);
        assert!(matches!(s.elems[0], SchemaExpr::Or(_)));
        let shown = s.to_string();
        assert!(shown.contains('|'), "nested or schema: {shown}");
    }

    #[test]
    fn result_schema_unions_names_and_types() {
        let cat = catalog();
        let q1 = analyze_query(
            &parse_query("SELECT p, count(*) FROM T GROUP BY p").unwrap(),
            &cat,
        )
        .unwrap();
        let q2 = analyze_query(
            &parse_query("SELECT a, count(*) FROM T GROUP BY a").unwrap(),
            &cat,
        )
        .unwrap();
        let rs = result_schema(&[q1, q2]).unwrap();
        assert_eq!(rs.cols.len(), 2);
        assert_eq!(rs.cols[0].display_name(), "p∪a");
        assert_eq!(rs.cols[0].attrs.len(), 2);
        assert!(rs.is_aggregate);
        assert_eq!(rs.group_key_indices, vec![0]);
        assert!(rs.functionally_determines(&[0]));
    }

    #[test]
    fn incompatible_schemas_are_undefined() {
        let cat = catalog();
        let q1 = analyze_query(&parse_query("SELECT p FROM T").unwrap(), &cat).unwrap();
        let q2 = analyze_query(&parse_query("SELECT p, a FROM T").unwrap(), &cat).unwrap();
        assert!(result_schema(&[q1.clone(), q2]).is_none());
        // Str vs Int is also incompatible.
        let mut c2 = Catalog::new();
        let t = Table::from_rows(vec![("s", DataType::Str)], vec![]).unwrap();
        c2.add_table("U", t, vec![]);
        let q3 = analyze_query(&parse_query("SELECT s FROM U").unwrap(), &c2).unwrap();
        assert!(result_schema(&[q1, q3]).is_none());
    }

    #[test]
    fn result_schema_categorical_and_quantitative() {
        let cat = catalog();
        let info = analyze_query(
            &parse_query("SELECT a, count(*) FROM T GROUP BY a").unwrap(),
            &cat,
        )
        .unwrap();
        let rs = result_schema(&[info]).unwrap();
        assert!(rs.cols[0].is_categorical()); // 2 distinct values
        assert!(rs.cols[0].is_quantitative()); // ints are also quantitative
        assert!(!rs.cols[1].is_categorical()); // counts are unbounded
        assert!(rs.cols[1].is_quantitative());
    }

    #[test]
    fn schema_display() {
        let s = NodeSchema {
            elems: vec![
                SchemaExpr::Opt(Box::new(SchemaExpr::Atom(TypeOrSchema::Type(
                    NodeType::num(),
                )))),
                SchemaExpr::Star(Box::new(SchemaExpr::Atom(TypeOrSchema::Type(
                    NodeType::str_(),
                )))),
            ],
        };
        assert_eq!(s.to_string(), "<num?, str*>");
    }
}
