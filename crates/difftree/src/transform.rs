//! Difftree transformation rules (§6.1, Figure 13).
//!
//! Four categories define PI2's search space:
//!
//! * **Refactoring** — `PushANY`, `PushOPT1`, `PushOPT2`, `Partition`:
//!   isolate the precise differences between queries;
//! * **Cross-tree** — `Merge`, `Split`: combine Difftrees (one shared
//!   visualization) or separate them (multiple views);
//! * **Mutation** — `ANY→VAL`, `ANY→MULTI`, `ANY→SUBSET`: change a choice
//!   node's kind, generalising the interface beyond the input queries;
//! * **Simplification** — `Noop`, `MergeANY`: canonicalise tree structure.
//!
//! Every rule must preserve or increase expressiveness. Rather than proving
//! this per rule, [`apply_action`] *validates* each application by re-binding
//! all input queries ([`Forest::bind_all`]) and rejects the action if any
//! query becomes inexpressible — a runtime enforcement of the paper's §6.1
//! guarantee.

use crate::forest::{structural_fingerprint, Forest, Tree, Workload};
use crate::gst::{DNode, NodeKind, SyntaxKind};
use crate::types::infer_types_cached;
use pi2_data::DataType;
use pi2_engine::analyze_query;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The transformation rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Push an `ANY` below a shared child root (Fig. 13).
    PushAny,
    /// Push an `OPT` onto its inner choice node, leaving `CO-OPT`.
    PushOpt1,
    /// Distribute an `OPT` over a list node's children.
    PushOpt2,
    /// Group an `ANY`'s children into homogeneous clusters.
    Partition,
    /// Combine two union-compatible Difftrees under one `ANY`.
    Merge,
    /// Separate an `ANY`-rooted Difftree into its children.
    Split,
    /// Relax a literal `ANY` to a full-domain `VAL`.
    AnyToVal,
    /// Generalise list alternatives to a `MULTI` repetition.
    AnyToMulti,
    /// Generalise list alternatives to an ordered `SUBSET`.
    AnyToSubset,
    /// Remove an `ANY` with a single distinct child.
    Noop,
    /// Flatten a cascade of `ANY` nodes.
    MergeAny,
}

impl Rule {
    /// ALL.
    pub const ALL: [Rule; 11] = [
        Rule::PushAny,
        Rule::PushOpt1,
        Rule::PushOpt2,
        Rule::Partition,
        Rule::Merge,
        Rule::Split,
        Rule::AnyToVal,
        Rule::AnyToMulti,
        Rule::AnyToSubset,
        Rule::Noop,
        Rule::MergeAny,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::PushAny => "PushANY",
            Rule::PushOpt1 => "PushOPT1",
            Rule::PushOpt2 => "PushOPT2",
            Rule::Partition => "Partition",
            Rule::Merge => "Merge",
            Rule::Split => "Split",
            Rule::AnyToVal => "ANY→VAL",
            Rule::AnyToMulti => "ANY→MULTI",
            Rule::AnyToSubset => "ANY→SUBSET",
            Rule::Noop => "Noop",
            Rule::MergeAny => "MergeANY",
        };
        write!(f, "{s}")
    }
}

/// One concrete rule application site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    /// The transformation rule to apply.
    pub rule: Rule,
    /// Index of the (first) tree involved.
    pub tree: usize,
    /// Target node id within the tree (unused for `Merge`/`Split` at root).
    pub node: u32,
    /// Second tree index for `Merge`; otherwise 0.
    pub other_tree: usize,
}

/// Enumerate all valid actions for a state. Each candidate is applied and
/// validated (re-binding all input queries); invalid candidates are
/// discarded, so every returned action is safe to take.
pub fn applicable_actions(forest: &Forest, w: &Workload) -> Vec<Action> {
    let mut out = Vec::new();
    for action in candidate_actions(forest, w) {
        if apply_action(forest, w, action).is_some() {
            out.push(action);
        }
    }
    out
}

/// Enumerate candidate actions by rule preconditions only (no validation).
pub fn candidate_actions(forest: &Forest, w: &Workload) -> Vec<Action> {
    let mut out = Vec::new();

    // Cross-tree rules. Bind once and analyze each tree once; the pairwise
    // merge check is then a cheap union-compatibility test.
    let assignments = forest.bind_all(w);
    let tree_infos: Vec<Vec<pi2_engine::QueryInfo>> = match &assignments {
        Some(a) => (0..forest.trees.len())
            .map(|t| forest.tree_infos(t, w, a))
            .collect(),
        None => vec![Vec::new(); forest.trees.len()],
    };
    for i in 0..forest.trees.len() {
        for j in 0..forest.trees.len() {
            if i < j && merge_compatible_infos(&tree_infos[i], &tree_infos[j]) {
                out.push(Action {
                    rule: Rule::Merge,
                    tree: i,
                    node: 0,
                    other_tree: j,
                });
            }
        }
        if splittable(&forest.trees[i]) {
            // Tree roots always have local id 0.
            out.push(Action {
                rule: Rule::Split,
                tree: i,
                node: 0,
                other_tree: 0,
            });
        }
    }

    // Node-local rules.
    for (ti, tree) in forest.trees.iter().enumerate() {
        let types = infer_types_cached(tree, &w.catalog);
        let mut nodes = Vec::new();
        tree.walk(&mut nodes);
        for n in nodes {
            // List-with-slots MULTI/SUBSET generalisation (Connect's
            // `IN (ANY(1,20), ANY(2,22))` → `IN (MULTI(ANY(…)))`).
            if let NodeKind::Syntax(k) = &n.kind {
                if k.is_list()
                    && n.is_dynamic()
                    && list_slots(k, n)
                        .and_then(|(_, slots)| slot_alternatives(&slots))
                        .is_some_and(|items| !items.is_empty())
                {
                    out.push(Action {
                        rule: Rule::AnyToMulti,
                        tree: ti,
                        node: n.id,
                        other_tree: 0,
                    });
                    out.push(Action {
                        rule: Rule::AnyToSubset,
                        tree: ti,
                        node: n.id,
                        other_tree: 0,
                    });
                }
            }
            if n.kind == NodeKind::Any {
                let alts: Vec<&DNode> = non_marker_children(n);
                let non_empty: Vec<&DNode> = alts
                    .iter()
                    .copied()
                    .filter(|c| !c.is_empty_node())
                    .collect();
                // Noop: single distinct child, no empty alternative.
                let distinct: std::collections::HashSet<&DNode> =
                    non_empty.iter().copied().collect();
                if distinct.len() == 1 && non_empty.len() == alts.len() {
                    out.push(Action {
                        rule: Rule::Noop,
                        tree: ti,
                        node: n.id,
                        other_tree: 0,
                    });
                }
                // MergeANY: a cascade of ANY nodes.
                if non_empty.iter().any(|c| c.kind == NodeKind::Any) {
                    out.push(Action {
                        rule: Rule::MergeAny,
                        tree: ti,
                        node: n.id,
                        other_tree: 0,
                    });
                }
                // PushANY: all alternatives share a root kind.
                if non_empty.len() >= 2
                    && non_empty.len() == alts.len()
                    && same_syntax_kind(&non_empty)
                {
                    out.push(Action {
                        rule: Rule::PushAny,
                        tree: ti,
                        node: n.id,
                        other_tree: 0,
                    });
                }
                // Partition: ≥3 alternatives forming ≥2 clusters, at
                // least one non-singular.
                if non_empty.len() >= 3 && non_empty.len() == alts.len() {
                    let clusters = cluster_children(&non_empty, w);
                    let n_clusters = clusters.iter().max().map(|m| m + 1).unwrap_or(0);
                    let has_nonsingular =
                        (0..n_clusters).any(|c| clusters.iter().filter(|&&x| x == c).count() >= 2);
                    if n_clusters >= 2 && has_nonsingular {
                        out.push(Action {
                            rule: Rule::Partition,
                            tree: ti,
                            node: n.id,
                            other_tree: 0,
                        });
                    }
                }
                // ANY→VAL: all alternatives are literals of a numeric or
                // attribute-specialised type.
                if !non_empty.is_empty()
                    && non_empty.len() == alts.len()
                    && non_empty
                        .iter()
                        .all(|c| matches!(c.kind, NodeKind::Syntax(SyntaxKind::Lit(_))))
                {
                    let ty = types.get(&n.id);
                    if ty.is_some_and(|t| t.is_num() || !t.attrs.is_empty()) {
                        out.push(Action {
                            rule: Rule::AnyToVal,
                            tree: ti,
                            node: n.id,
                            other_tree: 0,
                        });
                    }
                }
                // ANY→MULTI / ANY→SUBSET: alternatives are same-kind
                // list nodes.
                if non_empty.len() >= 2
                    && non_empty.len() == alts.len()
                    && same_syntax_kind(&non_empty)
                    && list_kind(non_empty[0]).is_some()
                {
                    out.push(Action {
                        rule: Rule::AnyToMulti,
                        tree: ti,
                        node: n.id,
                        other_tree: 0,
                    });
                    out.push(Action {
                        rule: Rule::AnyToSubset,
                        tree: ti,
                        node: n.id,
                        other_tree: 0,
                    });
                }
                // PushOPT rules apply to OPT nodes (ANY with an Empty
                // child and exactly one non-empty alternative).
                if n.is_opt() && non_empty.len() == 1 {
                    let inner = non_empty[0];
                    if inner.is_dynamic() && !inner.is_choice() {
                        out.push(Action {
                            rule: Rule::PushOpt1,
                            tree: ti,
                            node: n.id,
                            other_tree: 0,
                        });
                    }
                    if list_kind(inner).is_some() && inner.children.len() >= 2 {
                        out.push(Action {
                            rule: Rule::PushOpt2,
                            tree: ti,
                            node: n.id,
                            other_tree: 0,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Apply an action, returning the transformed (validated) forest, or
/// `None` if the action is invalid or breaks expressiveness.
///
/// Only the tree(s) an action rewrites are copied; every other tree is
/// structurally shared with the input forest (`Arc`), so the cost of a
/// rule application is proportional to the touched tree, not the state.
pub fn apply_action(forest: &Forest, w: &Workload, action: Action) -> Option<Forest> {
    let mut trees = forest.trees.clone();
    match action.rule {
        Rule::Merge => {
            if action.other_tree >= trees.len() || action.tree >= trees.len() {
                return None;
            }
            let b = trees.remove(action.other_tree.max(action.tree));
            let a = trees.remove(action.other_tree.min(action.tree));
            // Merging two ANY roots concatenates their children.
            let merged = match (&a.kind, &b.kind) {
                (NodeKind::Any, NodeKind::Any) => {
                    let mut children = a.children.clone();
                    children.extend(b.children.clone());
                    DNode::any(children)
                }
                (NodeKind::Any, _) => {
                    let mut children = a.children.clone();
                    children.push(b.to_dnode());
                    DNode::any(children)
                }
                (_, NodeKind::Any) => {
                    let mut children = vec![a.to_dnode()];
                    children.extend(b.children.clone());
                    DNode::any(children)
                }
                _ => DNode::any(vec![a.to_dnode(), b.to_dnode()]),
            };
            trees.insert(0, Arc::new(Tree::new(merged)));
        }
        Rule::Split => {
            let tree = trees.get(action.tree)?;
            if tree.kind != NodeKind::Any {
                return None;
            }
            let children = tree.children.clone();
            trees.remove(action.tree);
            for (k, c) in children.into_iter().enumerate() {
                if c.is_empty_node() {
                    return None;
                }
                trees.insert(action.tree + k, Arc::new(Tree::new(c)));
            }
        }
        _ => {
            let tree = trees.get(action.tree)?;
            // Copy only the tree this rule rewrites.
            let mut root = tree.to_dnode();
            let target = root.find_mut(action.node)?;
            let replacement = match action.rule {
                Rule::Noop => rule_noop(target)?,
                Rule::MergeAny => rule_merge_any(target)?,
                Rule::PushAny => rule_push_any(target)?,
                Rule::Partition => rule_partition(target, w)?,
                Rule::AnyToVal => rule_any_to_val(target)?,
                Rule::AnyToMulti => rule_any_to_multi(target)?,
                Rule::AnyToSubset => rule_any_to_subset(target)?,
                Rule::PushOpt1 => rule_push_opt1(target)?,
                Rule::PushOpt2 => rule_push_opt2(target)?,
                _ => unreachable!(),
            };
            *target = replacement;
            trees[action.tree] = Arc::new(Tree::new(root));
        }
    }
    let next = Forest::from_trees(trees);
    // Enforce §6.1: the new state must still express every input query.
    next.bind_all(w)?;
    // Reject the identity transformation (MCTS would loop on it).
    if &next == forest {
        return None;
    }
    Some(next)
}

/// Apply refactoring/mutation/simplification rules to a fixpoint (bounded
/// by `max_steps`): `Noop` and `MergeANY` to simplify, `PushANY` to isolate
/// differences, `ANY→VAL` to generalise literal choices. Every step is an
/// ordinary validated [`apply_action`], so the result stays inside the
/// search space; this is a *policy* (used by MCTS rollouts to shorten
/// action chains), not a new rule.
pub fn canonicalize(forest: &Forest, w: &Workload, max_steps: usize) -> Forest {
    let mut state = forest.clone();
    for _ in 0..max_steps {
        let candidates = candidate_actions(&state, w);
        let mut next: Option<Forest> = None;
        for rule in [Rule::Noop, Rule::MergeAny, Rule::PushAny, Rule::AnyToVal] {
            for a in candidates.iter().filter(|a| a.rule == rule) {
                if let Some(s) = apply_action(&state, w, *a) {
                    next = Some(s);
                    break;
                }
            }
            if next.is_some() {
                break;
            }
        }
        match next {
            Some(s) => state = s,
            None => break,
        }
    }
    state
}

/// Merge precondition (Figure 13): the two trees' result schemas must be
/// union compatible. We check by analyzing the input queries each tree
/// expresses and attempting a combined result schema.
fn merge_compatible_infos(
    infos_i: &[pi2_engine::QueryInfo],
    infos_j: &[pi2_engine::QueryInfo],
) -> bool {
    if infos_i.is_empty() || infos_j.is_empty() {
        return false;
    }
    let mut infos = infos_i.to_vec();
    infos.extend(infos_j.iter().cloned());
    crate::schema::result_schema(&infos).is_some()
}

/// Split precondition: the tree is rooted at an ANY with ≥ 2 non-empty
/// children.
fn splittable(tree: &DNode) -> bool {
    tree.kind == NodeKind::Any
        && tree.children.len() >= 2
        && tree.children.iter().all(|c| !c.is_empty_node())
}

// ---------------------------------------------------------------------------
// Rule implementations (each takes the target node, returns its replacement)
// ---------------------------------------------------------------------------

/// Children of an ANY excluding PushOPT1 group markers.
fn non_marker_children(n: &DNode) -> Vec<&DNode> {
    n.children
        .iter()
        .filter(|c| !(matches!(c.kind, NodeKind::CoOpt { .. }) && c.children.is_empty()))
        .collect()
}

fn same_syntax_kind(children: &[&DNode]) -> bool {
    let Some(first) = children.first() else {
        return false;
    };
    let NodeKind::Syntax(k0) = &first.kind else {
        return false;
    };
    children
        .iter()
        .all(|c| matches!(&c.kind, NodeKind::Syntax(k) if k == k0))
}

fn list_kind(node: &DNode) -> Option<&SyntaxKind> {
    match &node.kind {
        NodeKind::Syntax(k) if k.is_list() => Some(k),
        _ => None,
    }
}

fn rule_noop(target: &DNode) -> Option<DNode> {
    let non_empty: Vec<&DNode> = non_marker_children(target)
        .into_iter()
        .filter(|c| !c.is_empty_node())
        .collect();
    let distinct: std::collections::HashSet<&DNode> = non_empty.iter().copied().collect();
    if distinct.len() == 1 && non_empty.len() == non_marker_children(target).len() {
        Some(non_empty[0].clone())
    } else {
        None
    }
}

fn rule_merge_any(target: &DNode) -> Option<DNode> {
    if target.kind != NodeKind::Any {
        return None;
    }
    let mut children: Vec<DNode> = Vec::new();
    let mut changed = false;
    for c in &target.children {
        if c.kind == NodeKind::Any {
            children.extend(c.children.clone());
            changed = true;
        } else {
            children.push(c.clone());
        }
    }
    if !changed {
        return None;
    }
    // Deduplicate alternatives; keep at most one Empty.
    let mut dedup: Vec<DNode> = Vec::new();
    for c in children {
        if !dedup.contains(&c) {
            dedup.push(c);
        }
    }
    Some(DNode::any(dedup))
}

/// PushANY: all alternatives share a root; push the ANY into the children.
/// For fixed-arity nodes children are merged positionally; for list nodes
/// they are aligned by structural signature, introducing `OPT` for elements
/// present in only some alternatives.
fn rule_push_any(target: &DNode) -> Option<DNode> {
    let alts = non_marker_children(target);
    if alts.iter().any(|c| c.is_empty_node()) {
        return None;
    }
    if !same_syntax_kind(&alts) || alts.len() < 2 {
        return None;
    }
    let NodeKind::Syntax(kind) = &alts[0].kind else {
        return None;
    };
    if kind.is_list() {
        push_any_list(kind.clone(), &alts)
    } else {
        push_any_positional(kind.clone(), &alts)
    }
}

/// Positional alignment for fixed-arity nodes; trailing optional children
/// (e.g. aliases) become OPTs.
fn push_any_positional(kind: SyntaxKind, alts: &[&DNode]) -> Option<DNode> {
    let max_arity = alts.iter().map(|c| c.children.len()).max()?;
    let mut children = Vec::with_capacity(max_arity);
    for j in 0..max_arity {
        let mut variants: Vec<DNode> = Vec::new();
        let mut missing = false;
        for alt in alts {
            match alt.children.get(j) {
                Some(c) => {
                    if !variants.contains(c) {
                        variants.push(c.clone());
                    }
                }
                None => missing = true,
            }
        }
        children.push(merge_variants(variants, missing));
    }
    Some(DNode::syntax(kind, children))
}

/// Merge a set of variant subtrees for one aligned slot. When the variants
/// share a root kind the ANY is pushed recursively (one `PushANY`
/// application reaches the fixpoint for a subtree — Figure 12 shows the rule
/// applied iteratively; collapsing the chain is an optimisation that keeps
/// every fully-pushed state reachable in a single search step).
fn merge_variants(mut variants: Vec<DNode>, missing: bool) -> DNode {
    let merged = if variants.len() == 1 {
        variants.pop().unwrap()
    } else {
        let refs: Vec<&DNode> = variants.iter().collect();
        if same_syntax_kind(&refs) {
            let NodeKind::Syntax(kind) = &variants[0].kind else {
                unreachable!()
            };
            let pushed = if kind.is_list() {
                push_any_list(kind.clone(), &refs)
            } else {
                push_any_positional(kind.clone(), &refs)
            };
            pushed.unwrap_or_else(|| DNode::any(variants))
        } else {
            DNode::any(variants)
        }
    };
    if missing {
        DNode::any(vec![merged, DNode::empty()])
    } else {
        merged
    }
}

/// Structural signature used to align list elements across alternatives.
/// Predicates align by (shape, column); other nodes by root label.
fn slot_signature(node: &DNode) -> String {
    fn head_column(n: &DNode) -> String {
        match &n.kind {
            NodeKind::Syntax(SyntaxKind::ColumnRef { column, .. }) => column.clone(),
            _ => n.children.first().map(head_column).unwrap_or_default(),
        }
    }
    match &node.kind {
        NodeKind::Syntax(SyntaxKind::Compare(_)) => format!("cmp:{}", head_column(node)),
        NodeKind::Syntax(SyntaxKind::Between { .. }) => {
            format!("between:{}", head_column(node))
        }
        NodeKind::Syntax(SyntaxKind::InList { .. }) => format!("in:{}", head_column(node)),
        NodeKind::Syntax(SyntaxKind::SelectItem) => {
            // Align select items by position-independent expression head.
            format!(
                "item:{}",
                node.children
                    .first()
                    .map(slot_signature)
                    .unwrap_or_default()
            )
        }
        NodeKind::Syntax(SyntaxKind::ColumnRef { column, .. }) => format!("col:{column}"),
        NodeKind::Syntax(SyntaxKind::FuncCall(f)) => format!("func:{f}"),
        NodeKind::Syntax(SyntaxKind::Lit(_)) => "lit".into(),
        NodeKind::Syntax(k) => format!("k:{}", k.label()),
        // Choice nodes align by their first concrete alternative so that
        // partially-merged trees keep merging cleanly.
        NodeKind::Any | NodeKind::CoOpt { .. } => node
            .children
            .iter()
            .find(|c| {
                !c.is_empty_node() && !c.children.is_empty()
                    || matches!(c.kind, NodeKind::Syntax(_)) && !c.is_empty_node()
            })
            .map(slot_signature)
            .unwrap_or_else(|| "choice".into()),
        NodeKind::Val => "lit".into(),
        NodeKind::Multi | NodeKind::Subset => node
            .children
            .first()
            .map(slot_signature)
            .unwrap_or_else(|| "items".into()),
    }
}

/// Alignment for list nodes. Same-length lists outside WHERE align
/// positionally (select lists choose the i-th item: `SELECT date,
/// cases|deaths`); everything else aligns by structural signature, with
/// OPTs for slots missing from some alternatives (WHERE conjuncts come and
/// go per query).
fn push_any_list(kind: SyntaxKind, alts: &[&DNode]) -> Option<DNode> {
    let same_len = alts
        .windows(2)
        .all(|w| w[0].children.len() == w[1].children.len());
    let is_where = matches!(kind, SyntaxKind::Where | SyntaxKind::And);
    if same_len && !is_where {
        return push_any_positional(kind, alts);
    }
    push_any_list_by_signature(kind, alts)
}

/// Signature-based alignment for list nodes (WHERE conjunct lists, ragged
/// select lists, …). Produces one slot per (signature, occurrence), ordered
/// by first appearance; slots missing from some alternatives become OPT.
fn push_any_list_by_signature(kind: SyntaxKind, alts: &[&DNode]) -> Option<DNode> {
    // slot key = (signature, occurrence index within its list)
    let mut slot_order: Vec<(String, usize)> = Vec::new();
    let mut slot_contents: HashMap<(String, usize), Vec<DNode>> = HashMap::new();
    let mut slot_presence: HashMap<(String, usize), usize> = HashMap::new();
    // Precedence edges: slot a must come before slot b when a precedes b in
    // some alternative (sequence matching requires the merged slot order to
    // be a supersequence of every alternative's order).
    let mut edges: Vec<(SlotKey, SlotKey)> = Vec::new();
    for alt in alts {
        let mut occurrence: HashMap<String, usize> = HashMap::new();
        let mut prev_keys: Vec<SlotKey> = Vec::new();
        for item in &alt.children {
            let sig = slot_signature(item);
            let occ = occurrence.entry(sig.clone()).or_insert(0);
            let key = (sig, *occ);
            *occ += 1;
            if !slot_order.contains(&key) {
                slot_order.push(key.clone());
            }
            let entry = slot_contents.entry(key.clone()).or_default();
            if !entry.contains(item) {
                entry.push((*item).clone());
            }
            *slot_presence.entry(key.clone()).or_insert(0) += 1;
            for p in &prev_keys {
                let e = (p.clone(), key.clone());
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
            prev_keys.push(key);
        }
    }
    // Topological sort (Kahn), breaking ties by first appearance; fall back
    // to first-appearance order when the precedence graph has a cycle.
    let slot_order = topo_sort(&slot_order, &edges).unwrap_or(slot_order);
    let mut children = Vec::with_capacity(slot_order.len());
    for key in &slot_order {
        let variants = slot_contents.remove(key)?;
        let missing = slot_presence[key] < alts.len();
        children.push(merge_variants(variants, missing));
    }
    Some(DNode::syntax(kind, children))
}

/// A slot key: (structural signature, occurrence index).
type SlotKey = (String, usize);

/// Kahn's algorithm over slot keys; `None` when cyclic.
fn topo_sort(nodes: &[SlotKey], edges: &[(SlotKey, SlotKey)]) -> Option<Vec<SlotKey>> {
    let mut in_degree: HashMap<&SlotKey, usize> = nodes.iter().map(|n| (n, 0)).collect();
    for (_, b) in edges {
        if let Some(d) = in_degree.get_mut(b) {
            *d += 1;
        }
    }
    let mut out = Vec::with_capacity(nodes.len());
    let mut ready: Vec<&SlotKey> = nodes
        .iter()
        .filter(|n| in_degree.get(n) == Some(&0))
        .collect();
    while let Some(n) = ready.first().copied() {
        ready.remove(0);
        out.push(n.clone());
        for (a, b) in edges {
            if a == n {
                if let Some(d) = in_degree.get_mut(b) {
                    *d -= 1;
                    if *d == 0 {
                        // Insert preserving first-appearance tie order.
                        let pos = nodes.iter().position(|x| x == b).unwrap_or(0);
                        let insert_at = ready
                            .iter()
                            .position(|r| nodes.iter().position(|x| x == *r).unwrap_or(0) > pos)
                            .unwrap_or(ready.len());
                        ready.insert(insert_at, b);
                    }
                }
            }
        }
    }
    if out.len() == nodes.len() {
        Some(out)
    } else {
        None
    }
}

/// Partition: cluster an ANY's children; each non-singular cluster becomes a
/// nested ANY.
fn rule_partition(target: &DNode, w: &Workload) -> Option<DNode> {
    let alts: Vec<&DNode> = non_marker_children(target);
    if alts.len() < 3 {
        return None;
    }
    let clusters = cluster_children(&alts, w);
    let n_clusters = clusters.iter().max()? + 1;
    if n_clusters < 2 {
        return None;
    }
    let mut grouped: Vec<Vec<DNode>> = vec![Vec::new(); n_clusters];
    for (c, node) in clusters.iter().zip(alts.iter()) {
        grouped[*c].push((*node).clone());
    }
    let mut children = Vec::with_capacity(n_clusters);
    for group in grouped {
        if group.len() == 1 {
            children.push(group.into_iter().next().unwrap());
        } else {
            children.push(DNode::any(group));
        }
    }
    Some(DNode::any(children))
}

/// Cluster ANY children. Query-rooted children cluster by result-schema
/// signature (the paper partitions input queries by result schema); other
/// children cluster by root label.
fn cluster_children(children: &[&DNode], w: &Workload) -> Vec<usize> {
    let mut keys: Vec<String> = Vec::with_capacity(children.len());
    for c in children {
        let key = if matches!(c.kind, NodeKind::Syntax(SyntaxKind::Query)) {
            query_schema_signature(c, w).unwrap_or_else(|| format!("query:{}", c.children.len()))
        } else {
            match &c.kind {
                NodeKind::Syntax(k) => format!("k:{}", k.label()),
                other => format!("c:{other:?}"),
            }
        };
        keys.push(key);
    }
    let mut order: Vec<String> = Vec::new();
    keys.iter()
        .map(|k| {
            if let Some(i) = order.iter().position(|o| o == k) {
                i
            } else {
                order.push(k.clone());
                order.len() - 1
            }
        })
        .collect()
}

/// Signature of a choice-free query subtree: output arity + column names +
/// types. Name-sensitive so that Partition separates e.g. the Filter log's
/// three group-by attributes while still grouping literal-only variants.
/// Memoized per (subtree fingerprint, catalogue) — the same query subtrees
/// are re-clustered by every Partition candidate along a search path.
fn query_schema_signature(node: &DNode, w: &Workload) -> Option<String> {
    if node.is_dynamic() {
        return None;
    }
    use pi2_data::ShardedMemo;
    use std::sync::OnceLock;
    // Process-global lock-sharded memo (signatures are pure in the key).
    static SIG_CACHE: OnceLock<ShardedMemo<(u64, u64), Option<String>>> = OnceLock::new();
    let cache = SIG_CACHE.get_or_init(|| ShardedMemo::new(50_000 / pi2_data::memo::DEFAULT_SHARDS));
    let key = (structural_fingerprint(node), w.catalog.fingerprint());
    cache.get_or_insert_with(&key, || {
        let q = crate::gst::raise_query(node).ok()?;
        let info = analyze_query(&q, &w.catalog).ok()?;
        let types: Vec<(String, DataType)> = info
            .cols
            .iter()
            .map(|c| (c.name.to_ascii_lowercase(), c.ty.dtype()))
            .collect();
        Some(format!("{}:{types:?}", info.cols.len()))
    })
}

/// ANY→VAL: relax a literal choice to its full (attribute-typed) domain.
fn rule_any_to_val(target: &DNode) -> Option<DNode> {
    let alts = non_marker_children(target);
    if alts.is_empty()
        || !alts
            .iter()
            .all(|c| matches!(c.kind, NodeKind::Syntax(SyntaxKind::Lit(_))))
    {
        return None;
    }
    Some(DNode::val(alts.into_iter().cloned().collect()))
}

/// ANY→MULTI (two shapes):
/// * an ANY over same-kind lists becomes that list repeating an ANY over
///   the distinct items (Figure 13's diagram);
/// * a list node whose item slots are literal choices (the post-`PushANY`
///   shape, e.g. `IN (ANY(1,20), ANY(2,22))`) becomes the list over
///   `MULTI(ANY(all literals))` — the shape multi-click selection binds.
fn rule_any_to_multi(target: &DNode) -> Option<DNode> {
    if target.kind == NodeKind::Any {
        let alts = non_marker_children(target);
        let kind = list_kind(alts.first()?)?.clone();
        if !same_syntax_kind(&alts) {
            return None;
        }
        let (head, slot_lists) = split_list_heads(&kind, &alts);
        let mut items: Vec<DNode> = Vec::new();
        for slots in &slot_lists {
            for item in slots.iter() {
                if !items.contains(item) {
                    items.push((*item).clone());
                }
            }
        }
        if items.is_empty() {
            return None;
        }
        let template = if items.len() == 1 {
            items.pop().unwrap()
        } else {
            DNode::any(items)
        };
        let mut children = head;
        children.push(DNode::multi(template));
        return Some(DNode::syntax(kind, children));
    }
    // List-with-slots shape.
    let kind = list_kind(target)?.clone();
    let (head, slots) = list_slots(&kind, target)?;
    let items = slot_alternatives(&slots)?;
    if items.is_empty() {
        return None;
    }
    let template = if items.len() == 1 {
        items.into_iter().next().unwrap()
    } else {
        DNode::any(items)
    };
    let mut children = head;
    children.push(DNode::multi(template));
    Some(DNode::syntax(kind, children))
}

/// ANY→SUBSET, with the same two shapes as [`rule_any_to_multi`].
fn rule_any_to_subset(target: &DNode) -> Option<DNode> {
    if target.kind == NodeKind::Any {
        let alts = non_marker_children(target);
        let kind = list_kind(alts.first()?)?.clone();
        if !same_syntax_kind(&alts) {
            return None;
        }
        let (head, slot_lists) = split_list_heads(&kind, &alts);
        let mut items: Vec<DNode> = Vec::new();
        for slots in &slot_lists {
            for item in slots.iter() {
                if !items.contains(item) {
                    items.push((*item).clone());
                }
            }
        }
        // Each alternative must be an ordered subsequence of `items`.
        for slots in &slot_lists {
            let mut pos = 0usize;
            for item in slots.iter() {
                match items[pos..].iter().position(|i| i == *item) {
                    Some(off) => pos += off + 1,
                    None => return None,
                }
            }
        }
        let mut children = head;
        children.push(DNode::subset(items));
        return Some(DNode::syntax(kind, children));
    }
    let kind = list_kind(target)?.clone();
    let (head, slots) = list_slots(&kind, target)?;
    let items = slot_alternatives(&slots)?;
    if items.len() < 2 {
        return None;
    }
    let mut children = head;
    children.push(DNode::subset(items));
    Some(DNode::syntax(kind, children))
}

/// Fixed head children of a list kind (`IN`'s tested expression), shared by
/// every alternative.
fn split_list_heads<'a>(
    kind: &SyntaxKind,
    alts: &[&'a DNode],
) -> (Vec<DNode>, Vec<Vec<&'a DNode>>) {
    let head_len = list_head_len(kind);
    let head: Vec<DNode> = alts
        .first()
        .map(|a| a.children.iter().take(head_len).cloned().collect())
        .unwrap_or_default();
    // Alternatives with differing heads cannot share the generalisation;
    // signal by returning empty slots (callers then produce no items and
    // bail, or the rebind validation rejects the result).
    let consistent = alts
        .iter()
        .all(|a| a.children.len() >= head_len && a.children.iter().take(head_len).eq(head.iter()));
    if !consistent {
        return (head, vec![]);
    }
    let slots = alts
        .iter()
        .map(|a| a.children.iter().skip(head_len).collect())
        .collect();
    (head, slots)
}

fn list_head_len(kind: &SyntaxKind) -> usize {
    match kind {
        SyntaxKind::InList { .. } => 1,
        _ => 0,
    }
}

/// The item slots of a list node, when all alternatives share the head.
fn list_slots<'a>(kind: &SyntaxKind, node: &'a DNode) -> Option<(Vec<DNode>, Vec<&'a DNode>)> {
    let head_len = list_head_len(kind);
    if node.children.len() < head_len + 2 {
        return None; // need at least two item slots to generalise
    }
    let head = node.children.iter().take(head_len).cloned().collect();
    let slots = node.children.iter().skip(head_len).collect();
    Some((head, slots))
}

/// The union of literal alternatives over enumerable slots (each slot a
/// literal or an ANY over literals); `None` when some slot is not
/// enumerable.
fn slot_alternatives(slots: &[&DNode]) -> Option<Vec<DNode>> {
    let mut items: Vec<DNode> = Vec::new();
    for slot in slots {
        match &slot.kind {
            NodeKind::Syntax(SyntaxKind::Lit(_)) => {
                if !items.contains(slot) {
                    items.push((*slot).clone());
                }
            }
            NodeKind::Any => {
                for c in non_marker_children(slot) {
                    if c.is_empty_node() {
                        continue;
                    }
                    if !matches!(c.kind, NodeKind::Syntax(SyntaxKind::Lit(_))) {
                        return None;
                    }
                    if !items.contains(c) {
                        items.push(c.clone());
                    }
                }
            }
            _ => return None,
        }
    }
    Some(items)
}

/// Fresh group id for a PushOPT1 pair, derived from the target node id (ids
/// are globally unique within a forest at application time).
fn fresh_group(target: &DNode) -> u32 {
    target.id.wrapping_mul(2).wrapping_add(1)
}

/// PushOPT1: `OPT(x)` where `x` contains choice nodes → `CO-OPT(x')` where
/// the first choice node inside `x` becomes `OPT(choice)` linked by a group
/// id. The subtree then exists exactly when the pushed-down OPT is present.
fn rule_push_opt1(target: &DNode) -> Option<DNode> {
    if !target.is_opt() {
        return None;
    }
    let inner = target.children.iter().find(|c| !c.is_empty_node())?;
    if !inner.is_dynamic() || inner.is_choice() {
        return None;
    }
    let group = fresh_group(target);
    // Wrap the first (DFS) choice node inside `inner` with a linked OPT.
    let mut new_inner = inner.clone();
    if !wrap_first_choice(&mut new_inner, group) {
        return None;
    }
    Some(DNode {
        id: 0,
        kind: NodeKind::CoOpt { group },
        children: vec![new_inner],
    })
}

fn wrap_first_choice(node: &mut DNode, group: u32) -> bool {
    for c in &mut node.children {
        if c.is_choice() {
            let choice = c.clone();
            let marker = DNode {
                id: 0,
                kind: NodeKind::CoOpt { group },
                children: vec![],
            };
            *c = DNode::any(vec![choice, DNode::empty(), marker]);
            return true;
        }
        if wrap_first_choice(c, group) {
            return true;
        }
    }
    false
}

/// PushOPT2: `OPT(List(x, y, z))` → `List(OPT(x), OPT(y), OPT(z))`,
/// increasing expressiveness (any subset instead of all-or-nothing).
fn rule_push_opt2(target: &DNode) -> Option<DNode> {
    if !target.is_opt() {
        return None;
    }
    let inner = target.children.iter().find(|c| !c.is_empty_node())?;
    let kind = list_kind(inner)?.clone();
    if inner.children.len() < 2 {
        return None;
    }
    let children = inner
        .children
        .iter()
        .map(|c| DNode::any(vec![c.clone(), DNode::empty()]))
        .collect();
    Some(DNode::syntax(kind, children))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_query;
    use crate::forest::expresses;
    use pi2_data::{Catalog, Table, Value};
    use pi2_sql::parse_query;

    fn workload(sqls: &[&str]) -> Workload {
        let mut catalog = Catalog::new();
        let t = Table::from_rows(
            vec![
                ("p", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Int),
            ],
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(1), Value::Int(20)],
                vec![Value::Int(3), Value::Int(2), Value::Int(30)],
            ],
        )
        .unwrap();
        catalog.add_table("T", t, vec!["p"]);
        let c = Table::from_rows(
            vec![("avgc", DataType::Float)],
            vec![vec![Value::Float(1.0)]],
        )
        .unwrap();
        catalog.add_table("C", c, vec![]);
        Workload::new(
            sqls.iter().map(|s| parse_query(s).unwrap()).collect(),
            catalog,
        )
    }

    fn act(forest: &Forest, w: &Workload, rule: Rule) -> Option<(Action, Forest)> {
        applicable_actions(forest, w)
            .into_iter()
            .find(|a| a.rule == rule)
            .map(|a| (a, apply_action(forest, w, a).unwrap()))
    }

    /// All applicable actions preserve expressiveness by construction.
    #[test]
    fn all_actions_preserve_expressiveness() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
            "SELECT a, count(*) FROM T GROUP BY a",
        ]);
        let f = Forest::from_workload(&w);
        for a in applicable_actions(&f, &w) {
            let next = apply_action(&f, &w, a).unwrap();
            for q in &w.queries {
                assert!(expresses(&next, q), "{} broke expressiveness", a.rule);
            }
        }
    }

    #[test]
    fn merge_combines_two_trees() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
        ]);
        let f = Forest::from_workload(&w);
        let (_, next) = act(&f, &w, Rule::Merge).expect("merge applicable");
        assert_eq!(next.trees.len(), 1);
        assert_eq!(next.trees[0].kind, NodeKind::Any);
    }

    #[test]
    fn merge_requires_union_compatibility() {
        // Arity 1 vs arity 2 outputs are not union compatible.
        let w = workload(&["SELECT p FROM T", "SELECT p, a FROM T"]);
        let f = Forest::from_workload(&w);
        assert!(
            !applicable_actions(&f, &w)
                .iter()
                .any(|a| a.rule == Rule::Merge),
            "incompatible schemas must not merge"
        );
    }

    #[test]
    fn split_undoes_merge() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
        ]);
        let f = Forest::from_workload(&w);
        let (_, merged) = act(&f, &w, Rule::Merge).unwrap();
        let (_, split) = act(&merged, &w, Rule::Split).expect("split applicable");
        assert_eq!(split.trees.len(), 2);
        assert_eq!(split, f);
    }

    /// Figure 3(a) → 3(b): PushANY pushes the ANY below the shared `=` root.
    #[test]
    fn push_any_on_predicates() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE b = 2 GROUP BY p",
        ]);
        let f = Forest::from_workload(&w);
        let (_, merged) = act(&f, &w, Rule::Merge).unwrap();
        // Merge → ANY(Q1, Q2); PushANY on the root gives a single Query with
        // nested ANYs at the differing positions.
        let (_, pushed) = act(&merged, &w, Rule::PushAny).expect("PushANY applicable");
        assert_eq!(pushed.trees.len(), 1);
        assert!(matches!(
            pushed.trees[0].kind,
            NodeKind::Syntax(SyntaxKind::Query)
        ));
        // Still expresses both queries.
        for q in &w.queries {
            assert!(expresses(&pushed, q));
        }
        // The WHERE now contains one conjunct... for (cmp:a vs cmp:b) the
        // signatures differ, so each predicate became optional.
        let where_ = &pushed.trees[0].children[3];
        assert!(
            where_.children.iter().any(|c| c.is_opt() || c.is_choice()),
            "expected choice structure in WHERE: {}",
            pushed.trees[0].render()
        );
    }

    /// Repeated PushANY on same-column predicates isolates the literal.
    #[test]
    fn push_any_isolates_literals() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
        ]);
        let f = Forest::from_workload(&w);
        let (_, merged) = act(&f, &w, Rule::Merge).unwrap();
        let (_, pushed) = act(&merged, &w, Rule::PushAny).unwrap();
        // Where slot `cmp:a` present in both → single Compare with ANY on
        // the literal side.
        let where_ = &pushed.trees[0].children[3];
        assert_eq!(where_.children.len(), 1);
        let pred = &where_.children[0];
        assert!(matches!(
            pred.kind,
            NodeKind::Syntax(SyntaxKind::Compare(_))
        ));
        let lit_any = &pred.children[1];
        assert_eq!(lit_any.kind, NodeKind::Any);
        assert_eq!(lit_any.children.len(), 2);
    }

    /// Figure 3(b) → 3(c): ANY of numeric literals lifts to VAL.
    #[test]
    fn any_to_val_on_numeric_literals() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
        ]);
        let f = Forest::from_workload(&w);
        let (_, merged) = act(&f, &w, Rule::Merge).unwrap();
        let (_, pushed) = act(&merged, &w, Rule::PushAny).unwrap();
        let (_, valed) = act(&pushed, &w, Rule::AnyToVal).expect("ANY→VAL applicable");
        assert_eq!(valed.choice_count(), 1);
        let val = valed.trees[0].choice_nodes()[0];
        assert_eq!(val.kind, NodeKind::Val);
        // VAL generalises: now expresses literals beyond the inputs.
        assert!(expresses(
            &valed,
            &parse_query("SELECT p, count(*) FROM T WHERE a = 77 GROUP BY p").unwrap()
        ));
    }

    #[test]
    fn noop_removes_single_child_any() {
        let w = workload(&["SELECT p FROM T"]);
        let f = Forest::new(vec![DNode::any(vec![w.gsts[0].clone()])]);
        let (_, simplified) = act(&f, &w, Rule::Noop).expect("noop applicable");
        assert_eq!(
            simplified.trees[0].kind,
            NodeKind::Syntax(SyntaxKind::Query)
        );
    }

    #[test]
    fn merge_any_flattens_cascades() {
        let w = workload(&[
            "SELECT p FROM T WHERE a = 1",
            "SELECT p FROM T WHERE a = 2",
            "SELECT p FROM T WHERE b = 1",
        ]);
        let nested = Forest::new(vec![DNode::any(vec![
            DNode::any(vec![w.gsts[0].clone(), w.gsts[1].clone()]),
            w.gsts[2].clone(),
        ])]);
        let (_, flat) = act(&nested, &w, Rule::MergeAny).expect("MergeANY applicable");
        assert_eq!(flat.trees[0].kind, NodeKind::Any);
        assert_eq!(flat.trees[0].children.len(), 3);
    }

    #[test]
    fn partition_groups_by_result_schema() {
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
            "SELECT p FROM T",
        ]);
        // Merge q1 and q2 trees first (q3 has incompatible schema), then
        // force a 3-way ANY to exercise Partition.
        let all = Forest::new(vec![DNode::any(w.gsts.clone())]);
        let (_, part) = act(&all, &w, Rule::Partition).expect("partition applicable");
        let root = &part.trees[0];
        assert_eq!(root.kind, NodeKind::Any);
        assert_eq!(root.children.len(), 2, "{}", root.render());
        // One child is the 2-query cluster.
        assert!(root
            .children
            .iter()
            .any(|c| c.kind == NodeKind::Any && c.children.len() == 2));
    }

    #[test]
    fn push_opt2_distributes_over_lists() {
        // In our canonical GST the list-alignment inside PushANY already
        // distributes OPTs over WHERE conjunct slots, so `PushOPT2`'s
        // natural application sites are nested list nodes; exercise the rule
        // mechanics directly: OPT(Or(x, y)) → Or(OPT(x), OPT(y)).
        let w = workload(&["SELECT p FROM T WHERE a = 1 OR b = 2"]);
        let or = w.gsts[0].children[3].children[0].clone();
        assert_eq!(or.kind, NodeKind::Syntax(SyntaxKind::Or));
        let mut opt = DNode::any(vec![or, DNode::empty()]);
        opt.renumber(0);
        let distributed = rule_push_opt2(&opt).expect("PushOPT2 fires on OPT(list)");
        assert_eq!(distributed.kind, NodeKind::Syntax(SyntaxKind::Or));
        assert_eq!(distributed.children.len(), 2);
        assert!(distributed.children.iter().all(|c| c.is_opt()));
        // Non-OPT targets are rejected.
        let plain = DNode::any(vec![w.gsts[0].clone()]);
        assert!(rule_push_opt2(&plain).is_none());
    }

    #[test]
    fn push_any_list_alignment_subsumes_opt_distribution() {
        // The end-to-end behaviour PushOPT2 aims for: predicates become
        // independently optional after Merge + PushANY.
        let w = workload(&["SELECT p FROM T WHERE a = 1 AND b = 2", "SELECT p FROM T"]);
        let f = Forest::from_workload(&w);
        let (_, merged) = act(&f, &w, Rule::Merge).unwrap();
        let (_, pushed) = act(&merged, &w, Rule::PushAny).unwrap();
        assert!(expresses(
            &pushed,
            &parse_query("SELECT p FROM T WHERE a = 1").unwrap()
        ));
        assert!(expresses(
            &pushed,
            &parse_query("SELECT p FROM T WHERE b = 2").unwrap()
        ));
    }

    #[test]
    fn push_opt1_links_co_opt() {
        // OPT over a predicate with an inner ANY: OPT(a = ANY(1, 2)).
        let w = workload(&[
            "SELECT p FROM T WHERE a = 1",
            "SELECT p FROM T WHERE a = 2",
            "SELECT p FROM T",
        ]);
        let mut tree = w.gsts[2].clone();
        let pred_gst = w.gsts[0].children[3].children[0].clone();
        let mut pred = pred_gst;
        let lit1 = pred.children[1].clone();
        let lit2 = w.gsts[1].children[3].children[0].children[1].clone();
        pred.children[1] = DNode::any(vec![lit1, lit2]);
        tree.children[3].children = vec![DNode::any(vec![pred, DNode::empty()])];
        let f = Forest::new(vec![tree]);
        assert!(f.bind_all(&w).is_some());
        let (_, pushed) = act(&f, &w, Rule::PushOpt1).expect("PushOPT1 applicable");
        // The transformed tree still expresses all three queries.
        for q in &w.queries {
            assert!(expresses(&pushed, q));
        }
        // And contains a CO-OPT wrapper.
        let mut nodes = Vec::new();
        pushed.trees[0].walk(&mut nodes);
        assert!(nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::CoOpt { .. }) && !n.children.is_empty()));
    }

    #[test]
    fn any_to_subset_on_conjunct_lists() {
        // Two WHERE lists: [a=1, b=2] and [a=1] — orderable as subsets.
        let w = workload(&[
            "SELECT p FROM T WHERE a = 1 AND b = 2",
            "SELECT p FROM T WHERE a = 1",
        ]);
        let f = Forest::from_workload(&w);
        let where1 = DNode::syntax(SyntaxKind::Where, w.gsts[0].children[3].children.clone());
        let where2 = DNode::syntax(SyntaxKind::Where, w.gsts[1].children[3].children.clone());
        let any = DNode::any(vec![where1, where2]);
        let mut tree = w.gsts[0].clone();
        tree.children[3] = any;
        // Hoisting ANY over the whole Where clause: rebuild as Query whose
        // children[3] is ANY(Where, Where) — our matcher aligns clause
        // wrappers positionally, so this works.
        let f2 = Forest::new(vec![tree]);
        assert!(f2.bind_all(&w).is_some());
        let (_, sub) = act(&f2, &w, Rule::AnyToSubset).expect("ANY→SUBSET applicable");
        // Subset generalises to dropping all predicates.
        assert!(expresses(&sub, &parse_query("SELECT p FROM T").unwrap()));
        assert!(expresses(
            &sub,
            &parse_query("SELECT p FROM T WHERE b = 2").unwrap()
        ));
        let _ = f;
    }

    #[test]
    fn any_to_multi_on_group_by_lists() {
        let w = workload(&[
            "SELECT count(*) FROM T GROUP BY p",
            "SELECT count(*) FROM T GROUP BY a",
        ]);
        let g1 = DNode::syntax(SyntaxKind::GroupBy, w.gsts[0].children[4].children.clone());
        let g2 = DNode::syntax(SyntaxKind::GroupBy, w.gsts[1].children[4].children.clone());
        let mut tree = w.gsts[0].clone();
        tree.children[4] = DNode::any(vec![g1, g2]);
        let f = Forest::new(vec![tree]);
        assert!(f.bind_all(&w).is_some());
        let (_, multi) = act(&f, &w, Rule::AnyToMulti).expect("ANY→MULTI applicable");
        // MULTI generalises to grouping by both columns.
        assert!(expresses(
            &multi,
            &parse_query("SELECT count(*) FROM T GROUP BY p, a").unwrap()
        ));
    }

    #[test]
    fn invalid_actions_rejected() {
        let w = workload(&["SELECT p FROM T"]);
        let f = Forest::from_workload(&w);
        // Out-of-range node id.
        let bogus = Action {
            rule: Rule::Noop,
            tree: 0,
            node: 9999,
            other_tree: 0,
        };
        assert!(apply_action(&f, &w, bogus).is_none());
        // Split on a non-ANY root.
        let bogus = Action {
            rule: Rule::Split,
            tree: 0,
            node: 0,
            other_tree: 0,
        };
        assert!(apply_action(&f, &w, bogus).is_none());
    }

    #[test]
    fn binding_still_possible_after_every_chain() {
        // Chase a short random-ish chain of actions and verify invariants.
        let w = workload(&[
            "SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM T WHERE a = 2 GROUP BY p",
            "SELECT a, count(*) FROM T GROUP BY a",
        ]);
        let mut state = Forest::from_workload(&w);
        for _ in 0..6 {
            let actions = applicable_actions(&state, &w);
            let Some(a) = actions.first() else { break };
            state = apply_action(&state, &w, *a).unwrap();
            assert!(state.bind_all(&w).is_some());
        }
    }

    #[test]
    fn gst_binding_sanity_for_merged_any() {
        let w = workload(&["SELECT p FROM T WHERE a = 1", "SELECT p FROM T WHERE a = 2"]);
        let f = Forest::from_workload(&w);
        let (_, merged) = act(&f, &w, Rule::Merge).unwrap();
        let b = bind_query(&merged.trees[0], &w.gsts[1]).unwrap();
        assert!(!b.is_empty());
    }
}
