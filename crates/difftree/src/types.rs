//! The Difftree type hierarchy (§3.2.1) and type inference.
//!
//! The paper uses a trivial primitive hierarchy `AST → str → num` plus
//! *attribute types*: a database attribute `T.a` specialises a primitive to
//! `a`'s domain. Leaf nodes get specialised types; internal nodes are `AST`.
//!
//! Inference has two parts:
//! 1. **Initialisation** from grammar annotations and the catalogue: numeric
//!    literals are `num`, string literals `str`, function calls take their
//!    catalogue return type, column references resolve to attribute types.
//! 2. **Specialisation**: in comparison contexts (`attr = val`, `attr
//!    BETWEEN lo AND hi`, `attr IN (…)`) the literal side inherits the
//!    attribute's type — this is what lets a `VAL` node become a slider over
//!    the attribute's domain (§2).

use crate::gst::{DNode, NodeKind, SyntaxKind};
use pi2_data::{Catalog, DataType, Value};
use pi2_sql::ast::Literal;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Primitive types, ordered by specialisation: `num ⊂ str ⊂ AST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrimType {
    /// `Num`.
    Num,
    /// `Str`.
    Str,
    /// `Ast`.
    Ast,
}

impl PrimType {
    /// Least common ancestor in the hierarchy (the paper's type union).
    pub fn union(self, other: PrimType) -> PrimType {
        self.max(other)
    }

    /// `t1` is compatible with `t2` if its domain is a subset of `t2`'s.
    pub fn compatible_with(self, other: PrimType) -> bool {
        self <= other
    }
}

impl fmt::Display for PrimType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimType::Num => "num",
            PrimType::Str => "str",
            PrimType::Ast => "AST",
        };
        write!(f, "{s}")
    }
}

/// A fully qualified attribute reference.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrRef {
    /// Base table name.
    pub table: String,
    /// Column name within the table.
    pub column: String,
    /// The column's storage type.
    pub dtype: DataType,
}

impl AttrRef {
    /// The `table.column` form.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.table, self.column)
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.qualified())
    }
}

/// A node type: a primitive plus the set of attributes it specialises.
/// `attrs` empty means a bare primitive; multiple attrs arise from unions
/// such as the `ANY(a, b)` example in §2 whose schema is `a ∪ b`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NodeType {
    /// The primitive (`num`/`str`/`AST`); `None` means `AST`.
    pub prim: Option<PrimTypeWrapper>,
    /// Source attributes this type specialises (may be a union).
    pub attrs: BTreeSet<AttrRef>,
}

/// Wrapper to keep `NodeType::default()` meaning "AST".
pub type PrimTypeWrapper = PrimType;

impl NodeType {
    /// The top type `AST`.
    pub fn ast() -> NodeType {
        NodeType {
            prim: Some(PrimType::Ast),
            attrs: BTreeSet::new(),
        }
    }

    /// The bare numeric primitive.
    pub fn num() -> NodeType {
        NodeType {
            prim: Some(PrimType::Num),
            attrs: BTreeSet::new(),
        }
    }

    /// The bare string primitive.
    pub fn str_() -> NodeType {
        NodeType {
            prim: Some(PrimType::Str),
            attrs: BTreeSet::new(),
        }
    }

    /// An attribute type specialising `table.column`.
    pub fn attr(table: &str, column: &str, dtype: DataType) -> NodeType {
        let prim = if dtype.is_numeric() {
            PrimType::Num
        } else {
            PrimType::Str
        };
        NodeType {
            prim: Some(prim),
            attrs: [AttrRef {
                table: table.into(),
                column: column.into(),
                dtype,
            }]
            .into_iter()
            .collect(),
        }
    }

    /// The primitive, defaulting to `AST`.
    pub fn prim(&self) -> PrimType {
        self.prim.unwrap_or(PrimType::Ast)
    }

    /// Whether the primitive is `num`.
    pub fn is_num(&self) -> bool {
        self.prim() == PrimType::Num
    }

    /// The paper's type union `T1 ∪ T2`: least common ancestor of the
    /// primitives, keeping attribute provenance from both sides.
    pub fn union(&self, other: &NodeType) -> NodeType {
        NodeType {
            prim: Some(self.prim().union(other.prim())),
            attrs: self.attrs.union(&other.attrs).cloned().collect(),
        }
    }

    /// Domain (min, max) over all source attributes, from catalogue stats.
    pub fn domain(&self, catalog: &Catalog) -> Option<(Value, Value)> {
        self.domain_via(&mut |t, c| catalog.column_stats(t, c))
    }

    /// [`NodeType::domain`] with an injected stats lookup, so callers
    /// iterating many candidate nodes can memoize the per-column catalogue
    /// resolution (table lookup + case-insensitive column scan) instead of
    /// re-resolving per candidate.
    pub fn domain_via<'a>(
        &self,
        lookup: &mut dyn FnMut(&str, &str) -> Option<&'a pi2_data::ColumnStats>,
    ) -> Option<(Value, Value)> {
        let mut lo: Option<Value> = None;
        let mut hi: Option<Value> = None;
        for a in &self.attrs {
            let stats = lookup(&a.table, &a.column)?;
            let (amin, amax) = (stats.min.clone()?, stats.max.clone()?);
            lo = Some(match lo {
                Some(v) if v <= amin => v,
                _ => amin,
            });
            hi = Some(match hi {
                Some(v) if v >= amax => v,
                _ => amax,
            });
        }
        Some((lo?, hi?))
    }

    /// Distinct values over all source attributes, when all are
    /// low-cardinality enough to enumerate.
    pub fn distinct_values(&self, catalog: &Catalog) -> Option<Vec<Value>> {
        self.distinct_values_via(&mut |t, c| catalog.column_stats(t, c))
    }

    /// [`NodeType::distinct_values`] with an injected stats lookup (see
    /// [`NodeType::domain_via`]).
    pub fn distinct_values_via<'a>(
        &self,
        lookup: &mut dyn FnMut(&str, &str) -> Option<&'a pi2_data::ColumnStats>,
    ) -> Option<Vec<Value>> {
        let mut out: BTreeSet<Value> = BTreeSet::new();
        if self.attrs.is_empty() {
            return None;
        }
        for a in &self.attrs {
            let stats = lookup(&a.table, &a.column)?;
            out.extend(stats.distinct_values.clone()?);
        }
        Some(out.into_iter().collect())
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attrs.is_empty() {
            write!(f, "{}", self.prim())
        } else {
            let names: Vec<String> = self.attrs.iter().map(|a| a.qualified()).collect();
            write!(f, "{}", names.join("∪"))
        }
    }
}

/// Per-node type annotations, keyed by node id.
pub type TypeMap = BTreeMap<u32, NodeType>;

/// Infer types for every node of a Difftree (§3.2.1).
pub fn infer_types(root: &DNode, catalog: &Catalog) -> TypeMap {
    let aliases = collect_aliases(root);
    let mut map = TypeMap::new();
    assign_base_types(root, catalog, &aliases, &mut map);
    specialise_in_comparisons(root, catalog, &aliases, &mut map);
    map
}

/// [`infer_types`] memoized per (tree fingerprint, catalogue fingerprint).
/// Search states share most of their trees and ids are tree-local, so the
/// inferred map transfers between states unchanged; candidate enumeration
/// calls this once per tree per state instead of re-walking every node.
pub fn infer_types_cached(
    tree: &crate::forest::Tree,
    catalog: &Catalog,
) -> std::sync::Arc<TypeMap> {
    use pi2_data::ShardedMemo;
    use std::sync::OnceLock;
    // Process-global, lock-sharded (shared across search workers; inference
    // is a pure function of the key).
    static TYPE_CACHE: OnceLock<ShardedMemo<(u64, u64), std::sync::Arc<TypeMap>>> = OnceLock::new();
    let cache =
        TYPE_CACHE.get_or_init(|| ShardedMemo::new(20_000 / pi2_data::memo::DEFAULT_SHARDS));
    let key = (tree.fingerprint(), catalog.fingerprint());
    cache.get_or_insert_with(&key, || {
        std::sync::Arc::new(infer_types(tree.node(), catalog))
    })
}

/// Collect `alias → base table` from every FROM clause (including those in
/// choice-node branches, best effort).
fn collect_aliases(root: &DNode) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if let NodeKind::Syntax(SyntaxKind::TableRef) = n.kind {
            let mut name: Option<&str> = None;
            let mut alias: Option<&str> = None;
            for c in &n.children {
                match &c.kind {
                    NodeKind::Syntax(SyntaxKind::TableName(t)) => name = Some(t),
                    NodeKind::Syntax(SyntaxKind::AliasName(a)) => alias = Some(a),
                    _ => {}
                }
            }
            if let Some(t) = name {
                out.insert(t.to_ascii_lowercase(), t.to_string());
                if let Some(a) = alias {
                    out.insert(a.to_ascii_lowercase(), t.to_string());
                }
            }
        }
        stack.extend(n.children.iter());
    }
    out
}

/// Resolve a column reference to an attribute type using the alias map, the
/// catalogue, or unqualified search.
fn resolve_column(
    table: Option<&str>,
    column: &str,
    catalog: &Catalog,
    aliases: &HashMap<String, String>,
) -> Option<NodeType> {
    if let Some(t) = table {
        let base = aliases
            .get(&t.to_ascii_lowercase())
            .cloned()
            .unwrap_or_else(|| t.to_string());
        let dtype = catalog.column_type(&base, column)?;
        let meta = catalog.table(&base)?;
        return Some(NodeType::attr(&meta.name, column, dtype));
    }
    // Unqualified: try each aliased base table first, then the catalogue.
    for base in aliases.values() {
        if let Some(dtype) = catalog.column_type(base, column) {
            let meta = catalog.table(base)?;
            return Some(NodeType::attr(&meta.name, column, dtype));
        }
    }
    let (meta, idx) = catalog.resolve_column(column).ok()?;
    let c = &meta.table.schema.columns[idx];
    Some(NodeType::attr(&meta.name, &c.name, c.dtype))
}

fn assign_base_types(
    node: &DNode,
    catalog: &Catalog,
    aliases: &HashMap<String, String>,
    map: &mut TypeMap,
) {
    let ty = match &node.kind {
        NodeKind::Syntax(SyntaxKind::Lit(l)) => Some(match &l.0 {
            Literal::Int(_) | Literal::Float(_) => NodeType::num(),
            Literal::Bool(_) => NodeType::num(),
            Literal::Str(_) | Literal::Null => NodeType::str_(),
        }),
        NodeKind::Syntax(SyntaxKind::ColumnRef { table, column }) => Some(
            resolve_column(table.as_deref(), column, catalog, aliases)
                .map(|attr| {
                    // Column *references* are str-typed names (Example 2) but
                    // we keep provenance so comparisons can specialise their
                    // partners.
                    NodeType {
                        prim: Some(attr.prim()),
                        attrs: attr.attrs,
                    }
                })
                .unwrap_or_else(NodeType::str_),
        ),
        NodeKind::Syntax(SyntaxKind::FuncCall(name)) => {
            let dtype = catalog.function_return_type(name, None);
            Some(match dtype {
                Some(t) if t.is_numeric() => NodeType::num(),
                Some(_) => NodeType::str_(),
                None => NodeType::ast(),
            })
        }
        NodeKind::Syntax(SyntaxKind::TableName(_)) | NodeKind::Syntax(SyntaxKind::AliasName(_)) => {
            Some(NodeType::str_())
        }
        NodeKind::Syntax(_) if node.children.is_empty() => Some(NodeType::ast()),
        NodeKind::Syntax(_) => Some(NodeType::ast()),
        // Choice nodes: typed below from their children.
        _ => None,
    };
    if let Some(t) = ty {
        map.insert(node.id, t);
    }
    for c in &node.children {
        assign_base_types(c, catalog, aliases, map);
    }
    // Choice-node types: union of child types (leaf-level only).
    if node.is_choice() {
        let mut ty: Option<NodeType> = None;
        for c in &node.children {
            if c.is_empty_node() {
                continue;
            }
            let ct = map.get(&c.id).cloned().unwrap_or_else(NodeType::ast);
            let ct = if c.children.is_empty() || c.is_choice() {
                ct
            } else {
                NodeType::ast()
            };
            ty = Some(match ty {
                Some(t) => t.union(&ct),
                None => ct,
            });
        }
        map.insert(node.id, ty.unwrap_or_else(NodeType::ast));
    }
}

/// Walk comparison structures and give literal-ish operands the attribute
/// type of their column partner (Example 2's `1, 2 : T.a`).
fn specialise_in_comparisons(
    node: &DNode,
    catalog: &Catalog,
    aliases: &HashMap<String, String>,
    map: &mut TypeMap,
) {
    match &node.kind {
        NodeKind::Syntax(SyntaxKind::Compare(_)) if node.children.len() == 2 => {
            let attr_left = column_attr(&node.children[0], catalog, aliases);
            let attr_right = column_attr(&node.children[1], catalog, aliases);
            if let Some(t) = attr_left {
                propagate_attr(&node.children[1], &t, map);
            } else if let Some(t) = attr_right {
                propagate_attr(&node.children[0], &t, map);
            }
        }
        NodeKind::Syntax(SyntaxKind::Between { .. }) if node.children.len() == 3 => {
            if let Some(t) = column_attr(&node.children[0], catalog, aliases) {
                propagate_attr(&node.children[1], &t, map);
                propagate_attr(&node.children[2], &t, map);
            }
        }
        NodeKind::Syntax(SyntaxKind::InList { .. }) if !node.children.is_empty() => {
            if let Some(t) = column_attr(&node.children[0], catalog, aliases) {
                for item in &node.children[1..] {
                    propagate_attr(item, &t, map);
                }
            }
        }
        _ => {}
    }
    for c in &node.children {
        specialise_in_comparisons(c, catalog, aliases, map);
    }
}

/// The attribute type of a (possibly `ANY`-wrapped) column reference.
fn column_attr(
    node: &DNode,
    catalog: &Catalog,
    aliases: &HashMap<String, String>,
) -> Option<NodeType> {
    match &node.kind {
        NodeKind::Syntax(SyntaxKind::ColumnRef { table, column }) => {
            resolve_column(table.as_deref(), column, catalog, aliases)
        }
        NodeKind::Any | NodeKind::Val => {
            // Union over alternatives that are column refs (the paper's
            // "union type of a and b" case).
            let mut ty: Option<NodeType> = None;
            for c in &node.children {
                let ct = column_attr(c, catalog, aliases)?;
                ty = Some(match ty {
                    Some(t) => t.union(&ct),
                    None => ct,
                });
            }
            ty
        }
        _ => None,
    }
}

/// Assign the attribute type to literal-like nodes in a subtree (literals,
/// `VAL` nodes, `ANY` nodes whose children are all literal-like, and
/// repetition/subset structures over them).
fn propagate_attr(node: &DNode, attr: &NodeType, map: &mut TypeMap) {
    match &node.kind {
        NodeKind::Syntax(SyntaxKind::Lit(_)) => {
            map.insert(node.id, attr.clone());
        }
        NodeKind::Val => {
            map.insert(node.id, attr.clone());
            for c in &node.children {
                propagate_attr(c, attr, map);
            }
        }
        NodeKind::Any => {
            let all_lits = node.children.iter().all(|c| {
                matches!(c.kind, NodeKind::Syntax(SyntaxKind::Lit(_))) || c.is_empty_node()
            });
            if all_lits {
                map.insert(node.id, attr.clone());
                for c in &node.children {
                    if !c.is_empty_node() {
                        propagate_attr(c, attr, map);
                    }
                }
            }
        }
        NodeKind::Multi | NodeKind::Subset => {
            map.insert(node.id, attr.clone());
            for c in &node.children {
                propagate_attr(c, attr, map);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gst::lower_query;
    use pi2_data::Table;
    use pi2_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_rows(
            vec![
                ("p", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Int),
            ],
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(7)],
                vec![Value::Int(2), Value::Int(20), Value::Int(8)],
            ],
        )
        .unwrap();
        c.add_table("T", t, vec!["p"]);
        c
    }

    fn typed(sql: &str) -> (DNode, TypeMap) {
        let mut gst = lower_query(&parse_query(sql).unwrap());
        gst.renumber(0);
        let map = infer_types(&gst, &catalog());
        (gst, map)
    }

    fn find_lit(node: &DNode, text: &str) -> u32 {
        let mut all = Vec::new();
        node.walk(&mut all);
        all.iter()
            .find(|n| match &n.kind {
                NodeKind::Syntax(SyntaxKind::Lit(l)) => l.0.to_string() == text,
                _ => false,
            })
            .unwrap_or_else(|| panic!("literal {text} not found"))
            .id
    }

    #[test]
    fn prim_hierarchy() {
        assert_eq!(PrimType::Num.union(PrimType::Str), PrimType::Str);
        assert_eq!(PrimType::Num.union(PrimType::Num), PrimType::Num);
        assert_eq!(PrimType::Str.union(PrimType::Ast), PrimType::Ast);
        assert!(PrimType::Num.compatible_with(PrimType::Str));
        assert!(!PrimType::Str.compatible_with(PrimType::Num));
        assert!(PrimType::Num.compatible_with(PrimType::Ast));
    }

    #[test]
    fn equality_specialises_literal_to_attribute() {
        // Example 2: in `a = 1`, the literal 1 gets type T.a.
        let (gst, map) = typed("SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p");
        let lit = find_lit(&gst, "1");
        let t = map.get(&lit).unwrap();
        assert_eq!(t.attrs.len(), 1);
        assert_eq!(t.attrs.iter().next().unwrap().qualified(), "T.a");
        assert!(t.is_num());
    }

    #[test]
    fn between_specialises_bounds() {
        let (gst, map) = typed("SELECT p FROM T WHERE a BETWEEN 3 AND 9");
        for text in ["3", "9"] {
            let t = map.get(&find_lit(&gst, text)).unwrap();
            assert_eq!(t.attrs.iter().next().unwrap().qualified(), "T.a");
        }
    }

    #[test]
    fn in_list_specialises_items() {
        let (gst, map) = typed("SELECT p FROM T WHERE a IN (10, 20)");
        let t = map.get(&find_lit(&gst, "20")).unwrap();
        assert_eq!(t.attrs.iter().next().unwrap().qualified(), "T.a");
    }

    #[test]
    fn unrelated_literals_stay_primitive() {
        let (gst, map) = typed("SELECT p FROM T LIMIT 5");
        let t = map.get(&find_lit(&gst, "5")).unwrap();
        assert!(t.attrs.is_empty());
        assert!(t.is_num());
    }

    #[test]
    fn string_literals_are_str() {
        let (gst, map) = typed("SELECT p FROM T WHERE b = 1 AND p = 2");
        // b and p both resolve; check the column ref type provenance.
        let mut all = Vec::new();
        gst.walk(&mut all);
        let col_b = all
            .iter()
            .find(|n| {
                matches!(&n.kind, NodeKind::Syntax(SyntaxKind::ColumnRef { column, .. }) if column == "b")
            })
            .unwrap();
        let t = map.get(&col_b.id).unwrap();
        assert_eq!(t.attrs.iter().next().unwrap().qualified(), "T.b");
    }

    #[test]
    fn any_of_literals_under_compare_gets_union_attr_type() {
        // Build: WHERE ANY(a, b) = ANY(1, 2) — Figure 3(b)'s shape.
        let (mut gst, _) = typed("SELECT p FROM T WHERE a = 1");
        let pred = &mut gst.children[3].children[0];
        let col_a = pred.children[0].clone();
        let col_b = DNode::leaf(SyntaxKind::ColumnRef {
            table: None,
            column: "b".into(),
        });
        let lit1 = pred.children[1].clone();
        let lit2 = DNode::leaf(SyntaxKind::Lit(crate::gst::LitVal(Literal::Int(2))));
        pred.children[0] = DNode::any(vec![col_a, col_b]);
        pred.children[1] = DNode::any(vec![lit1, lit2]);
        gst.renumber(0);
        let map = infer_types(&gst, &catalog());
        // The literal ANY gets the union type T.a ∪ T.b.
        let lit_any = &gst.children[3].children[0].children[1];
        let t = map.get(&lit_any.id).unwrap();
        let names: Vec<String> = t.attrs.iter().map(|a| a.qualified()).collect();
        assert_eq!(names, vec!["T.a", "T.b"]);
        assert!(t.is_num());
    }

    #[test]
    fn domain_and_distinct_values_from_catalog() {
        let cat = catalog();
        let t = NodeType::attr("T", "a", DataType::Int);
        assert_eq!(t.domain(&cat), Some((Value::Int(10), Value::Int(20))));
        assert_eq!(
            t.distinct_values(&cat),
            Some(vec![Value::Int(10), Value::Int(20)])
        );
        // Union domain covers both attributes.
        let u = t.union(&NodeType::attr("T", "b", DataType::Int));
        assert_eq!(u.domain(&cat), Some((Value::Int(7), Value::Int(20))));
    }

    #[test]
    fn type_display() {
        assert_eq!(NodeType::num().to_string(), "num");
        assert_eq!(NodeType::attr("T", "a", DataType::Int).to_string(), "T.a");
        assert_eq!(NodeType::ast().to_string(), "AST");
    }

    #[test]
    fn aliased_column_resolution() {
        let (gst, map) = typed("SELECT t1.a FROM T AS t1 WHERE t1.a = 3");
        let lit = find_lit(&gst, "3");
        assert_eq!(
            map.get(&lit)
                .unwrap()
                .attrs
                .iter()
                .next()
                .unwrap()
                .qualified(),
            "T.a"
        );
    }
}
