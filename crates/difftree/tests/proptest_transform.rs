//! Property tests for the §6.1 guarantee: any chain of applicable
//! transformation rules preserves expressiveness, and bindings round-trip
//! through resolution.

use pi2_data::{Catalog, DataType, Table, Value};
use pi2_difftree::transform::canonicalize;
use pi2_difftree::{
    applicable_actions, apply_action, bind_query, lower_query, raise_query, resolve, Forest,
    Workload,
};
use pi2_sql::parse_query;
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let rows: Vec<Vec<Value>> = (0..30)
        .map(|i| {
            vec![
                Value::Int(i % 5),
                Value::Int(10 * (i % 7)),
                Value::Int(i % 3),
                Value::Str(["x", "y", "z"][(i % 3) as usize].into()),
            ]
        })
        .collect();
    let t = Table::from_rows(
        vec![
            ("p", DataType::Int),
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("s", DataType::Str),
        ],
        rows,
    )
    .unwrap();
    c.add_table("T", t, vec![]);
    c
}

/// A random simple analysis query over T.
fn arb_query() -> impl Strategy<Value = String> {
    let pred = (
        prop_oneof![Just("a"), Just("b"), Just("p")],
        prop_oneof![Just("="), Just(">"), Just("<")],
        0i64..60,
    )
        .prop_map(|(c, op, v)| format!("{c} {op} {v}"));
    let between = (prop_oneof![Just("a"), Just("b")], 0i64..30, 30i64..60)
        .prop_map(|(c, lo, hi)| format!("{c} BETWEEN {lo} AND {hi}"));
    let where_clause = prop_oneof![
        Just(String::new()),
        pred.clone().prop_map(|p| format!(" WHERE {p}")),
        (pred, between.clone()).prop_map(|(p, b)| format!(" WHERE {p} AND {b}")),
        between.prop_map(|b| format!(" WHERE {b}")),
    ];
    (prop_oneof![Just("p"), Just("a"), Just("s")], where_clause)
        .prop_map(|(col, w)| format!("SELECT {col}, count(*) FROM T{w} GROUP BY {col}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random action chains keep every input query expressible, with exact
    /// resolution round trips.
    #[test]
    fn action_chains_preserve_expressiveness(
        sqls in prop::collection::vec(arb_query(), 2..4),
        picks in prop::collection::vec(0usize..64, 0..4),
    ) {
        let queries: Vec<_> = sqls.iter().map(|s| parse_query(s).unwrap()).collect();
        let w = Workload::new(queries, catalog());
        let mut state = Forest::from_workload(&w);
        for pick in picks {
            let actions = applicable_actions(&state, &w);
            if actions.is_empty() {
                break;
            }
            let action = actions[pick % actions.len()];
            state = apply_action(&state, &w, action)
                .expect("applicable actions must apply");
            // The §6.1 guarantee, checked exactly:
            let assignments = state.bind_all(&w).expect("state must express workload");
            for (qi, a) in assignments.iter().enumerate() {
                let resolved = resolve(&state.trees[a.tree], &a.binding).unwrap();
                let raised = raise_query(&resolved).unwrap();
                prop_assert_eq!(&raised, &w.queries[qi]);
            }
        }
    }

    /// lower → bind(identity) → resolve → raise is the identity on
    /// arbitrary queries.
    #[test]
    fn identity_binding_round_trip(sql in arb_query()) {
        let q = parse_query(&sql).unwrap();
        let mut gst = lower_query(&q);
        gst.renumber(0);
        let map = bind_query(&gst, &gst).expect("tree expresses itself");
        let resolved = resolve(&gst, &map).unwrap();
        prop_assert_eq!(raise_query(&resolved).unwrap(), q);
    }

    /// ForestKey is a pure function of structure: equal (canonicalized)
    /// states always share a key, and the incrementally maintained
    /// fingerprints after a chain of `apply_action`s match a from-scratch
    /// recompute of the same forest.
    #[test]
    fn forest_key_consistency(
        sqls in prop::collection::vec(arb_query(), 2..4),
        picks in prop::collection::vec(0usize..64, 1..4),
    ) {
        let queries: Vec<_> = sqls.iter().map(|s| parse_query(s).unwrap()).collect();
        let w = Workload::new(queries, catalog());
        let mut state = Forest::from_workload(&w);
        for pick in picks {
            let actions = applicable_actions(&state, &w);
            if actions.is_empty() {
                break;
            }
            state = apply_action(&state, &w, actions[pick % actions.len()])
                .expect("applicable actions must apply");

            // Incremental invariant: `apply_action` re-fingerprints only
            // the tree(s) it touched; rebuilding every tree from owned
            // copies must produce the identical key and equal forest.
            let rebuilt = Forest::new(
                state.trees.iter().map(|t| t.to_dnode()).collect(),
            );
            prop_assert_eq!(state.key(), rebuilt.key());
            prop_assert!(state == rebuilt);

            // Canonicalization is deterministic, so equal inputs yield
            // equal canonical states with equal keys.
            let c1 = canonicalize(&state, &w, 16);
            let c2 = canonicalize(&rebuilt, &w, 16);
            prop_assert!(c1 == c2);
            prop_assert_eq!(c1.key(), c2.key());
        }
    }
}
