//! Static semantic analysis: output schemas with attribute provenance.
//!
//! PI2's result schemas (§3.2.2) and visualization mappings (§4.1) need to
//! know, for every output column of a query: its name, its storage type,
//! whether it traces back to a base-table attribute (an *attribute type* in
//! the paper's hierarchy), whether it is a group key, and its estimated
//! cardinality. [`analyze_query`] computes all of this without executing the
//! query.

use crate::error::EngineError;
use pi2_data::{Catalog, DataType};
use pi2_sql::ast::{is_aggregate_function, Expr, Literal, Query, SelectItem, TableRef};

/// The inferred type of an output column: either a fully-qualified base
/// table attribute (with its storage type) or a bare primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum ColType {
    /// Traces to base attribute `table.column`.
    /// The attr.
    Attr {
        table: String,
        column: String,
        dtype: DataType,
    },
    /// A computed value with no attribute provenance.
    Prim(DataType),
}

impl ColType {
    /// Dtype.
    pub fn dtype(&self) -> DataType {
        match self {
            ColType::Attr { dtype, .. } => *dtype,
            ColType::Prim(t) => *t,
        }
    }

    /// Fully-qualified attribute name `T.a`, if this is an attribute type.
    pub fn qualified_attr(&self) -> Option<String> {
        match self {
            ColType::Attr { table, column, .. } => Some(format!("{table}.{column}")),
            ColType::Prim(_) => None,
        }
    }
}

/// One output column of an analyzed query.
#[derive(Debug, Clone, PartialEq)]
pub struct OutCol {
    /// The name.
    pub name: String,
    /// The ty.
    pub ty: ColType,
    /// Whether this column is (or matches) a GROUP BY key.
    pub is_group_key: bool,
    /// Whether the column's values are known unique (candidate key).
    pub unique: bool,
    /// Estimated number of distinct values; `None` when unbounded/unknown.
    pub cardinality: Option<usize>,
}

/// Result of analyzing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInfo {
    /// The cols.
    pub cols: Vec<OutCol>,
    /// Whether the query aggregates (GROUP BY or aggregate projection).
    pub is_aggregate: bool,
    /// Indices of `cols` that are group keys.
    pub group_key_indices: Vec<usize>,
}

impl QueryInfo {
    /// §4.1: bar/line FD check — do the given columns functionally determine
    /// the rest of the row? True when the query is an aggregate and the
    /// columns include all group keys, or when one of them is unique.
    pub fn functionally_determines(&self, determinant_indices: &[usize]) -> bool {
        if self.is_aggregate
            && !self.group_key_indices.is_empty()
            && self
                .group_key_indices
                .iter()
                .all(|k| determinant_indices.contains(k))
        {
            return true;
        }
        determinant_indices
            .iter()
            .any(|&i| self.cols.get(i).is_some_and(|c| c.unique))
    }
}

/// A named relation visible inside a query (table alias or subquery alias).
#[derive(Debug, Clone)]
struct Binding {
    name: String,
    cols: Vec<OutCol>,
}

/// Analyze `query` against `catalog`.
pub fn analyze_query(query: &Query, catalog: &Catalog) -> Result<QueryInfo, EngineError> {
    analyze_with_outer(query, catalog, &[])
}

/// Process-global analysis memo: analysis is a pure function of
/// (catalogue, query), and the executor re-derives output schemas (and
/// re-checks subquery correlation) on every execution — for correlated
/// subqueries, once per outer group. Keyed by (catalogue fingerprint,
/// FNV of the printed query).
type AnalysisResult = std::sync::Arc<Result<QueryInfo, EngineError>>;
static ANALYZE_MEMO: std::sync::OnceLock<pi2_data::ShardedMemo<(u64, u64), AnalysisResult>> =
    std::sync::OnceLock::new();

/// Memoized [`analyze_query`] (first writer wins; both executors share it).
pub fn analyze_query_cached(query: &Query, catalog: &Catalog) -> AnalysisResult {
    let memo = ANALYZE_MEMO.get_or_init(|| pi2_data::ShardedMemo::new(4096));
    let key = (
        catalog.fingerprint(),
        pi2_data::hash::fnv1a_64(query.to_string().as_bytes()),
    );
    memo.get_or_insert_with(&key, || std::sync::Arc::new(analyze_query(query, catalog)))
}

/// Drop every memoized analysis keyed to a retired catalogue fingerprint —
/// the analysis leg of the epoch-tagged eviction sweep after an append.
pub fn evict_analyses_for(catalog_fingerprint: u64) {
    if let Some(memo) = ANALYZE_MEMO.get() {
        memo.retain(|(fp, _), _| *fp != catalog_fingerprint);
    }
}

fn analyze_with_outer(
    query: &Query,
    catalog: &Catalog,
    outer: &[Binding],
) -> Result<QueryInfo, EngineError> {
    // Resolve FROM bindings.
    let mut bindings: Vec<Binding> = Vec::new();
    for tref in &query.from {
        match tref {
            TableRef::Table { name, alias } => {
                let meta = catalog.require_table(name)?;
                let cols = meta
                    .table
                    .schema
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| OutCol {
                        name: c.name.clone(),
                        ty: ColType::Attr {
                            table: meta.name.clone(),
                            column: c.name.clone(),
                            dtype: c.dtype,
                        },
                        is_group_key: false,
                        unique: meta.stats[i].unique
                            || meta.primary_key.len() == 1
                                && meta.primary_key[0].eq_ignore_ascii_case(&c.name),
                        cardinality: Some(meta.stats[i].distinct_count),
                    })
                    .collect();
                bindings.push(Binding {
                    name: alias.clone().unwrap_or_else(|| name.clone()),
                    cols,
                });
            }
            TableRef::Subquery { query: subq, alias } => {
                let info = analyze_with_outer(subq, catalog, outer)?;
                bindings.push(Binding {
                    name: alias.clone().unwrap_or_default(),
                    cols: info.cols,
                });
            }
        }
    }

    let scope = Scope {
        catalog,
        bindings: &bindings,
        outer,
    };

    // Which select items are group keys?
    let group_exprs = &query.group_by;
    let mut cols = Vec::new();
    let mut group_key_indices = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Star => {
                for b in &bindings {
                    for c in &b.cols {
                        cols.push(OutCol {
                            is_group_key: false,
                            ..c.clone()
                        });
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let mut col = scope.type_of(expr)?;
                col.name = alias.clone().unwrap_or_else(|| default_name(expr));
                col.is_group_key = group_exprs.iter().any(|g| exprs_match(g, expr));
                if col.is_group_key {
                    group_key_indices.push(cols.len());
                }
                cols.push(col);
            }
        }
    }

    let is_aggregate = query.is_aggregate();
    Ok(QueryInfo {
        cols,
        is_aggregate,
        group_key_indices,
    })
}

/// Structural match between a GROUP BY expression and a select expression,
/// tolerating qualification differences (`city` vs `s.city`).
fn exprs_match(a: &Expr, b: &Expr) -> bool {
    if a == b {
        return true;
    }
    match (a, b) {
        (Expr::Column { name: na, .. }, Expr::Column { name: nb, .. }) => {
            na.eq_ignore_ascii_case(nb)
        }
        _ => false,
    }
}

/// Output column name for an unaliased expression: bare column name,
/// function name, or the printed expression.
pub fn default_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        other => other.to_string(),
    }
}

struct Scope<'a> {
    catalog: &'a Catalog,
    bindings: &'a [Binding],
    outer: &'a [Binding],
}

impl Scope<'_> {
    fn lookup(&self, table: Option<&str>, name: &str) -> Option<OutCol> {
        let search = |bindings: &[Binding]| -> Option<OutCol> {
            match table {
                Some(t) => bindings
                    .iter()
                    .find(|b| b.name.eq_ignore_ascii_case(t))
                    .and_then(|b| {
                        b.cols
                            .iter()
                            .find(|c| c.name.eq_ignore_ascii_case(name))
                            .cloned()
                    }),
                None => bindings.iter().find_map(|b| {
                    b.cols
                        .iter()
                        .find(|c| c.name.eq_ignore_ascii_case(name))
                        .cloned()
                }),
            }
        };
        search(self.bindings).or_else(|| search(self.outer))
    }

    /// Infer the [`OutCol`] (type + provenance + stats) of an expression.
    fn type_of(&self, expr: &Expr) -> Result<OutCol, EngineError> {
        let prim = |t: DataType| OutCol {
            name: String::new(),
            ty: ColType::Prim(t),
            is_group_key: false,
            unique: false,
            cardinality: None,
        };
        match expr {
            Expr::Column { table, name } => self
                .lookup(table.as_deref(), name)
                .ok_or_else(|| EngineError::UnresolvedColumn(format!("{expr}"))),
            Expr::Literal(l) => Ok(match l {
                Literal::Int(_) => prim(DataType::Int),
                Literal::Float(_) => prim(DataType::Float),
                Literal::Str(_) => prim(DataType::Str),
                Literal::Bool(_) => OutCol {
                    cardinality: Some(2),
                    ..prim(DataType::Bool)
                },
                Literal::Null => prim(DataType::Str),
            }),
            Expr::Star => Ok(prim(DataType::Int)),
            Expr::Unary { expr, .. } => self.type_of(expr),
            Expr::Binary { left, op, right } => {
                if op.is_comparison() || op.is_logical() || *op == pi2_sql::BinOp::Like {
                    Ok(OutCol {
                        cardinality: Some(2),
                        ..prim(DataType::Bool)
                    })
                } else {
                    let lt = self.type_of(left)?.ty.dtype();
                    let rt = self.type_of(right)?.ty.dtype();
                    let t = lt.union(rt).unwrap_or(DataType::Float);
                    Ok(prim(t))
                }
            }
            Expr::Between { .. }
            | Expr::IsNull { .. }
            | Expr::InList { .. }
            | Expr::InSubquery { .. } => Ok(OutCol {
                cardinality: Some(2),
                ..prim(DataType::Bool)
            }),
            Expr::Func { name, args } => {
                if name.eq_ignore_ascii_case("count") {
                    return Ok(prim(DataType::Int));
                }
                let arg_type = args
                    .first()
                    .filter(|a| !matches!(a, Expr::Star))
                    .map(|a| self.type_of(a))
                    .transpose()?;
                let arg_col = arg_type.clone();
                let dtype = self
                    .catalog
                    .function_return_type(name, arg_type.map(|c| c.ty.dtype()))
                    .ok_or_else(|| EngineError::BadFunction(name.clone()))?;
                // min/max preserve attribute provenance: their output values
                // come from the argument attribute's domain.
                if (name.eq_ignore_ascii_case("min") || name.eq_ignore_ascii_case("max"))
                    && is_aggregate_function(name)
                {
                    if let Some(OutCol {
                        ty:
                            ColType::Attr {
                                table,
                                column,
                                dtype,
                            },
                        ..
                    }) = arg_col
                    {
                        return Ok(OutCol {
                            name: String::new(),
                            ty: ColType::Attr {
                                table,
                                column,
                                dtype,
                            },
                            is_group_key: false,
                            unique: false,
                            cardinality: None,
                        });
                    }
                }
                Ok(prim(dtype))
            }
            Expr::ScalarSubquery(q) => {
                let info = analyze_with_outer(q, self.catalog, self.bindings)?;
                let col = info.cols.first().ok_or(EngineError::NonScalarSubquery)?;
                Ok(col.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_data::{Table, Value};
    use pi2_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = Table::from_rows(
            vec![
                ("p", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Str),
                ("d", DataType::Date),
            ],
            vec![
                vec![
                    Value::Int(1),
                    Value::Int(10),
                    Value::Str("x".into()),
                    Value::Date(0),
                ],
                vec![
                    Value::Int(2),
                    Value::Int(20),
                    Value::Str("y".into()),
                    Value::Date(1),
                ],
                // a repeats so the non-key column is observably non-unique.
                vec![
                    Value::Int(3),
                    Value::Int(20),
                    Value::Str("y".into()),
                    Value::Date(2),
                ],
            ],
        )
        .unwrap();
        c.add_table("T", t, vec!["p"]);
        c
    }

    fn analyze(sql: &str) -> QueryInfo {
        analyze_query(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn plain_projection_has_attribute_provenance() {
        let info = analyze("SELECT a, b FROM T");
        assert_eq!(info.cols.len(), 2);
        assert_eq!(
            info.cols[0].ty,
            ColType::Attr {
                table: "T".into(),
                column: "a".into(),
                dtype: DataType::Int
            }
        );
        assert_eq!(info.cols[0].ty.qualified_attr().unwrap(), "T.a");
        assert!(!info.is_aggregate);
    }

    #[test]
    fn count_star_is_int_aggregate() {
        let info = analyze("SELECT a, count(*) FROM T GROUP BY a");
        assert!(info.is_aggregate);
        assert_eq!(info.cols[1].name, "count");
        assert_eq!(info.cols[1].ty, ColType::Prim(DataType::Int));
        assert!(info.cols[0].is_group_key);
        assert_eq!(info.group_key_indices, vec![0]);
    }

    #[test]
    fn aliases_win_over_default_names() {
        let info = analyze("SELECT sum(a) AS total FROM T");
        assert_eq!(info.cols[0].name, "total");
        assert_eq!(info.cols[0].ty, ColType::Prim(DataType::Int));
        assert!(info.is_aggregate);
    }

    #[test]
    fn avg_is_float() {
        let info = analyze("SELECT avg(a) FROM T");
        assert_eq!(info.cols[0].ty, ColType::Prim(DataType::Float));
    }

    #[test]
    fn aliased_tables_resolve() {
        let info = analyze("SELECT t1.a FROM T AS t1");
        assert_eq!(info.cols[0].ty.qualified_attr().unwrap(), "T.a");
    }

    #[test]
    fn star_expands_all_columns() {
        let info = analyze("SELECT * FROM T");
        assert_eq!(info.cols.len(), 4);
        assert_eq!(info.cols[3].ty.dtype(), DataType::Date);
    }

    #[test]
    fn subquery_in_from_propagates_provenance() {
        let info = analyze("SELECT x FROM (SELECT a AS x FROM T) AS sq");
        assert_eq!(info.cols[0].ty.qualified_attr().unwrap(), "T.a");
        assert_eq!(info.cols[0].name, "x");
    }

    #[test]
    fn boolean_expressions_are_low_cardinality() {
        let info = analyze("SELECT a IN (1, 2) AS color FROM T");
        assert_eq!(info.cols[0].ty, ColType::Prim(DataType::Bool));
        assert_eq!(info.cols[0].cardinality, Some(2));
        assert_eq!(info.cols[0].name, "color");
    }

    #[test]
    fn unresolved_column_errors() {
        let err = analyze_query(&parse_query("SELECT zzz FROM T").unwrap(), &catalog());
        assert!(matches!(err, Err(EngineError::UnresolvedColumn(_))));
    }

    #[test]
    fn primary_key_columns_are_unique() {
        let info = analyze("SELECT p, a FROM T");
        assert!(info.cols[0].unique);
        assert!(!info.cols[1].unique);
    }

    #[test]
    fn fd_determination_for_group_by() {
        let info = analyze("SELECT a, count(*) FROM T GROUP BY a");
        assert!(info.functionally_determines(&[0]));
        assert!(!info.functionally_determines(&[1]));
    }

    #[test]
    fn fd_determination_via_uniqueness() {
        let info = analyze("SELECT p, a FROM T");
        assert!(info.functionally_determines(&[0]));
        assert!(!info.functionally_determines(&[1]));
    }

    #[test]
    fn group_key_matches_qualified_names() {
        let info = analyze("SELECT t1.a, count(*) FROM T AS t1 GROUP BY a");
        assert!(info.cols[0].is_group_key);
    }

    #[test]
    fn min_max_preserve_attribute_provenance() {
        let info = analyze("SELECT max(a) FROM T");
        assert_eq!(info.cols[0].ty.qualified_attr().unwrap(), "T.a");
        let info = analyze("SELECT sum(a) FROM T");
        assert_eq!(info.cols[0].ty.qualified_attr(), None);
    }

    #[test]
    fn correlated_having_subquery_resolves_outer_alias() {
        let mut c = catalog();
        let sales = Table::from_rows(
            vec![
                ("city", DataType::Str),
                ("product", DataType::Str),
                ("total", DataType::Float),
            ],
            vec![],
        )
        .unwrap();
        c.add_table("sales", sales, vec![]);
        let q = parse_query(
            "SELECT city, product, sum(total) FROM sales AS ss GROUP BY city, product \
             HAVING sum(total) >= (SELECT max(t) FROM (SELECT sum(total) AS t FROM sales AS s \
             WHERE s.city = ss.city GROUP BY s.city, s.product) AS m)",
        )
        .unwrap();
        let info = analyze_query(&q, &c).unwrap();
        assert_eq!(info.cols.len(), 3);
        assert_eq!(info.group_key_indices, vec![0, 1]);
    }
}
