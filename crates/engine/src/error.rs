//! Executor errors.

use pi2_data::DataError;
use std::fmt;

/// Errors raised during analysis or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// `Data`.
    Data(DataError),
    /// A column reference could not be resolved in any visible scope.
    UnresolvedColumn(String),
    /// A function is unknown or applied to the wrong arguments.
    BadFunction(String),
    /// An expression evaluated to an unexpected type.
    TypeError(String),
    /// Aggregate used outside of an aggregate context (or nested).
    MisplacedAggregate(String),
    /// A scalar subquery returned more than one column.
    NonScalarSubquery,
    /// Feature not supported by the dialect executor.
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Data(e) => write!(f, "{e}"),
            EngineError::UnresolvedColumn(c) => write!(f, "unresolved column: {c}"),
            EngineError::BadFunction(m) => write!(f, "bad function call: {m}"),
            EngineError::TypeError(m) => write!(f, "type error: {m}"),
            EngineError::MisplacedAggregate(m) => write!(f, "misplaced aggregate: {m}"),
            EngineError::NonScalarSubquery => write!(f, "scalar subquery must return one column"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::UnresolvedColumn("x".into())
            .to_string()
            .contains("x"));
        assert!(EngineError::NonScalarSubquery
            .to_string()
            .contains("one column"));
        let e: EngineError = DataError::UnknownTable("t".into()).into();
        assert_eq!(e.to_string(), "unknown table: t");
    }
}
