//! Row-level and group-level expression evaluation.

use crate::error::EngineError;
use crate::exec::{execute_with_scope, ExecContext};
use pi2_data::date::parse_day_offset;
use pi2_data::Value;
use pi2_sql::ast::{is_aggregate_function, BinOp, Expr, Literal, UnaryOp};

/// A lexical scope for expression evaluation: the columns of the current row
/// (tagged with their binding name) plus a parent scope for correlated
/// subqueries.
pub struct Scope<'a> {
    /// `(binding, column)` pairs, parallel to `row`.
    pub cols: &'a [(String, String)],
    /// The row.
    pub row: &'a [Value],
    /// The parent.
    pub parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    /// Lookup.
    pub fn lookup(&self, table: Option<&str>, name: &str) -> Option<&Value> {
        let found = self.cols.iter().position(|(b, c)| {
            c.eq_ignore_ascii_case(name) && table.is_none_or(|t| b.eq_ignore_ascii_case(t))
        });
        match found {
            Some(i) => Some(&self.row[i]),
            None => self.parent.and_then(|p| p.lookup(table, name)),
        }
    }
}

/// Group context for aggregate evaluation: the member rows of one group.
pub struct GroupCtx<'a> {
    /// The cols.
    pub cols: &'a [(String, String)],
    /// The rows.
    pub rows: Vec<&'a [Value]>,
    /// The parent.
    pub parent: Option<&'a Scope<'a>>,
}

/// Evaluate a row-level expression (no aggregates).
pub fn eval_expr(
    expr: &Expr,
    scope: &Scope<'_>,
    ctx: &ExecContext<'_>,
) -> Result<Value, EngineError> {
    match expr {
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Column { table, name } => scope
            .lookup(table.as_deref(), name)
            .cloned()
            .ok_or_else(|| EngineError::UnresolvedColumn(expr.to_string())),
        Expr::Star => Err(EngineError::Unsupported("bare * outside count(*)".into())),
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, scope, ctx)?;
            apply_unary(*op, v)
        }
        Expr::Binary { left, op, right } => {
            // Short-circuit logical operators with SQL three-valued logic.
            if *op == BinOp::And || *op == BinOp::Or {
                let l = eval_expr(left, scope, ctx)?;
                return eval_logical(*op, l, || eval_expr(right, scope, ctx));
            }
            let l = eval_expr(left, scope, ctx)?;
            let r = eval_expr(right, scope, ctx)?;
            apply_binary(*op, l, r)
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval_expr(expr, scope, ctx)?;
            let lo = eval_expr(low, scope, ctx)?;
            let hi = eval_expr(high, scope, ctx)?;
            eval_between(&v, &lo, &hi, *negated)
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval_expr(expr, scope, ctx)?;
            let mut any_null = false;
            for item in list {
                let iv = eval_expr(item, scope, ctx)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => any_null = true,
                }
            }
            if any_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::InSubquery {
            expr,
            negated,
            query,
        } => {
            let v = eval_expr(expr, scope, ctx)?;
            let result = execute_with_scope(query, ctx, Some(scope))?;
            let mut any_null = false;
            for i in 0..result.num_rows() {
                let item = if result.num_columns() > 0 {
                    result.value(i, 0)
                } else {
                    Value::Null
                };
                match v.sql_eq(&item) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => any_null = true,
                }
            }
            if any_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, scope, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Func { name, args } => {
            if is_aggregate_function(name) {
                return Err(EngineError::MisplacedAggregate(expr.to_string()));
            }
            let vals = args
                .iter()
                .map(|a| eval_expr(a, scope, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            apply_scalar_function(name, &vals, ctx)
        }
        Expr::ScalarSubquery(q) => {
            let result = execute_with_scope(q, ctx, Some(scope))?;
            if result.schema.len() != 1 {
                return Err(EngineError::NonScalarSubquery);
            }
            Ok(if result.num_rows() > 0 {
                result.value(0, 0)
            } else {
                Value::Null
            })
        }
    }
}

/// Evaluate an expression in a group context (aggregates compute over the
/// group's rows; other columns come from the representative first row).
pub fn eval_grouped(
    expr: &Expr,
    group: &GroupCtx<'_>,
    ctx: &ExecContext<'_>,
) -> Result<Value, EngineError> {
    let repr = Scope {
        cols: group.cols,
        row: group.rows.first().copied().unwrap_or(&[]),
        parent: group.parent,
    };
    match expr {
        Expr::Func { name, args } if is_aggregate_function(name) => {
            eval_aggregate(name, args, group, ctx)
        }
        Expr::Unary { op, expr } => {
            let v = eval_grouped(expr, group, ctx)?;
            apply_unary(*op, v)
        }
        Expr::Binary { left, op, right } => {
            if *op == BinOp::And || *op == BinOp::Or {
                let l = eval_grouped(left, group, ctx)?;
                return eval_logical(*op, l, || eval_grouped(right, group, ctx));
            }
            let l = eval_grouped(left, group, ctx)?;
            let r = eval_grouped(right, group, ctx)?;
            apply_binary(*op, l, r)
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval_grouped(expr, group, ctx)?;
            let lo = eval_grouped(low, group, ctx)?;
            let hi = eval_grouped(high, group, ctx)?;
            eval_between(&v, &lo, &hi, *negated)
        }
        Expr::Func { name, args } => {
            let vals = args
                .iter()
                .map(|a| eval_grouped(a, group, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            apply_scalar_function(name, &vals, ctx)
        }
        // Columns, literals, subqueries, IN, IS NULL: evaluate against the
        // representative row (correlated subqueries see the group's values).
        other => eval_expr(other, &repr, ctx),
    }
}

fn eval_aggregate(
    name: &str,
    args: &[Expr],
    group: &GroupCtx<'_>,
    ctx: &ExecContext<'_>,
) -> Result<Value, EngineError> {
    let lname = name.to_ascii_lowercase();
    // count(*) counts rows including NULLs.
    if lname == "count" && matches!(args.first(), Some(Expr::Star) | None) {
        return Ok(Value::Int(group.rows.len() as i64));
    }
    let arg = args
        .first()
        .ok_or_else(|| EngineError::BadFunction(format!("{name} needs an argument")))?;
    // Evaluate the argument per group row.
    let mut vals = Vec::with_capacity(group.rows.len());
    for row in &group.rows {
        let scope = Scope {
            cols: group.cols,
            row,
            parent: group.parent,
        };
        let v = eval_expr(arg, &scope, ctx)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    match lname.as_str() {
        "count" => Ok(Value::Int(vals.len() as i64)),
        "min" => Ok(vals.into_iter().min().unwrap_or(Value::Null)),
        "max" => Ok(vals.into_iter().max().unwrap_or(Value::Null)),
        "sum" | "avg" => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
            let total: f64 = vals.iter().filter_map(|v| v.as_f64()).sum();
            if lname == "avg" {
                Ok(Value::Float(total / vals.len() as f64))
            } else if all_int {
                Ok(Value::Int(total as i64))
            } else {
                Ok(Value::Float(total))
            }
        }
        _ => Err(EngineError::BadFunction(name.to_string())),
    }
}

pub(crate) fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

pub(crate) fn apply_unary(op: UnaryOp, v: Value) -> Result<Value, EngineError> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    match op {
        UnaryOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(EngineError::TypeError(format!("cannot negate {other}"))),
        },
        UnaryOp::Not => match v.as_bool() {
            Some(b) => Ok(Value::Bool(!b)),
            None => Err(EngineError::TypeError("NOT on non-boolean".into())),
        },
    }
}

pub(crate) fn eval_logical(
    op: BinOp,
    left: Value,
    right: impl FnOnce() -> Result<Value, EngineError>,
) -> Result<Value, EngineError> {
    let l = if left.is_null() { None } else { left.as_bool() };
    match (op, l) {
        (BinOp::And, Some(false)) => Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => Ok(Value::Bool(true)),
        _ => {
            let rv = right()?;
            let r = if rv.is_null() { None } else { rv.as_bool() };
            let out = match op {
                BinOp::And => match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                BinOp::Or => match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                _ => unreachable!("eval_logical called with non-logical op"),
            };
            Ok(out.map(Value::Bool).unwrap_or(Value::Null))
        }
    }
}

pub(crate) fn apply_binary(op: BinOp, l: Value, r: Value) -> Result<Value, EngineError> {
    use std::cmp::Ordering;
    if op.is_comparison() {
        let cmp = l.sql_cmp(&r);
        let out = match (op, cmp) {
            (_, None) => Value::Null,
            (BinOp::Eq, Some(o)) => Value::Bool(o == Ordering::Equal),
            (BinOp::NotEq, Some(o)) => Value::Bool(o != Ordering::Equal),
            (BinOp::Lt, Some(o)) => Value::Bool(o == Ordering::Less),
            (BinOp::LtEq, Some(o)) => Value::Bool(o != Ordering::Greater),
            (BinOp::Gt, Some(o)) => Value::Bool(o == Ordering::Greater),
            (BinOp::GtEq, Some(o)) => Value::Bool(o != Ordering::Less),
            _ => unreachable!(),
        };
        return Ok(out);
    }
    if op == BinOp::Like {
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        let (Some(s), Some(pat)) = (l.as_str(), r.as_str()) else {
            return Err(EngineError::TypeError("LIKE requires strings".into()));
        };
        return Ok(Value::Bool(like_match(s, pat)));
    }
    // Arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(EngineError::TypeError(format!(
            "cannot apply {op} to {l} and {r}"
        )));
    };
    let result = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a / b
        }
        _ => unreachable!(),
    };
    // Preserve integer-ness (and date-ness for +/- day arithmetic).
    match (&l, &r, op) {
        (Value::Date(_), _, BinOp::Add | BinOp::Sub) => Ok(Value::Date(result as i64)),
        (Value::Int(_), Value::Int(_), BinOp::Add | BinOp::Sub | BinOp::Mul) => {
            Ok(Value::Int(result as i64))
        }
        _ => Ok(Value::Float(result)),
    }
}

pub(crate) fn eval_between(
    v: &Value,
    lo: &Value,
    hi: &Value,
    negated: bool,
) -> Result<Value, EngineError> {
    let ge = v.sql_cmp(lo).map(|o| o != std::cmp::Ordering::Less);
    let le = v.sql_cmp(hi).map(|o| o != std::cmp::Ordering::Greater);
    Ok(match (ge, le) {
        (Some(a), Some(b)) => Value::Bool((a && b) != negated),
        _ => Value::Null,
    })
}

/// SQL LIKE with `%` and `_` wildcards.
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    fn inner(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => (0..=s.len()).any(|i| inner(&s[i..], &p[1..])),
            Some(b'_') => !s.is_empty() && inner(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && inner(&s[1..], &p[1..]),
        }
    }
    inner(s.as_bytes(), pattern.as_bytes())
}

pub(crate) fn apply_scalar_function(
    name: &str,
    args: &[Value],
    ctx: &ExecContext<'_>,
) -> Result<Value, EngineError> {
    match name.to_ascii_lowercase().as_str() {
        "today" => Ok(Value::Date(ctx.today)),
        "date" => {
            // date(d) coerces; date(d, '-30 days') offsets.
            let base = args
                .first()
                .ok_or_else(|| EngineError::BadFunction("date() needs an argument".into()))?;
            let base = base
                .coerce_to_date()
                .ok_or_else(|| EngineError::TypeError(format!("not a date: {base}")))?;
            let Value::Date(mut days) = base else {
                unreachable!()
            };
            if let Some(off) = args.get(1) {
                let s = off
                    .as_str()
                    .ok_or_else(|| EngineError::TypeError("date offset must be a string".into()))?;
                let delta = parse_day_offset(s)
                    .ok_or_else(|| EngineError::TypeError(format!("bad date offset: {s}")))?;
                days += delta;
            }
            Ok(Value::Date(days))
        }
        "abs" => {
            let v = args
                .first()
                .ok_or_else(|| EngineError::BadFunction("abs() needs an argument".into()))?;
            match v {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Null => Ok(Value::Null),
                other => Err(EngineError::TypeError(format!("abs of {other}"))),
            }
        }
        other => Err(EngineError::BadFunction(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_data::Catalog;
    use pi2_sql::parse_expr;

    fn ctx_catalog() -> Catalog {
        Catalog::new()
    }

    fn eval_str(src: &str) -> Value {
        let catalog = ctx_catalog();
        let ctx = ExecContext {
            today: 18_000,
            ..ExecContext::new(&catalog)
        };
        let cols: Vec<(String, String)> = vec![("t".into(), "a".into()), ("t".into(), "b".into())];
        let row = vec![Value::Int(5), Value::Str("CA".into())];
        let scope = Scope {
            cols: &cols,
            row: &row,
            parent: None,
        };
        eval_expr(&parse_expr(src).unwrap(), &scope, &ctx).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval_str("7 / 2"), Value::Float(3.5));
        assert_eq!(eval_str("1 / 0"), Value::Null);
        assert_eq!(eval_str("1.5 + 1"), Value::Float(2.5));
    }

    #[test]
    fn column_lookup_qualified_and_bare() {
        assert_eq!(eval_str("a + 1"), Value::Int(6));
        assert_eq!(eval_str("t.a"), Value::Int(5));
        assert_eq!(eval_str("b = 'CA'"), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_str("a BETWEEN 1 AND 10"), Value::Bool(true));
        assert_eq!(eval_str("a NOT BETWEEN 1 AND 10"), Value::Bool(false));
        assert_eq!(eval_str("a IN (1, 5, 9)"), Value::Bool(true));
        assert_eq!(eval_str("a NOT IN (1, 2)"), Value::Bool(true));
        assert_eq!(eval_str("a <> 5"), Value::Bool(false));
        assert_eq!(eval_str("a >= 5"), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_str("NULL AND TRUE"), Value::Null);
        assert_eq!(eval_str("NULL AND FALSE"), Value::Bool(false));
        assert_eq!(eval_str("NULL OR TRUE"), Value::Bool(true));
        assert_eq!(eval_str("NULL OR FALSE"), Value::Null);
        assert_eq!(eval_str("NULL = 1"), Value::Null);
        assert_eq!(eval_str("a IS NULL"), Value::Bool(false));
        assert_eq!(eval_str("a IS NOT NULL"), Value::Bool(true));
    }

    #[test]
    fn in_list_with_null_is_unknown_not_false() {
        assert_eq!(eval_str("a IN (1, NULL)"), Value::Null);
        assert_eq!(eval_str("a IN (5, NULL)"), Value::Bool(true));
    }

    #[test]
    fn date_functions() {
        assert_eq!(eval_str("today()"), Value::Date(18_000));
        assert_eq!(eval_str("date(today(), '-30 days')"), Value::Date(17_970));
        assert_eq!(eval_str("date('1970-01-11')"), Value::Date(10));
        assert_eq!(
            eval_str("date('1970-01-11') > date('1970-01-01')"),
            Value::Bool(true)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%"));
        assert!(!like_match("abc", "a"));
        assert_eq!(eval_str("b LIKE 'C%'"), Value::Bool(true));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval_str("-a"), Value::Int(-5));
        assert_eq!(eval_str("NOT (a = 5)"), Value::Bool(false));
        assert_eq!(eval_str("abs(-3)"), Value::Int(3));
        assert_eq!(eval_str("abs(-2.5)"), Value::Float(2.5));
    }

    #[test]
    fn misplaced_aggregate_is_an_error() {
        let catalog = ctx_catalog();
        let ctx = ExecContext {
            today: 0,
            ..ExecContext::new(&catalog)
        };
        let cols: Vec<(String, String)> = vec![];
        let row: Vec<Value> = vec![];
        let scope = Scope {
            cols: &cols,
            row: &row,
            parent: None,
        };
        let e = parse_expr("sum(1)").unwrap();
        assert!(matches!(
            eval_expr(&e, &scope, &ctx),
            Err(EngineError::MisplacedAggregate(_))
        ));
    }

    #[test]
    fn aggregate_over_group() {
        let catalog = ctx_catalog();
        let ctx = ExecContext {
            today: 0,
            ..ExecContext::new(&catalog)
        };
        let cols: Vec<(String, String)> = vec![("t".into(), "x".into())];
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Null],
            vec![Value::Int(4)],
        ];
        let group = GroupCtx {
            cols: &cols,
            rows: rows.iter().map(|r| r.as_slice()).collect(),
            parent: None,
        };
        let agg = |src: &str| eval_grouped(&parse_expr(src).unwrap(), &group, &ctx).unwrap();
        assert_eq!(agg("count(*)"), Value::Int(4));
        assert_eq!(agg("count(x)"), Value::Int(3)); // NULL skipped
        assert_eq!(agg("sum(x)"), Value::Int(7));
        assert_eq!(agg("avg(x)"), Value::Float(7.0 / 3.0));
        assert_eq!(agg("min(x)"), Value::Int(1));
        assert_eq!(agg("max(x)"), Value::Int(4));
        assert_eq!(agg("sum(x) + count(*)"), Value::Int(11));
        assert_eq!(agg("sum(x) >= 7"), Value::Bool(true));
    }

    #[test]
    fn aggregates_over_empty_groups() {
        let catalog = ctx_catalog();
        let ctx = ExecContext {
            today: 0,
            ..ExecContext::new(&catalog)
        };
        let cols: Vec<(String, String)> = vec![("t".into(), "x".into())];
        let group = GroupCtx {
            cols: &cols,
            rows: vec![],
            parent: None,
        };
        let agg = |src: &str| eval_grouped(&parse_expr(src).unwrap(), &group, &ctx).unwrap();
        assert_eq!(agg("count(*)"), Value::Int(0));
        assert_eq!(agg("sum(x)"), Value::Null);
        assert_eq!(agg("min(x)"), Value::Null);
    }

    #[test]
    fn date_plus_days_stays_a_date() {
        assert_eq!(eval_str("today() + 5"), Value::Date(18_005));
        assert_eq!(eval_str("today() - 5"), Value::Date(17_995));
    }
}
